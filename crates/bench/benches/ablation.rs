//! Runtime-cost ablation: how the design variants (slot policy, sampling
//! mode, distance metric, offline-peer handling) affect simulation
//! wall-clock cost. Quality differences are measured by the
//! `ablation_quality` binary; this bench isolates the compute cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use veil_core::config::{DistanceMetric, OverlayConfig, SlotPolicy};
use veil_core::simulation::Simulation;
use veil_graph::generators;
use veil_sim::churn::ChurnConfig;

fn run_variant(cfg: OverlayConfig) -> u64 {
    let mut rng = StdRng::seed_from_u64(11);
    let trust = generators::social_graph(200, 3, &mut rng).unwrap();
    let churn = ChurnConfig::from_availability(0.5, 30.0);
    let mut sim = Simulation::new(trust, cfg, churn, 11).unwrap();
    sim.run_until(20.0);
    sim.pseudonyms_minted()
}

fn bench_variants(c: &mut Criterion) {
    let base = OverlayConfig::default();
    let variants: Vec<(&str, OverlayConfig)> = vec![
        ("paper", base.clone()),
        (
            "uniform_slots",
            OverlayConfig {
                slot_policy: SlotPolicy::Uniform,
                ..base.clone()
            },
        ),
        (
            "recency_ring",
            OverlayConfig {
                minwise_sampling: false,
                ..base.clone()
            },
        ),
        (
            "xor_metric",
            OverlayConfig {
                distance_metric: DistanceMetric::Xor,
                ..base.clone()
            },
        ),
        (
            "blind_peer_selection",
            OverlayConfig {
                skip_offline_peers: false,
                ..base
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation/runtime");
    group.sample_size(10);
    for (name, cfg) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| run_variant(cfg.clone()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
