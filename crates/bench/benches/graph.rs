//! Benchmarks of the graph substrate: generators, the f-sampler, and the
//! robustness metrics that dominate experiment wall-clock time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use veil_graph::sample::sample_trust_graph;
use veil_graph::{generators, metrics, Graph};

fn social(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::social_graph(n, 3, &mut rng).unwrap()
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/generate");
    group.sample_size(20);
    for n in [1_000usize, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::new("holme_kim", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| generators::holme_kim(n, 3, 0.9, &mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("erdos_renyi", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| generators::erdos_renyi_gnm(n, 3 * n, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/f_sample");
    group.sample_size(20);
    let source = social(50_000, 3);
    for f in [0.0, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, &f| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| sample_trust_graph(&source, 1000, f, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/metrics");
    group.sample_size(10);
    let g = social(1000, 5);
    let online: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
    group.bench_function("components_masked", |b| {
        b.iter(|| metrics::component_labels_masked(&g, Some(&online)))
    });
    group.bench_function("fraction_disconnected", |b| {
        b.iter(|| metrics::fraction_disconnected(&g, &online))
    });
    group.bench_function("normalized_avg_path_length", |b| {
        b.iter(|| metrics::normalized_avg_path_length(&g, Some(&online)))
    });
    group.bench_function("degree_histogram", |b| {
        b.iter(|| metrics::degree_histogram(&g, Some(&online)))
    });
    group.bench_function("average_clustering", |b| {
        b.iter(|| metrics::average_clustering(&g))
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_sampler, bench_metrics);
criterion_main!(benches);
