//! Microbenchmarks of the Brahms-style min-wise sampler: offer throughput
//! as a function of slot count, plus purge cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use veil_core::config::DistanceMetric;
use veil_core::pseudonym::{Pseudonym, PseudonymService};
use veil_core::sampler::Sampler;
use veil_sim::SimTime;

fn pseudonyms(n: usize, lifetime: Option<f64>) -> Vec<Pseudonym> {
    let mut svc = PseudonymService::new(7);
    (0..n)
        .map(|i| svc.mint(i as u32, SimTime::ZERO, lifetime))
        .collect()
}

fn bench_offer(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler/offer");
    let batch = pseudonyms(1000, None);
    for slots in [10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, &slots| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut sampler = Sampler::new(slots, DistanceMetric::Absolute, true, &mut rng);
            let mut idx = 0usize;
            b.iter(|| {
                sampler.offer(batch[idx % batch.len()], SimTime::ZERO);
                idx += 1;
            });
        });
    }
    group.finish();
}

fn bench_offer_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler/metric");
    let batch = pseudonyms(1000, None);
    for (name, metric) in [
        ("absolute", DistanceMetric::Absolute),
        ("xor", DistanceMetric::Xor),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &metric, |b, &metric| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut sampler = Sampler::new(50, metric, true, &mut rng);
            let mut idx = 0usize;
            b.iter(|| {
                sampler.offer(batch[idx % batch.len()], SimTime::ZERO);
                idx += 1;
            });
        });
    }
    group.finish();
}

fn bench_purge(c: &mut Criterion) {
    c.bench_function("sampler/purge_expired", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler = Sampler::new(50, DistanceMetric::Absolute, true, &mut rng);
        for p in pseudonyms(200, Some(1000.0)) {
            sampler.offer(p, SimTime::ZERO);
        }
        b.iter(|| sampler.purge_expired(SimTime::new(1.0)));
    });
}

fn bench_links(c: &mut Criterion) {
    c.bench_function("sampler/links_snapshot", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let mut sampler = Sampler::new(50, DistanceMetric::Absolute, true, &mut rng);
        for p in pseudonyms(500, None) {
            sampler.offer(p, SimTime::ZERO);
        }
        b.iter(|| sampler.links());
    });
}

criterion_group!(
    benches,
    bench_offer,
    bench_offer_metrics,
    bench_purge,
    bench_links
);
criterion_main!(benches);
