//! Microbenchmarks of the shuffle exchange: cost of one full shuffle as a
//! function of the shuffle length ℓ and the cache size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use veil_core::config::OverlayConfig;
use veil_core::node::Node;
use veil_core::protocol::execute_shuffle;
use veil_core::pseudonym::PseudonymService;
use veil_sim::SimTime;

fn warmed_node(
    id: u32,
    cfg: &OverlayConfig,
    svc: &mut PseudonymService,
    rng: &mut StdRng,
    fill: usize,
) -> Node {
    let mut node = Node::new(id, vec![], cfg, rng);
    node.renew_pseudonym(svc, SimTime::ZERO, cfg.pseudonym_lifetime);
    for i in 0..fill {
        let p = svc.mint(1000 + i as u32, SimTime::ZERO, cfg.pseudonym_lifetime);
        node.cache.insert(p, SimTime::ZERO);
        node.sampler.offer(p, SimTime::ZERO);
    }
    node
}

fn bench_shuffle_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle/length");
    for l in [10usize, 40, 100] {
        let cfg = OverlayConfig {
            shuffle_length: l,
            cache_size: 400,
            ..OverlayConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(l), &cfg, |b, cfg| {
            let mut svc = PseudonymService::new(1);
            let mut rng = StdRng::seed_from_u64(1);
            let mut a = warmed_node(0, cfg, &mut svc, &mut rng, 300);
            let mut d = warmed_node(1, cfg, &mut svc, &mut rng, 300);
            b.iter(|| {
                execute_shuffle(&mut a, &mut d, cfg.shuffle_length, SimTime::ZERO, &mut rng);
            });
        });
    }
    group.finish();
}

fn bench_cache_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle/cache_size");
    for size in [100usize, 400, 1600] {
        let cfg = OverlayConfig {
            cache_size: size,
            ..OverlayConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(size), &cfg, |b, cfg| {
            let mut svc = PseudonymService::new(2);
            let mut rng = StdRng::seed_from_u64(2);
            let mut a = warmed_node(0, cfg, &mut svc, &mut rng, size * 3 / 4);
            let mut d = warmed_node(1, cfg, &mut svc, &mut rng, size * 3 / 4);
            b.iter(|| {
                execute_shuffle(&mut a, &mut d, cfg.shuffle_length, SimTime::ZERO, &mut rng);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shuffle_length, bench_cache_size);
criterion_main!(benches);
