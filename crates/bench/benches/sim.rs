//! Benchmarks of the simulation substrate: event-engine throughput, churn
//! sampling, and end-to-end simulated shuffle periods per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use veil_core::config::OverlayConfig;
use veil_core::simulation::Simulation;
use veil_graph::generators;
use veil_sim::churn::{ChurnConfig, ChurnProcess};
use veil_sim::dist::{DurationDist, Exponential, Pareto};
use veil_sim::engine::Engine;
use veil_sim::time::SimTime;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/engine");
    group.bench_function("schedule_pop_cycle", |b| {
        let mut engine: Engine<u32> = Engine::new();
        let mut t = 0.0f64;
        b.iter(|| {
            t += 0.001;
            engine.schedule_at(SimTime::new(t), 1);
            engine.pop()
        });
    });
    group.bench_function("burst_1000", |b| {
        b.iter(|| {
            let mut engine: Engine<u32> = Engine::new();
            for i in 0..1000u32 {
                engine.schedule_at(SimTime::new((i % 97) as f64), i);
            }
            while engine.pop().is_some() {}
            engine.processed()
        });
    });
    group.finish();
}

fn bench_churn_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/churn");
    let exp = Exponential::new(30.0);
    let pareto = Pareto::with_mean(2.5, 30.0);
    group.bench_function("exponential_sample", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| exp.sample(&mut rng));
    });
    group.bench_function("pareto_sample", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| pareto.sample(&mut rng));
    });
    group.bench_function("process_transition", |b| {
        let cfg = ChurnConfig::from_availability(0.5, 30.0);
        let mut rng = StdRng::seed_from_u64(3);
        let (mut p, _) = ChurnProcess::new(&cfg, &mut rng);
        b.iter(|| p.transition(&mut rng));
    });
    group.finish();
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/simulated_periods");
    group.sample_size(10);
    for n in [100usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let mut rng = StdRng::seed_from_u64(4);
                    let trust = generators::social_graph(n, 3, &mut rng).unwrap();
                    let churn = ChurnConfig::from_availability(0.5, 30.0);
                    Simulation::new(trust, OverlayConfig::default(), churn, 4).unwrap()
                },
                |mut sim| {
                    sim.run_until(10.0);
                    sim
                },
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_churn_sampling,
    bench_simulation_throughput
);
criterion_main!(benches);
