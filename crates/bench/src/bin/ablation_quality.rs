//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. degree-aware vs uniform sampler-slot budgets,
//! 2. Brahms-style min-wise sampling vs a most-recent ring buffer,
//! 3. the absolute-difference vs XOR distance metric,
//! 4. deliverability-aware vs blind shuffle-partner selection,
//! 5. the adaptive shuffle-stop extension (Section V-B's observation),
//! 6. the adaptive per-node pseudonym-lifetime extension (Section III-C's
//!    future-work suggestion).
//!
//! Each variant runs the Figure 3 workload at a demanding availability and
//! reports connectivity, path length and the degree spread of the overlay.

use serde::Serialize;
use veil_bench::{f3, paper_params, render_table, write_json};
use veil_core::config::{DistanceMetric, OverlayConfig, SlotPolicy};
use veil_core::experiment::{availability_sweep, build_trust_graph, ExperimentParams};

#[derive(Serialize)]
struct AblationRow {
    variant: String,
    alpha: f64,
    overlay_disconnected: f64,
    overlay_npl: f64,
}

fn variant(name: &str, overlay: OverlayConfig) -> (String, ExperimentParams) {
    let params = ExperimentParams {
        overlay,
        ..paper_params()
    };
    (name.to_string(), params)
}

fn main() {
    let base = paper_params().overlay;
    let variants = vec![
        variant("paper (degree-aware, min-wise, abs)", base.clone()),
        variant(
            "uniform slots",
            OverlayConfig {
                slot_policy: SlotPolicy::Uniform,
                ..base.clone()
            },
        ),
        variant(
            "no min-wise sampling (recency ring)",
            OverlayConfig {
                minwise_sampling: false,
                ..base.clone()
            },
        ),
        variant(
            "xor distance metric",
            OverlayConfig {
                distance_metric: DistanceMetric::Xor,
                ..base.clone()
            },
        ),
        variant(
            "blind peer selection",
            OverlayConfig {
                skip_offline_peers: false,
                ..base.clone()
            },
        ),
        variant(
            "adaptive shuffle stop (k=10)",
            OverlayConfig {
                stop_after_stable_periods: Some(10),
                ..base.clone()
            },
        ),
        variant(
            "adaptive lifetime (3x own Toff)",
            OverlayConfig {
                lifetime_policy: veil_core::config::LifetimePolicy::Adaptive {
                    multiplier: 3.0,
                    floor: 10.0,
                },
                ..base
            },
        ),
    ];

    let trust = build_trust_graph(&paper_params()).expect("trust graph");
    let alphas = [0.25, 0.5];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, params) in &variants {
        let sweep = availability_sweep(&trust, params, &alphas, true).expect("sweep");
        for point in sweep {
            rows.push(vec![
                name.clone(),
                f3(point.alpha),
                f3(point.overlay_disconnected),
                f3(point.overlay_npl),
            ]);
            json.push(AblationRow {
                variant: name.clone(),
                alpha: point.alpha,
                overlay_disconnected: point.overlay_disconnected,
                overlay_npl: point.overlay_npl,
            });
        }
    }
    println!("\nAblation: overlay quality by design variant");
    println!(
        "{}",
        render_table(
            &["variant", "alpha", "disconnected", "norm. path len"],
            &rows
        )
    );
    write_json("ablation_quality", &json);
}
