//! Runs every figure binary's experiment in sequence, producing the full
//! set of tables on stdout and JSON under `target/figures/`.
//!
//! Respects `VEIL_SCALE` (see the crate docs) so a smoke run finishes in
//! seconds: `VEIL_SCALE=10 cargo run --release -p veil-bench --bin
//! all_figures`.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "fig3_connectivity",
        "fig4_path_length",
        "fig5_degree_dist",
        "fig6_messages",
        "fig7_lifetime",
        "fig8_convergence",
        "fig9_churn_overhead",
        "ablation_quality",
        "sensitivity",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin directory");
    for bin in bins {
        let path = dir.join(bin);
        eprintln!("== running {bin} ==");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{bin} exited with {status}");
    }
    eprintln!("all figures regenerated; JSON in target/figures/");
}
