//! Fault-injection degradation benchmark: sweeps the three fault axes —
//! per-message loss, mean latency, and partition size — over the
//! steady-state overlay and writes `target/figures/BENCH_faults.json`.
//!
//! Each row reports connectivity, broadcast coverage, normalized path
//! length, link-replacement rate and the fault counters, so a run shows at
//! a glance how gracefully the protocol degrades. Honors `VEIL_SCALE` and
//! `VEIL_PARALLELISM`.

use serde::Serialize;
use veil_bench::{f3, paper_params, render_table, write_bench_json};
use veil_core::experiment::{
    build_trust_graph, degradation_latency_sweep, degradation_loss_sweep,
    degradation_partition_sweep, DegradationPoint,
};

/// Availability the degradation sweeps run at: high enough that the fault
/// layer (not churn) dominates the measurement.
const ALPHA: f64 = 0.8;

const LOSSES: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5];
const LATENCIES: [f64; 5] = [0.0, 0.5, 1.0, 2.0, 5.0];
const PARTITIONS: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

#[derive(Serialize)]
struct Report {
    alpha: f64,
    loss: Vec<DegradationPoint>,
    latency: Vec<DegradationPoint>,
    partition: Vec<DegradationPoint>,
}

fn print_sweep(title: &str, x_label: &str, points: &[DegradationPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                f3(p.x),
                f3(p.overlay_disconnected),
                f3(p.coverage),
                f3(p.overlay_npl),
                format!("{:.4}", p.replacement_rate),
                p.dropped_requests.to_string(),
                p.shuffle_retries.to_string(),
                p.shuffle_failures.to_string(),
            ]
        })
        .collect();
    println!("\n{title}");
    println!(
        "{}",
        render_table(
            &[
                x_label,
                "disconnected",
                "coverage",
                "npl",
                "repl/node/sp",
                "dropped",
                "retries",
                "failures",
            ],
            &rows,
        )
    );
}

fn main() {
    veil_bench::refuse_single_core_baseline("faults");
    let params = paper_params();
    let trust = build_trust_graph(&params).expect("trust graph");
    eprintln!(
        "degradation sweeps: {} nodes, alpha = {ALPHA}, scale = {}",
        trust.node_count(),
        veil_bench::scale()
    );

    let loss = degradation_loss_sweep(&trust, &params, ALPHA, &LOSSES).expect("loss sweep");
    print_sweep("degradation vs message loss", "loss", &loss);

    let latency =
        degradation_latency_sweep(&trust, &params, ALPHA, &LATENCIES).expect("latency sweep");
    print_sweep(
        "degradation vs mean latency (exponential)",
        "latency",
        &latency,
    );

    let partition =
        degradation_partition_sweep(&trust, &params, ALPHA, &PARTITIONS).expect("partition sweep");
    print_sweep("degradation vs partition size", "fraction", &partition);

    let report = Report {
        alpha: ALPHA,
        loss,
        latency,
        partition,
    };
    write_bench_json("faults", &report);
}
