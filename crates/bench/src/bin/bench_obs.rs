//! Observability overhead benchmark: times the same simulation run with
//! the recorder disabled, enabled in full mode, enabled as a bounded
//! flight recorder, and enabled in full mode with the online health
//! monitor running, verifies the simulation output is byte-identical in
//! all modes, and writes `target/figures/BENCH_obs.json`.
//!
//! The no-op path is the contract to protect: a disabled recorder costs a
//! single branch per instrumentation point, so "disabled" and a second
//! disabled run should time the same to within noise. Timing uses the
//! minimum over several repetitions, which is the standard robust
//! estimator against scheduler noise. Honors `VEIL_SCALE` and
//! `VEIL_PARALLELISM`; set `VEIL_OBS_CHECK=1` to turn the overhead budget
//! into a hard assertion (used by CI).

use serde::Serialize;
use std::time::Instant;
use veil_bench::{paper_params, write_bench_json};
use veil_core::experiment::{build_simulation, build_trust_graph};
use veil_core::metrics::snapshot;
use veil_obs::Recorder;

/// Repetitions per mode; the minimum is reported. Reps are interleaved
/// across modes so slow drift in machine load (frequency scaling, noisy
/// CI neighbors) cannot bias one whole mode, and batches are kept short
/// so many reps fit — the per-mode minimum then gets enough samples to
/// land in a quiet scheduling window.
const REPS: usize = 12;

#[derive(Serialize)]
struct Mode {
    name: String,
    min_ms: f64,
    /// Overhead relative to the first disabled run, in percent.
    overhead_pct: f64,
    events_seen: u64,
}

#[derive(Serialize)]
struct Report {
    alpha: f64,
    horizon: f64,
    reps: usize,
    /// Simulation runs per timed batch (auto-calibrated so a batch lasts
    /// long enough to time reliably).
    iters: usize,
    modes: Vec<Mode>,
    outputs_identical: bool,
}

/// Runs the workload `iters` times, each under a fresh recorder from
/// `make` (matching real usage: one recorder per run); returns the
/// serialized final snapshot (the byte-identity witness — identical on
/// every iteration by determinism), the mean wall-clock milliseconds per
/// iteration over the timed batch, and the per-run event count.
fn run_batch(
    make: &impl Fn() -> Recorder,
    alpha: f64,
    horizon: f64,
    iters: usize,
    health: bool,
) -> (String, f64, u64) {
    let mut params = paper_params();
    // The health monitor is read-only over the event stream and draws no
    // randomness, so enabling it must keep the witness byte-identical.
    params.overlay.health.enabled = health;
    let trust = build_trust_graph(&params).expect("trust graph");
    let mut snap = String::new();
    let mut seen = 0;
    let t0 = Instant::now();
    for _ in 0..iters {
        let recorder = make();
        let mut sim = build_simulation(trust.clone(), &params, alpha).expect("simulation");
        sim.set_recorder(recorder.clone());
        sim.run_until(horizon);
        snap = serde_json::to_string(&snapshot(&sim)).expect("snapshot serializes");
        seen = recorder.events_seen();
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    (snap, ms, seen)
}

/// Picks an iteration count that makes each timed batch run for at least
/// `TARGET_BATCH_MS`, so percentage comparisons are not noise on a
/// few-millisecond measurement at small `VEIL_SCALE`.
fn calibrate(alpha: f64, horizon: f64) -> usize {
    const TARGET_BATCH_MS: f64 = 30.0;
    let (_, est_ms, _) = run_batch(&Recorder::disabled, alpha, horizon, 1, false);
    ((TARGET_BATCH_MS / est_ms.max(0.1)).ceil() as usize).clamp(1, 500)
}

fn main() {
    veil_bench::refuse_single_core_baseline("obs");
    let alpha = 0.5;
    let horizon = veil_bench::scaled_horizon(300.0, 30.0);
    eprintln!(
        "observability overhead: alpha = {alpha}, horizon = {horizon} sp, scale = {}",
        veil_bench::scale()
    );

    type MakeRecorder = fn() -> Recorder;
    let modes: Vec<(&str, MakeRecorder, bool)> = vec![
        ("disabled", Recorder::disabled, false),
        ("disabled_again", Recorder::disabled, false),
        ("full", Recorder::full, false),
        (
            "flight_recorder_1k",
            || Recorder::flight_recorder(1024),
            false,
        ),
        ("full_health", Recorder::full, true),
    ];
    // The calibration batch doubles as cache/allocator warmup.
    let iters = calibrate(alpha, horizon);
    eprintln!("calibrated to {iters} runs per timed batch");

    // A measurement attempt: REPS interleaved rounds over all modes,
    // overhead taken on the per-mode minimum (the classical noise-robust
    // estimator — ambient load only ever slows a batch down). The second
    // disabled mode measures the residual noise floor: any nonzero
    // "overhead" it shows is pure measurement error.
    let measure = |attempt: usize| -> (Vec<Mode>, bool) {
        let mut timings = vec![Vec::with_capacity(REPS); modes.len()];
        let mut witnesses = vec![String::new(); modes.len()];
        let mut events = vec![0u64; modes.len()];
        for rep in 0..REPS {
            for (i, (name, make, health)) in modes.iter().enumerate() {
                let (snap, ms, seen) = run_batch(make, alpha, horizon, iters, *health);
                timings[i].push(ms);
                witnesses[i] = snap;
                events[i] = seen;
                eprintln!("  attempt {attempt} rep {rep} {name}: {ms:.2} ms/run over {iters} runs");
            }
        }
        let min_of = |xs: &[f64]| xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let baseline = min_of(&timings[0]);
        let measured = modes
            .iter()
            .enumerate()
            .map(|(i, (name, _, _))| {
                let min_ms = min_of(&timings[i]);
                Mode {
                    name: name.to_string(),
                    min_ms,
                    overhead_pct: (min_ms / baseline - 1.0) * 100.0,
                    events_seen: events[i],
                }
            })
            .collect();
        let identical = witnesses.iter().all(|w| *w == witnesses[0]);
        (measured, identical)
    };

    // The noise floor must resolve the budget we assert against; on a
    // loaded machine a single attempt can be junk, so retry a couple of
    // times before conceding the environment cannot measure this. In
    // strict mode a budget blip is also retried — a real regression fails
    // every attempt, a scheduling hiccup does not survive three.
    const NOISE_FLOOR_PCT: f64 = 2.0;
    const BUDGET_PCT: f64 = 5.0;
    const ATTEMPTS: usize = 3;
    let strict = std::env::var("VEIL_OBS_CHECK").as_deref() == Ok("1");
    let mut modes_measured = Vec::new();
    let mut outputs_identical = false;
    let mut resolvable = false;
    for attempt in 0..ATTEMPTS {
        let (measured, identical) = measure(attempt);
        let noise = measured[1].overhead_pct.abs();
        resolvable = noise < NOISE_FLOOR_PCT;
        let within_budget = measured[2..].iter().all(|m| m.overhead_pct < BUDGET_PCT);
        modes_measured = measured;
        outputs_identical = identical;
        assert!(
            outputs_identical,
            "tracing must never change simulation results"
        );
        if resolvable && (within_budget || !strict) {
            break;
        }
        eprintln!(
            "  measurement not conclusive (noise floor {noise:+.1}%, within budget: \
             {within_budget}), retrying"
        );
    }
    let modes = modes_measured;

    println!("\nmode               min_ms/run   overhead   events/run");
    for m in &modes {
        println!(
            "{:<20} {:>7.1}   {:>+7.1}%   {:>8}",
            m.name, m.min_ms, m.overhead_pct, m.events_seen
        );
    }

    if strict {
        let pct = |name: &str| {
            modes
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.overhead_pct)
                .expect("mode present")
        };
        if resolvable {
            // Budget from DESIGN.md: full tracing stays under 5% on the
            // simulation workload (the no-op path was already shown to be
            // within the <2% noise floor by the resolvability gate).
            for name in ["full", "flight_recorder_1k", "full_health"] {
                assert!(
                    pct(name) < BUDGET_PCT,
                    "{name} tracing exceeds the {BUDGET_PCT}% budget: {:+.1}%",
                    pct(name)
                );
            }
            eprintln!("VEIL_OBS_CHECK passed: no-op <{NOISE_FLOOR_PCT}%, tracing <{BUDGET_PCT}%");
        } else {
            // Byte-identity was still asserted above; only the timing
            // comparison is meaningless on this machine.
            eprintln!(
                "VEIL_OBS_CHECK: machine too noisy to resolve a {NOISE_FLOOR_PCT}% \
                 budget (noise floor {:+.1}%); skipping the percentage assertions",
                pct("disabled_again")
            );
        }
    }

    let report = Report {
        alpha,
        horizon,
        reps: REPS,
        iters,
        modes,
        outputs_identical,
    };
    write_bench_json("obs", &report);
}
