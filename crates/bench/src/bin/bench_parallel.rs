//! Serial-vs-parallel wall-clock comparison for the experiment engine.
//!
//! Times each figure's core computation twice — once with
//! `parallelism = Some(1)` (serial) and once with `parallelism = None`
//! (all cores) — verifies the outputs are identical, and writes
//! `target/figures/BENCH_parallel.json`.
//!
//! On a single-core runner the two times coincide (the engine falls back
//! to the serial path); the JSON records `available_cores` so consumers
//! can tell an absent speedup from a failed one. Honors `VEIL_SCALE`.

use serde::Serialize;
use std::time::Instant;
use veil_bench::{paper_params, write_bench_json, ALPHAS, RATIOS};
use veil_core::experiment::{
    availability_sweep, build_trust_graph, connectivity_over_time, lifetime_sweep,
    replacement_rate_over_time, ExperimentParams,
};
use veil_graph::metrics as gm;

#[derive(Serialize)]
struct Entry {
    figure: String,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    outputs_identical: bool,
}

#[derive(Serialize)]
struct Report {
    entries: Vec<Entry>,
}

/// Times `run` at a given parallelism; returns (result, millis).
fn timed<T>(run: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = run();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

fn compare<T: PartialEq>(
    figure: &str,
    serial: impl FnOnce() -> T,
    parallel: impl FnOnce() -> T,
) -> Entry {
    eprintln!("timing {figure} …");
    let (a, serial_ms) = timed(serial);
    let (b, parallel_ms) = timed(parallel);
    let entry = Entry {
        figure: figure.to_string(),
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms.max(1e-9),
        outputs_identical: a == b,
    };
    eprintln!(
        "  serial {serial_ms:.0} ms, parallel {parallel_ms:.0} ms, speedup {:.2}x, identical: {}",
        entry.speedup, entry.outputs_identical
    );
    entry
}

fn with_parallelism(params: &ExperimentParams, parallelism: Option<usize>) -> ExperimentParams {
    let mut p = params.clone();
    p.overlay.parallelism = parallelism;
    p
}

fn main() {
    veil_bench::refuse_single_core_baseline("parallel");
    let params = paper_params();
    let trust = build_trust_graph(&params).expect("trust graph");
    eprintln!(
        "trust graph: {} nodes, {} edges; available cores: {}",
        trust.node_count(),
        trust.edge_count(),
        veil_par::effective_parallelism(None)
    );
    let serial = with_parallelism(&params, Some(1));
    let parallel = with_parallelism(&params, None);
    let horizon = veil_bench::scaled_horizon(300.0, 60.0);

    let entries = vec![
        compare(
            "fig3_availability_sweep",
            || availability_sweep(&trust, &serial, &ALPHAS, false).expect("sweep"),
            || availability_sweep(&trust, &parallel, &ALPHAS, false).expect("sweep"),
        ),
        compare(
            "fig4_availability_sweep_npl",
            || availability_sweep(&trust, &serial, &ALPHAS[..4], true).expect("sweep"),
            || availability_sweep(&trust, &parallel, &ALPHAS[..4], true).expect("sweep"),
        ),
        compare(
            "fig7_lifetime_sweep",
            || lifetime_sweep(&trust, &serial, &ALPHAS[..4], &RATIOS).expect("sweep"),
            || lifetime_sweep(&trust, &parallel, &ALPHAS[..4], &RATIOS).expect("sweep"),
        ),
        compare(
            "fig8_connectivity_over_time",
            || {
                connectivity_over_time(&trust, &serial, 0.5, &RATIOS, horizon, 10.0)
                    .expect("series")
            },
            || {
                connectivity_over_time(&trust, &parallel, 0.5, &RATIOS, horizon, 10.0)
                    .expect("series")
            },
        ),
        compare(
            "fig9_replacement_rate",
            || {
                replacement_rate_over_time(&trust, &serial, 0.5, &RATIOS, horizon, 10.0)
                    .expect("series")
            },
            || {
                replacement_rate_over_time(&trust, &parallel, 0.5, &RATIOS, horizon, 10.0)
                    .expect("series")
            },
        ),
        compare(
            "metric_average_path_length",
            || gm::average_path_length_par(&trust, None, Some(1)),
            || gm::average_path_length_par(&trust, None, None),
        ),
        compare(
            "metric_betweenness_centrality",
            || gm::betweenness_centrality_par(&trust, Some(1)),
            || gm::betweenness_centrality_par(&trust, None),
        ),
    ];

    for e in &entries {
        assert!(
            e.outputs_identical,
            "{}: parallel output diverged from serial",
            e.figure
        );
    }
    let report = Report { entries };
    write_bench_json("parallel", &report);
}
