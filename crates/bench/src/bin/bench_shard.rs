//! Scaling benchmark for the sharded simulation executor.
//!
//! Runs one fault-injected overlay simulation (the windowed executor's
//! regime) over a degree-matched trust graph at shard counts 1, 2 and 8,
//! times each run, verifies the final snapshots are byte-identical, and
//! writes `target/figures/BENCH_shard.json`.
//!
//! The full-scale workload is 50,000 nodes; `VEIL_SCALE` divides it for
//! smoke runs (the committed baseline uses `VEIL_SCALE=10`). On a
//! single-core runner the shard counts time alike (the worker pool
//! degenerates to one thread); the JSON records `available_cores` so
//! consumers can tell an absent speedup from a failed one.

use serde::Serialize;
use std::time::Instant;
use veil_bench::write_bench_json;
use veil_core::config::{LinkLayerConfig, OverlayConfig};
use veil_core::metrics::snapshot;
use veil_core::simulation::Simulation;
use veil_graph::generators;
use veil_sim::churn::ChurnConfig;
use veil_sim::fault::{FaultConfig, LatencyDist};
use veil_sim::rng::{derive_rng, Stream};

const FULL_NODES: usize = 50_000;
const SEED: u64 = 42;
const ALPHA: f64 = 0.7;

#[derive(Serialize)]
struct Entry {
    shards: usize,
    wall_ms: f64,
    /// Wall-clock of the one-shard run divided by this run's.
    speedup: f64,
    outputs_identical: bool,
}

#[derive(Serialize)]
struct Report {
    nodes: usize,
    edges: usize,
    horizon: f64,
    entries: Vec<Entry>,
}

fn config(shards: usize) -> OverlayConfig {
    OverlayConfig {
        shards: Some(shards),
        link: LinkLayerConfig::Faulty(FaultConfig {
            drop_probability: 0.05,
            latency: LatencyDist::Exponential { mean: 0.3 },
            episodes: Vec::new(),
        }),
        ..OverlayConfig::default()
    }
}

fn main() {
    veil_bench::refuse_single_core_baseline("shard");
    let nodes = (FULL_NODES / veil_bench::scale()).max(500);
    let horizon = veil_bench::scaled_horizon(20.0, 10.0);
    let mut rng = derive_rng(SEED, Stream::Topology);
    // The paper's f = 1.0 trust samples average 11.3 links per node.
    let trust = generators::degree_matched(nodes, 11.3, 0.6, &mut rng).expect("trust graph");
    eprintln!(
        "trust graph: {} nodes, {} edges; horizon {horizon} sp; available cores: {}",
        trust.node_count(),
        trust.edge_count(),
        veil_par::effective_parallelism(None)
    );

    let run = |shards: usize| {
        let churn = ChurnConfig::from_availability(ALPHA, 30.0);
        let mut sim =
            Simulation::new(trust.clone(), config(shards), churn, SEED).expect("simulation");
        assert!(sim.is_sharded(), "fault model must engage the executor");
        let t0 = Instant::now();
        sim.run_until(horizon);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let witness = serde_json::to_string(&snapshot(&sim)).expect("snapshot serializes");
        (wall_ms, witness)
    };

    let mut entries = Vec::new();
    let mut reference: Option<(f64, String)> = None;
    for shards in [1usize, 2, 8] {
        eprintln!("timing {shards} shard(s) …");
        let (wall_ms, witness) = run(shards);
        let (base_ms, identical) = match &reference {
            None => {
                reference = Some((wall_ms, witness));
                (wall_ms, true)
            }
            Some((base, ref_witness)) => (*base, witness == *ref_witness),
        };
        let entry = Entry {
            shards,
            wall_ms,
            speedup: base_ms / wall_ms.max(1e-9),
            outputs_identical: identical,
        };
        eprintln!(
            "  {} shard(s): {wall_ms:.0} ms, speedup {:.2}x, identical: {}",
            entry.shards, entry.speedup, entry.outputs_identical
        );
        entries.push(entry);
    }
    for e in &entries {
        assert!(
            e.outputs_identical,
            "{} shards diverged from the one-shard reference",
            e.shards
        );
    }
    let report = Report {
        nodes: trust.node_count(),
        edges: trust.edge_count(),
        horizon,
        entries,
    };
    write_bench_json("shard", &report);
}
