//! Figure 3: fraction of disconnected online nodes vs availability, for
//! trust graphs sampled with f = 1.0 and f = 0.5, compared against the
//! maintained overlay and an Erdős–Rényi reference graph.
//!
//! Set `VEIL_TRACE_OUT`, `VEIL_METRICS_OUT` or `VEIL_CHROME_TRACE` to a
//! file path to record the run's events, metrics or profiling spans (see
//! EXPERIMENTS.md); unset, tracing is a no-op and the figure output is
//! byte-identical either way.

use veil_bench::{f3, paper_params, render_table, write_json, ALPHAS};
use veil_core::experiment::{availability_sweep, build_trust_graph_with_f};

fn main() {
    let obs = veil_bench::init_observability();
    let params = paper_params();
    let mut results = Vec::new();
    for f in [1.0, 0.5] {
        let trust = build_trust_graph_with_f(&params, f).expect("trust graph");
        eprintln!(
            "trust graph f={f}: {} nodes, {} edges",
            trust.node_count(),
            trust.edge_count()
        );
        let sweep =
            availability_sweep(&trust, &params, &ALPHAS, false).expect("availability sweep");
        let rows: Vec<Vec<String>> = sweep
            .iter()
            .map(|p| {
                vec![
                    f3(p.alpha),
                    f3(p.trust_disconnected),
                    f3(p.overlay_disconnected),
                    f3(p.random_disconnected),
                ]
            })
            .collect();
        println!("\nFigure 3 (f = {f}): fraction of disconnected online nodes");
        println!(
            "{}",
            render_table(&["alpha", "trust graph", "overlay", "random graph"], &rows)
        );
        results.push((f, sweep));
    }
    write_json("fig3_connectivity", &results);
    obs.finish();
}
