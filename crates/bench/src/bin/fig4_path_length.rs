//! Figure 4: normalized average path length vs availability, for trust
//! graphs sampled with f = 1.0 and f = 0.5, the overlay, and an ER
//! reference graph.

use veil_bench::{f3, paper_params, render_table, write_json, ALPHAS};
use veil_core::experiment::{availability_sweep, build_trust_graph_with_f};

fn main() {
    let params = paper_params();
    let mut results = Vec::new();
    for f in [1.0, 0.5] {
        let trust = build_trust_graph_with_f(&params, f).expect("trust graph");
        let sweep = availability_sweep(&trust, &params, &ALPHAS, true).expect("availability sweep");
        let rows: Vec<Vec<String>> = sweep
            .iter()
            .map(|p| {
                vec![
                    f3(p.alpha),
                    f3(p.trust_npl),
                    f3(p.overlay_npl),
                    f3(p.random_npl),
                ]
            })
            .collect();
        println!("\nFigure 4 (f = {f}): normalized average path length");
        println!(
            "{}",
            render_table(&["alpha", "trust graph", "overlay", "random graph"], &rows)
        );
        results.push((f, sweep));
    }
    write_json("fig4_path_length", &results);
}
