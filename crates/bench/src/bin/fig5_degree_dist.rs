//! Figure 5: degree distribution among online nodes at α = 0.5, for trust
//! graphs sampled with f = 1.0 and f = 0.5, the overlay, and an ER
//! reference graph. Printed as (degree, node count) pairs per series.

use veil_bench::{paper_params, render_table, write_json};
use veil_core::experiment::{build_trust_graph_with_f, degree_distributions};
use veil_metrics::Histogram;

fn bucketed(h: &Histogram, width: usize) -> Vec<(usize, u64)> {
    let mut buckets: Vec<(usize, u64)> = Vec::new();
    for (value, count) in h.iter() {
        let b = value / width * width;
        match buckets.last_mut() {
            Some((lb, c)) if *lb == b => *c += count,
            _ => buckets.push((b, count)),
        }
    }
    buckets
}

fn main() {
    let params = paper_params();
    let alpha = 0.5;
    let mut results = Vec::new();
    for f in [1.0, 0.5] {
        let trust = build_trust_graph_with_f(&params, f).expect("trust graph");
        let d = degree_distributions(&trust, &params, alpha).expect("degree distributions");
        println!("\nFigure 5 (f = {f}, alpha = {alpha}): degree distribution (5-wide bins)");
        for (name, h) in [
            ("trust graph", &d.trust),
            ("overlay", &d.overlay),
            ("random graph", &d.random),
        ] {
            let rows: Vec<Vec<String>> = bucketed(h, 5)
                .into_iter()
                .map(|(deg, count)| vec![format!("{deg}-{}", deg + 4), count.to_string()])
                .collect();
            println!(
                "{name}: mean degree {:.1}, max {}",
                h.mean(),
                h.max_value().unwrap_or(0)
            );
            println!("{}", render_table(&["degree", "nodes"], &rows));
        }
        results.push((f, d));
    }
    write_json("fig5_degree_dist", &results);
}
