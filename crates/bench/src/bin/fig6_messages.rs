//! Figure 6: average messages sent per shuffle period per node (ranked by
//! trust-graph degree) and maximum overlay out-degree, at α = 0.5, for
//! f = 1.0 and f = 0.5.

use veil_bench::{f3, paper_params, render_table, scaled_horizon, write_json};
use veil_core::experiment::{build_trust_graph_with_f, message_load};

fn main() {
    let params = paper_params();
    let alpha = 0.5;
    let measure = scaled_horizon(200.0, 40.0);
    let mut results = Vec::new();
    for f in [1.0, 0.5] {
        let trust = build_trust_graph_with_f(&params, f).expect("trust graph");
        let rows = message_load(&trust, &params, alpha, measure, 5.0).expect("message load");
        // Print a decimated view: every node would be 1000 lines.
        let shown: Vec<Vec<String>> = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let r = i + 1;
                r <= 10 || (r <= 100 && r % 10 == 0) || r % 100 == 0
            })
            .map(|(_, r)| {
                vec![
                    r.rank.to_string(),
                    r.trust_degree.to_string(),
                    r.max_out_degree.to_string(),
                    f3(r.messages_per_period),
                ]
            })
            .collect();
        let mean: f64 = rows.iter().map(|r| r.messages_per_period).sum::<f64>() / rows.len() as f64;
        println!("\nFigure 6 (f = {f}, alpha = {alpha}): message load by trust-degree rank");
        println!("mean messages per shuffle period per node: {mean:.2} (paper: 2)");
        println!(
            "{}",
            render_table(&["rank", "trust deg", "max out-deg", "msgs/sp"], &shown)
        );
        results.push((f, rows));
    }
    write_json("fig6_messages", &results);
}
