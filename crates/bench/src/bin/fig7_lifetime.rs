//! Figure 7: fraction of disconnected online nodes vs availability for
//! pseudonym-lifetime ratios r ∈ {1, 3, 9, ∞}, against the trust graph
//! and an ER reference.

use veil_bench::{f3, paper_params, ratio_label, render_table, write_json, ALPHAS, RATIOS};
use veil_core::experiment::{build_trust_graph, lifetime_sweep};

fn main() {
    let params = paper_params();
    let trust = build_trust_graph(&params).expect("trust graph");
    let sweeps = lifetime_sweep(&trust, &params, &ALPHAS, &RATIOS).expect("lifetime sweep");

    // One row per alpha: trust, r=1, r=3, r=9, r=inf, random.
    let mut rows = Vec::new();
    for (i, &alpha) in ALPHAS.iter().enumerate() {
        let mut row = vec![f3(alpha), f3(sweeps[0].1[i].trust_disconnected)];
        for (_, sweep) in &sweeps {
            row.push(f3(sweep[i].overlay_disconnected));
        }
        row.push(f3(sweeps[0].1[i].random_disconnected));
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("alpha".to_string())
        .chain(std::iter::once("trust".to_string()))
        .chain(RATIOS.iter().map(|&r| format!("r={}", ratio_label(r))))
        .chain(std::iter::once("random".to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("\nFigure 7: fraction of disconnected online nodes by pseudonym lifetime");
    println!("{}", render_table(&header_refs, &rows));
    write_json("fig7_lifetime", &sweeps);
}
