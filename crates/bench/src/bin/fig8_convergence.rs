//! Figure 8: connectivity over time at α = 0.25 — the trust graph versus
//! overlays with lifetime ratios r = 3 and r = 9, from a cold start to
//! 1000 shuffle periods.

use veil_bench::{f3, paper_params, ratio_label, render_table, scaled_horizon, write_json};
use veil_core::experiment::{build_trust_graph, connectivity_over_time};

fn main() {
    let params = paper_params();
    let alpha = 0.25;
    let horizon = scaled_horizon(1000.0, 100.0);
    let interval = (horizon / 200.0).max(1.0);
    let trust = build_trust_graph(&params).expect("trust graph");
    let ratios = [Some(3.0), Some(9.0)];
    let series = connectivity_over_time(&trust, &params, alpha, &ratios, horizon, interval)
        .expect("convergence series");

    let mut rows = Vec::new();
    for (i, (t, trust_frac)) in series.trust.iter().enumerate() {
        if i % 4 != 0 {
            continue; // decimate the printed table
        }
        let mut row = vec![format!("{t:.0}"), f3(trust_frac)];
        for (_, ts) in &series.overlays {
            row.push(f3(ts.as_slice()[i].1));
        }
        rows.push(row);
    }
    let headers: Vec<String> = ["time (sp)".to_string(), "trust".to_string()]
        .into_iter()
        .chain(
            series
                .overlays
                .iter()
                .map(|(r, _)| format!("overlay r={}", ratio_label(*r))),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("\nFigure 8 (alpha = {alpha}): fraction of disconnected nodes over time");
    println!("{}", render_table(&header_refs, &rows));
    for (r, ts) in &series.overlays {
        match ts.settling_time(0.01) {
            Some(t) => println!(
                "overlay r={} settles below 1% disconnected at t = {t:.0} sp",
                ratio_label(*r)
            ),
            None => println!("overlay r={} did not settle below 1%", ratio_label(*r)),
        }
    }
    write_json("fig8_convergence", &series);
}
