//! Figure 9: pseudonym links replaced per node per shuffle period over
//! time at α = 0.25, for lifetime ratios r ∈ {3, 9, ∞}, to 10000 shuffle
//! periods.

use veil_bench::{f3, paper_params, ratio_label, render_table, scaled_horizon, write_json};
use veil_core::experiment::{build_trust_graph, replacement_rate_over_time};

fn main() {
    let params = paper_params();
    let alpha = 0.25;
    let horizon = scaled_horizon(10_000.0, 200.0);
    let interval = (horizon / 200.0).max(1.0);
    let trust = build_trust_graph(&params).expect("trust graph");
    let ratios = [Some(3.0), Some(9.0), None];
    let series = replacement_rate_over_time(&trust, &params, alpha, &ratios, horizon, interval)
        .expect("replacement series");

    let len = series[0].1.len();
    let mut rows = Vec::new();
    for i in (0..len).step_by(8) {
        let (t, _) = series[0].1.as_slice()[i];
        let mut row = vec![format!("{t:.0}")];
        for (_, ts) in &series {
            row.push(f3(ts.as_slice()[i].1));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("time (sp)".to_string())
        .chain(series.iter().map(|(r, _)| format!("r={}", ratio_label(*r))))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("\nFigure 9 (alpha = {alpha}): links replaced per node per shuffle period");
    println!("{}", render_table(&header_refs, &rows));
    for (r, ts) in &series {
        let tail = ts.tail_mean(20).unwrap_or(0.0);
        println!(
            "r={}: steady-state replacement rate ~ {tail:.2} links/node/sp",
            ratio_label(*r)
        );
    }
    write_json("fig9_churn_overhead", &series);
}
