//! Self-healing recovery benchmark: A/B-compares time-to-recover from a
//! correlated blackout with the remediation engine off versus on, at
//! several seeds, and writes `target/figures/BENCH_recovery.json`.
//!
//! Each seed runs the identical lossy-blackout scenario twice (healing off
//! / healing on); recovery is measured on the pseudonym overlay — periods
//! after the blackout lifts until flood coverage over pseudonym links
//! regains 90% of its pre-blackout mean (trusted links are node-addressed
//! and heal instantly, so they carry no signal). Honors `VEIL_SCALE` and
//! `VEIL_PARALLELISM`.

use serde::Serialize;
use veil_bench::{paper_params, render_table, write_bench_json};
use veil_core::experiment::{build_trust_graph, degradation_recovery_sweep, RecoveryPoint};

/// Availability the recovery sweep runs at: high enough that the blackout
/// (not churn) dominates the measurement.
const ALPHA: f64 = 0.8;

/// Per-message loss probability layered on top of the blackout, matching
/// the fault-injection A/B test.
const LOSS: f64 = 0.2;

const SEEDS: [u64; 3] = [11, 23, 47];

#[derive(Serialize)]
struct Report {
    alpha: f64,
    loss: f64,
    points: Vec<RecoveryPoint>,
}

fn main() {
    // No single-core guard: the sweep reports deterministic recovery
    // times, not wall-clock timings, so core count cannot skew it.
    let params = paper_params();
    let trust = build_trust_graph(&params).expect("trust graph");
    eprintln!(
        "recovery sweep: {} nodes, alpha = {ALPHA}, loss = {LOSS}, scale = {}",
        trust.node_count(),
        veil_bench::scale()
    );

    let points =
        degradation_recovery_sweep(&trust, &params, ALPHA, LOSS, &SEEDS).expect("recovery sweep");

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.seed.to_string(),
                if p.healing { "on" } else { "off" }.to_string(),
                match p.time_to_recover {
                    Some(t) => format!("{t:.1}"),
                    None => "-".to_string(),
                },
                p.health_alerts.to_string(),
                p.remedy_actions.to_string(),
            ]
        })
        .collect();
    println!("\ntime-to-recover from an 80% blackout (loss = {LOSS})");
    println!(
        "{}",
        render_table(
            &["seed", "healing", "recover (sp)", "alerts", "reactions"],
            &rows,
        )
    );

    let report = Report {
        alpha: ALPHA,
        loss: LOSS,
        points,
    };
    write_bench_json("recovery", &report);
}
