//! Sensitivity analysis "wrt a number of settings affecting the execution
//! of different protocols within our service" (paper abstract / §V).
//!
//! The paper reports only its most relevant results for space; this binary
//! regenerates the underlying sweeps at a demanding availability
//! (α = 0.25): link-layer latency, cache size, shuffle length ℓ, and the
//! target overlay-link count.

use serde::Serialize;
use veil_bench::{f3, paper_params, render_table, write_json};
use veil_core::config::OverlayConfig;
use veil_core::experiment::{availability_sweep, build_trust_graph, ExperimentParams};

#[derive(Serialize)]
struct SensitivityRow {
    parameter: String,
    value: f64,
    overlay_disconnected: f64,
    overlay_npl: f64,
}

fn measure(trust: &veil_graph::Graph, params: &ExperimentParams, alpha: f64) -> (f64, f64) {
    let sweep = availability_sweep(trust, params, &[alpha], true).expect("sweep");
    (sweep[0].overlay_disconnected, sweep[0].overlay_npl)
}

fn main() {
    let base = paper_params();
    let trust = build_trust_graph(&base).expect("trust graph");
    let alpha = 0.25;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json: Vec<SensitivityRow> = Vec::new();
    let mut record = |name: &str, value: f64, overlay: OverlayConfig| {
        // The candidate grids are paper-scale; under VEIL_SCALE some
        // combinations (e.g. shuffle_length > scaled cache) become
        // invalid — skip those rather than abort the smoke run.
        if let Err(e) = overlay.validate() {
            eprintln!("skipping {name} = {value}: {e}");
            return;
        }
        let params = ExperimentParams {
            overlay,
            ..base.clone()
        };
        let (disc, npl) = measure(&trust, &params, alpha);
        rows.push(vec![
            name.to_string(),
            format!("{value}"),
            f3(disc),
            f3(npl),
        ]);
        json.push(SensitivityRow {
            parameter: name.to_string(),
            value,
            overlay_disconnected: disc,
            overlay_npl: npl,
        });
    };

    for latency in [0.0, 0.25, 0.5, 1.0, 2.0] {
        record(
            "link_latency (sp)",
            latency,
            OverlayConfig {
                link_latency: latency,
                ..base.overlay.clone()
            },
        );
    }
    for cache in [50usize, 100, 200, 400, 800] {
        record(
            "cache_size",
            cache as f64,
            OverlayConfig {
                cache_size: cache,
                ..base.overlay.clone()
            },
        );
    }
    for l in [10usize, 20, 40, 80] {
        record(
            "shuffle_length",
            l as f64,
            OverlayConfig {
                shuffle_length: l,
                ..base.overlay.clone()
            },
        );
    }
    for target in [10usize, 25, 50, 100] {
        record(
            "target_links",
            target as f64,
            OverlayConfig {
                target_links: target,
                ..base.overlay.clone()
            },
        );
    }

    println!("\nSensitivity analysis at alpha = {alpha} (overlay metrics)");
    println!(
        "{}",
        render_table(
            &["parameter", "value", "disconnected", "norm. path len"],
            &rows
        )
    );
    write_json("sensitivity", &json);
}
