//! Table I: default values for system parameters.

use veil_bench::render_table;
use veil_core::experiment::ExperimentParams;

fn main() {
    let p = ExperimentParams::default();
    let rows = vec![
        vec![
            "Number of nodes in trust graph".to_string(),
            p.nodes.to_string(),
        ],
        vec![
            "Trust-graph sampling parameter (f)".to_string(),
            format!("{}", p.trust_f),
        ],
        vec![
            "Mean offline time in shuffling periods (Toff)".to_string(),
            format!("{} sp", p.mean_offline),
        ],
        vec![
            "Pseudonym lifetime".to_string(),
            format!(
                "{} sp (= {} x Toff)",
                p.lifetime().expect("default lifetime is finite"),
                p.lifetime_ratio.expect("default ratio is finite")
            ),
        ],
        vec![
            "Size of pseudonym cache".to_string(),
            p.overlay.cache_size.to_string(),
        ],
        vec![
            "Pseudonyms exchanged during a shuffle (l)".to_string(),
            p.overlay.shuffle_length.to_string(),
        ],
        vec![
            "Target number of overlay links per node".to_string(),
            p.overlay.target_links.to_string(),
        ],
    ];
    println!("Table I: Default values for system parameters");
    println!("{}", render_table(&["Parameter", "Default"], &rows));
}
