//! Experiment harness shared by the `fig*` binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index). This library provides the common plumbing:
//! paper-scale default parameters, an environment-driven scale knob for
//! smoke runs, plain-text table rendering, and JSON result export.
//!
//! # Scale knob
//!
//! Set `VEIL_SCALE=n` to divide the experiment size by `n` (nodes, warm-up
//! time, horizons). `VEIL_SCALE=1` (default) reproduces the paper's
//! configuration; `VEIL_SCALE=10` finishes in seconds for CI smoke tests.
//!
//! # Parallelism knob
//!
//! Set `VEIL_PARALLELISM=k` to cap the experiment engine at `k` worker
//! threads (`1` forces serial execution; `0` or unset uses every core).
//! The knob only changes wall-clock time: every sweep point derives its
//! randomness from the master seed and its own stream and results are
//! reduced in index order, so output files are byte-identical for every
//! value.
//!
//! # Fault knob
//!
//! Set `VEIL_FAULT_LOSS=p` to run every figure over the fault-injecting
//! link layer with per-message drop probability `p` (default `0` keeps the
//! ideal layer). The CI fault matrix uses this to smoke-test the figure
//! pipeline at several loss rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::path::{Path, PathBuf};
use veil_core::config::LinkLayerConfig;
use veil_core::experiment::ExperimentParams;
use veil_sim::fault::FaultConfig;

/// The availability grid the paper sweeps (Figures 3, 4 and 7).
pub const ALPHAS: [f64; 8] = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];

/// The pseudonym-lifetime ratios of Figures 7–9 (`None` = `r = ∞`).
pub const RATIOS: [Option<f64>; 4] = [Some(1.0), Some(3.0), Some(9.0), None];

/// Reads the `VEIL_SCALE` divisor (default 1).
pub fn scale() -> usize {
    std::env::var("VEIL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Reads the `VEIL_FAULT_LOSS` per-message drop probability (default 0).
pub fn fault_loss() -> f64 {
    std::env::var("VEIL_FAULT_LOSS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|p| (0.0..=1.0).contains(p))
        .unwrap_or(0.0)
}

/// Paper-scale experiment parameters divided by the `VEIL_SCALE` knob,
/// with the thread count taken from `VEIL_PARALLELISM` and the link layer
/// from `VEIL_FAULT_LOSS` (non-zero loss switches every experiment onto
/// the fault-injecting layer).
pub fn paper_params() -> ExperimentParams {
    let s = scale();
    let base = ExperimentParams::default();
    let mut params = if s == 1 { base } else { base.scaled_down(s) };
    params.overlay.parallelism = veil_par::env_parallelism();
    let loss = fault_loss();
    if loss > 0.0 {
        params.overlay.link = LinkLayerConfig::Faulty(FaultConfig::with_loss(loss));
    }
    params
}

/// Divides a time horizon by the scale knob, with a floor.
pub fn scaled_horizon(full: f64, min: f64) -> f64 {
    (full / scale() as f64).max(min)
}

/// Renders a plain-text table with right-aligned numeric columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a lifetime ratio for display (`inf` for `None`).
pub fn ratio_label(r: Option<f64>) -> String {
    match r {
        Some(v) if v.fract() == 0.0 => format!("{}", v as i64),
        Some(v) => format!("{v}"),
        None => "inf".to_string(),
    }
}

/// Directory where figure outputs are written (`target/figures`).
pub fn output_dir() -> PathBuf {
    let dir = Path::new("target").join("figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Serializes `value` as pretty JSON into `target/figures/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = output_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    // On stdout so scripts copying artifacts (e.g. into benchmarks/baseline/)
    // can capture the path.
    println!("wrote {}", path.display());
}

/// Serializes a benchmark report into `target/figures/BENCH_<name>.json`,
/// wrapped in the envelope shared by every `bench_*` binary: the benchmark
/// name, the `VEIL_SCALE` divisor and the available core count, with the
/// benchmark-specific payload under `"report"`. Keeping the envelope in
/// one place keeps the `BENCH_*.json` files mutually comparable.
pub fn write_bench_json<T: Serialize>(name: &str, payload: &T) {
    refuse_single_core_baseline(name);
    let doc = serde::Content::Map(vec![
        ("bench".to_string(), serde::Content::Str(name.to_string())),
        ("scale".to_string(), serde::Content::U64(scale() as u64)),
        (
            "available_cores".to_string(),
            serde::Content::U64(veil_par::effective_parallelism(None) as u64),
        ),
        ("report".to_string(), payload.to_content()),
    ]);
    write_json(&format!("BENCH_{name}"), &doc);
}

/// Whether writing a `BENCH_*.json` report is permitted on this host.
///
/// The committed baselines under `benchmarks/baseline/` are timing
/// references captured on multi-core hosts; a report produced with one
/// available core has the same shape but meaningless speedup columns, and
/// it is far too easy to copy one over a baseline by accident. Opt in
/// explicitly with the `--allow-single-core` flag (any `bench_*` binary)
/// or `VEIL_ALLOW_SINGLE_CORE=1` when a single-core report is wanted.
pub fn single_core_allowed() -> bool {
    std::env::args().any(|a| a == "--allow-single-core")
        || std::env::var("VEIL_ALLOW_SINGLE_CORE").is_ok_and(|v| v == "1")
}

/// Aborts (exit code 1) instead of writing a baseline-shaped benchmark
/// report when only one core is available and the caller did not opt in —
/// see [`single_core_allowed`]. The `bench_*` binaries call this first
/// thing in `main` so a refused run fails before the timing loops, and
/// [`write_bench_json`] calls it again as the last-line guarantee.
pub fn refuse_single_core_baseline(name: &str) {
    if veil_par::effective_parallelism(None) == 1 && !single_core_allowed() {
        eprintln!(
            "error: refusing to write BENCH_{name}.json: only one core is available \
             (VEIL_PARALLELISM or the machine), so the timing columns would be \
             meaningless next to the committed multi-core baselines.\n\
             Re-run with --allow-single-core (or VEIL_ALLOW_SINGLE_CORE=1) to \
             write the report anyway."
        );
        std::process::exit(1);
    }
}

/// Observability artifacts requested through the environment, written when
/// [`ObsSession::finish`] runs.
#[derive(Debug)]
pub struct ObsSession {
    recorder: veil_obs::Recorder,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    chrome_out: Option<String>,
}

/// Installs a global full recorder when any of `VEIL_TRACE_OUT`,
/// `VEIL_METRICS_OUT` or `VEIL_CHROME_TRACE` names an output file;
/// otherwise the global recorder stays a no-op and the figure binaries run
/// exactly as before. Call [`ObsSession::finish`] after the experiment to
/// write the requested files. Tracing never draws randomness, so figure
/// outputs are byte-identical whether or not these knobs are set.
pub fn init_observability() -> ObsSession {
    let var = |k: &str| std::env::var(k).ok().filter(|v| !v.trim().is_empty());
    let trace_out = var("VEIL_TRACE_OUT");
    let metrics_out = var("VEIL_METRICS_OUT");
    let chrome_out = var("VEIL_CHROME_TRACE");
    let recorder = if trace_out.is_some() || metrics_out.is_some() || chrome_out.is_some() {
        let r = veil_obs::Recorder::full();
        veil_obs::install_global(r.clone());
        r
    } else {
        veil_obs::Recorder::disabled()
    };
    ObsSession {
        recorder,
        trace_out,
        metrics_out,
        chrome_out,
    }
}

impl ObsSession {
    /// Whether this run records anything.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// The recorder driving this session (no-op when disabled).
    pub fn recorder(&self) -> &veil_obs::Recorder {
        &self.recorder
    }

    /// Writes the artifacts requested via the environment. A `.prom`
    /// extension on `VEIL_METRICS_OUT` selects Prometheus text format,
    /// anything else the JSON snapshot.
    pub fn finish(self) {
        let write = |path: &str, text: String| {
            std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        };
        if let Some(path) = &self.trace_out {
            write(path, self.recorder.events_jsonl());
        }
        if let Some(path) = &self.metrics_out {
            let text = if path.ends_with(".prom") {
                self.recorder.prometheus_text()
            } else {
                self.recorder.metrics_json()
            };
            write(path, text);
        }
        if let Some(path) = &self.chrome_out {
            write(path, self.recorder.chrome_trace());
        }
    }
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphas_cover_paper_range() {
        assert_eq!(ALPHAS.len(), 8);
        assert_eq!(ALPHAS[0], 0.125);
        assert_eq!(ALPHAS[7], 1.0);
        for w in ALPHAS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn ratios_match_figure_seven() {
        assert_eq!(RATIOS, [Some(1.0), Some(3.0), Some(9.0), None]);
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["alpha", "value"],
            &[
                vec!["0.5".into(), "1".into()],
                vec!["1".into(), "12.345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("alpha"));
        assert!(lines[2].ends_with("1"));
    }

    #[test]
    fn ratio_labels() {
        assert_eq!(ratio_label(Some(3.0)), "3");
        assert_eq!(ratio_label(None), "inf");
    }

    #[test]
    fn scaled_horizon_has_floor() {
        assert_eq!(scaled_horizon(1000.0, 50.0), 1000.0 / scale() as f64);
        assert!(
            scaled_horizon(10.0, 50.0) >= 50.0 / scale() as f64
                || scaled_horizon(10.0, 50.0) == 50.0
        );
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(1.23456), "1.235");
    }
}
