//! Minimal argument parser: positional arguments plus `--key value` flags
//! and boolean `--key` switches. Kept dependency-free on purpose.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: positionals in order, flags as key → value
/// (`"true"` for bare switches).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Errors from argument parsing and typed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A flag was given twice.
    DuplicateFlag(String),
    /// A required flag is absent.
    MissingFlag(String),
    /// A flag's value failed to parse as the requested type.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value supplied.
        value: String,
        /// Expected type description.
        expected: &'static str,
    },
    /// Unknown flag for this subcommand.
    UnknownFlag(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::DuplicateFlag(k) => write!(f, "flag --{k} given more than once"),
            ArgsError::MissingFlag(k) => write!(f, "required flag --{k} is missing"),
            ArgsError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "flag --{flag}: expected {expected}, got {value:?}"),
            ArgsError::UnknownFlag(k) => write!(f, "unknown flag --{k}"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// A token starting with `--` opens a flag; if the next token does not
    /// start with `--`, it becomes the value, otherwise the flag is a bare
    /// boolean switch.
    ///
    /// # Errors
    ///
    /// Returns an error if a flag repeats.
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = raw.into_iter().map(Into::into).collect();
        let mut out = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(name) = tok.strip_prefix("--") {
                let name = name.to_string();
                let value = match tokens.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        i += 1;
                        next.clone()
                    }
                    _ => "true".to_string(),
                };
                if out.flags.insert(name.clone(), value).is_some() {
                    return Err(ArgsError::DuplicateFlag(name));
                }
            } else {
                out.positionals.push(tok.clone());
            }
            i += 1;
        }
        Ok(out)
    }

    /// Positional arguments in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The positional at `idx`, if present.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positionals.get(idx).map(String::as_str)
    }

    /// Raw flag value.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether a bare switch or flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Typed flag access with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] if present but unparsable.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: name.to_string(),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// Typed access to a required flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingFlag`] or [`ArgsError::BadValue`].
    pub fn require<T: std::str::FromStr>(
        &self,
        name: &str,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        match self.flags.get(name) {
            None => Err(ArgsError::MissingFlag(name.to_string())),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: name.to_string(),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// Rejects flags outside the allowed set (catches typos early).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::UnknownFlag`] for the first unknown flag.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgsError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgsError::UnknownFlag(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positionals_and_flags() {
        let args = Args::parse(["generate", "--nodes", "100", "--verbose"]).unwrap();
        assert_eq!(args.positionals(), &["generate".to_string()]);
        assert_eq!(args.positional(0), Some("generate"));
        assert_eq!(args.flag("nodes"), Some("100"));
        assert!(args.has("verbose"));
        assert_eq!(args.flag("verbose"), Some("true"));
        assert!(!args.has("quiet"));
    }

    #[test]
    fn rejects_duplicate_flags() {
        let err = Args::parse(["--a", "1", "--a", "2"]).unwrap_err();
        assert_eq!(err, ArgsError::DuplicateFlag("a".into()));
    }

    #[test]
    fn typed_access() {
        let args = Args::parse(["--n", "42", "--f", "0.5"]).unwrap();
        assert_eq!(args.require::<usize>("n", "integer").unwrap(), 42);
        assert_eq!(args.get_or::<f64>("f", 1.0, "float").unwrap(), 0.5);
        assert_eq!(args.get_or::<f64>("missing", 7.0, "float").unwrap(), 7.0);
        assert!(args.require::<usize>("missing", "integer").is_err());
    }

    #[test]
    fn bad_value_reports_type() {
        let args = Args::parse(["--n", "notanumber"]).unwrap();
        let err = args.require::<usize>("n", "integer").unwrap_err();
        assert!(matches!(err, ArgsError::BadValue { .. }));
        assert!(err.to_string().contains("integer"));
    }

    #[test]
    fn flag_followed_by_flag_is_a_switch() {
        let args = Args::parse(["--dry-run", "--nodes", "5"]).unwrap();
        assert!(args.has("dry-run"));
        assert_eq!(args.flag("nodes"), Some("5"));
    }

    #[test]
    fn check_known_catches_typos() {
        let args = Args::parse(["--nodes", "5", "--sede", "1"]).unwrap();
        let err = args.check_known(&["nodes", "seed"]).unwrap_err();
        assert_eq!(err, ArgsError::UnknownFlag("sede".into()));
        let ok = Args::parse(["--nodes", "5"]).unwrap();
        ok.check_known(&["nodes", "seed"]).unwrap();
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // `-1` does not start with `--`, so it is a value.
        let args = Args::parse(["--offset", "-1"]).unwrap();
        assert_eq!(args.require::<i64>("offset", "integer").unwrap(), -1);
    }
}
