//! `veil attack` — run the Section III-E threat models against a fresh
//! overlay.

use super::CmdResult;
use crate::args::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use veil_core::experiment::{build_simulation, build_trust_graph, ExperimentParams};
use veil_privacy::knowledge::{audit, ObserverSet};
use veil_privacy::size_estimation::estimate_system_size;
use veil_privacy::timing_attack::detection_rate;
use veil_privacy::traffic::rotation_exposure;
use veil_privacy::vertex_cut;

/// `veil attack --nodes N [--seed S]`
pub fn run(args: &Args) -> CmdResult {
    args.check_known(&["nodes", "seed"])?;
    let nodes: usize = args.require("nodes", "integer")?;
    let seed: u64 = args.get_or("seed", 42, "integer")?;
    let params = ExperimentParams {
        nodes,
        seed,
        warmup: 60.0,
        source_multiplier: 20,
        ..ExperimentParams::default()
    };
    let trust = build_trust_graph(&params)?;
    let mut out = String::new();
    writeln!(
        out,
        "threat-model report for a {nodes}-node community (seed {seed})\n"
    )?;

    // Observer knowledge.
    writeln!(out, "[internal observers]")?;
    for k in [1usize, 5, nodes / 10] {
        let k = k.max(1).min(nodes);
        let report = audit(&trust, &ObserverSet::new(0..k));
        writeln!(
            out,
            "  {k:>4} colluding: know {:.1}% of nodes, {:.1}% of edges{}",
            100.0 * report.node_fraction,
            100.0 * report.edge_fraction,
            if report.is_vertex_cut {
                " (vertex cut)"
            } else {
                ""
            }
        )?;
    }

    // Vertex cuts.
    let cuts = vertex_cut::articulation_points(&trust);
    writeln!(
        out,
        "\n[vertex cuts] {} of {} nodes are articulation points of the trust graph",
        cuts.len(),
        nodes
    )?;

    // Timing attack.
    let mut sim = build_simulation(trust.clone(), &params, 1.0)?;
    sim.run_until(params.warmup);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let (hits, trials) = detection_rate(&mut sim, 0, 1, 2.0, 15, &mut rng);
    writeln!(out, "\n[pseudonym-injection timing attack]")?;
    if trials > 0 {
        writeln!(
            out,
            "  two-round window: {hits}/{trials} detections ({:.0}%)",
            100.0 * hits as f64 / trials as f64
        )?;
    } else {
        writeln!(out, "  no eligible target pairs adjacent to observers 0/1")?;
    }

    // Traffic analysis.
    let exposure = rotation_exposure(&mut sim, 40.0);
    writeln!(out, "\n[external observer / traffic analysis]")?;
    writeln!(
        out,
        "  rotation factor over 40 sp: {:.2} ({:.1} distinct counterparties vs {:.1} concurrent links)",
        exposure.rotation_factor,
        exposure.mean_distinct_counterparties,
        exposure.mean_concurrent_degree
    )?;

    // Size estimation.
    let est = estimate_system_size(&mut sim, 0, 40.0, 2.0);
    writeln!(out, "\n[size estimation]")?;
    writeln!(
        out,
        "  single observer estimates {} of {} participants ({:.0}%)",
        est.estimated,
        est.actual,
        100.0 * est.recall()
    )?;
    Ok(out.trim_end().to_string())
}
