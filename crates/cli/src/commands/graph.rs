//! `veil graph ...` — generate, inspect and sample trust graphs.

use super::CmdResult;
use crate::args::Args;
use std::fmt::Write as _;
use std::fs::File;
use std::io::BufWriter;
use veil_graph::generators::{self, CommunityParams};
use veil_graph::sample::sample_trust_graph;
use veil_graph::{io, metrics, Graph};
use veil_sim::rng::{derive_rng, Stream};

fn load(path: &str) -> Result<Graph, Box<dyn std::error::Error>> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(io::read_edge_list(file)?)
}

fn store(graph: &Graph, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    io::write_edge_list(graph, BufWriter::new(file))?;
    Ok(())
}

/// `veil graph generate --model M --nodes N [--seed S] [--degree D] [--out F]`
pub fn generate(args: &Args) -> CmdResult {
    args.check_known(&["model", "nodes", "seed", "degree", "avg-degree", "out"])?;
    let model: String = args.require("model", "model name")?;
    let nodes: usize = args.require("nodes", "integer")?;
    let seed: u64 = args.get_or("seed", 42, "integer")?;
    let degree: usize = args.get_or("degree", 3, "integer")?;
    // Fractional target for the degree-matched model only (the paper's
    // f = 1.0 trust samples average 11.3 links per node).
    let avg_degree: f64 = args.get_or("avg-degree", 11.3, "float >= 2")?;
    let mut rng = derive_rng(seed, Stream::Topology);
    let graph = match model.as_str() {
        "ba" => generators::barabasi_albert(nodes, degree, &mut rng)?,
        "er" => generators::erdos_renyi_gnm(nodes, nodes * degree, &mut rng)?,
        "ws" => generators::watts_strogatz(nodes, degree.max(2) / 2 * 2, 0.1, &mut rng)?,
        "hk" => generators::holme_kim(nodes, degree, 0.9, &mut rng)?,
        "dm" | "degree-matched" => generators::degree_matched(nodes, avg_degree, 0.6, &mut rng)?,
        "social" => generators::social_graph(nodes, degree, &mut rng)?,
        "community" => generators::community_social(nodes, CommunityParams::default(), &mut rng)?,
        other => {
            return Err(
                format!("unknown model {other:?} (try ba|er|ws|hk|dm|social|community)").into(),
            )
        }
    };
    let mut out = format!(
        "generated {model} graph: {} nodes, {} edges, avg degree {:.2}",
        graph.node_count(),
        graph.edge_count(),
        graph.average_degree()
    );
    if let Some(path) = args.flag("out") {
        store(&graph, path)?;
        write!(out, "\nwritten to {path}")?;
    } else {
        let mut buf = Vec::new();
        io::write_edge_list(&graph, &mut buf)?;
        write!(out, "\n{}", String::from_utf8_lossy(&buf))?;
    }
    Ok(out)
}

/// `veil graph stats <FILE>`
pub fn stats(args: &Args) -> CmdResult {
    args.check_known(&[])?;
    let path = args
        .positional(2)
        .ok_or("graph stats needs a file argument")?;
    let g = load(path)?;
    let degrees = g.degrees();
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    let components = metrics::component_sizes_masked(&g, None);
    let mut out = String::new();
    writeln!(out, "file:              {path}")?;
    writeln!(out, "nodes:             {}", g.node_count())?;
    writeln!(out, "edges:             {}", g.edge_count())?;
    writeln!(out, "avg degree:        {:.2}", g.average_degree())?;
    writeln!(out, "max degree:        {max_degree}")?;
    writeln!(out, "components:        {}", components.len())?;
    writeln!(
        out,
        "largest component: {}",
        components.first().copied().unwrap_or(0)
    )?;
    writeln!(
        out,
        "clustering:        {:.4}",
        metrics::average_clustering(&g)
    )?;
    writeln!(
        out,
        "assortativity:     {:.4}",
        metrics::degree_assortativity(&g)
    )?;
    writeln!(out, "degeneracy:        {}", metrics::degeneracy(&g))?;
    writeln!(
        out,
        "articulation pts:  {}",
        metrics::articulation_points(&g).len()
    )?;
    writeln!(out, "bridges:           {}", metrics::bridges(&g).len())?;
    if g.node_count() <= 2000 {
        writeln!(out, "diameter (LCC):    {}", metrics::diameter(&g))?;
        writeln!(
            out,
            "avg path len (LCC): {:.3}",
            metrics::average_path_length(&g, None)
        )?;
    }
    Ok(out.trim_end().to_string())
}

/// `veil graph sample <FILE> --target N [--f F] [--seed S] [--out F]`
pub fn sample(args: &Args) -> CmdResult {
    args.check_known(&["target", "f", "seed", "out"])?;
    let path = args
        .positional(2)
        .ok_or("graph sample needs a file argument")?;
    let target: usize = args.require("target", "integer")?;
    let f: f64 = args.get_or("f", 0.5, "float in [0,1]")?;
    let seed: u64 = args.get_or("seed", 42, "integer")?;
    let source = load(path)?;
    let mut rng = derive_rng(seed, Stream::Topology);
    let sampled = sample_trust_graph(&source, target, f, &mut rng)?;
    let mut out = format!(
        "sampled {} of {} nodes with f = {f}: {} edges, avg degree {:.2}",
        sampled.graph.node_count(),
        source.node_count(),
        sampled.graph.edge_count(),
        sampled.graph.average_degree()
    );
    if let Some(dest) = args.flag("out") {
        store(&sampled.graph, dest)?;
        write!(out, "\nwritten to {dest}")?;
    }
    Ok(out)
}
