//! Subcommand implementations. Each returns the text to print.

pub mod attack;
pub mod graph;
pub mod obs;
pub mod simulate;

/// Convenience alias for command results.
pub type CmdResult = Result<String, Box<dyn std::error::Error>>;

/// Raised by `veil obs diff` when the candidate run regresses beyond the
/// tolerance bands. Carries the rendered comparison; `main` prints it
/// without the usage banner and exits with code 2 so CI can gate on it.
#[derive(Debug)]
pub struct Regression(pub String);

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Regression {}
