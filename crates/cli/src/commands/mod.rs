//! Subcommand implementations. Each returns the text to print.

pub mod attack;
pub mod graph;
pub mod obs;
pub mod simulate;

/// Convenience alias for command results.
pub type CmdResult = Result<String, Box<dyn std::error::Error>>;
