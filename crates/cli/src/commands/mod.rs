//! Subcommand implementations. Each returns the text to print.

pub mod attack;
pub mod graph;
pub mod obs;
pub mod scenario;
pub mod simulate;

/// Convenience alias for command results.
pub type CmdResult = Result<String, Box<dyn std::error::Error>>;

/// Raised by `veil obs diff` when the candidate run regresses beyond the
/// tolerance bands. Carries the rendered comparison; `main` prints it
/// without the usage banner and exits with code 2 so CI can gate on it.
#[derive(Debug)]
pub struct Regression(pub String);

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Regression {}

/// Raised by `veil scenario run/campaign/validate` when a scenario fails
/// its assertions or a library file is invalid. Carries the rendered
/// verdict or diagnostic; `main` prints it without the usage banner and
/// exits with code 3 so CI can gate on scenario regressions separately
/// from usage errors (1) and obs-diff regressions (2).
#[derive(Debug)]
pub struct ScenarioFailure(pub String);

impl std::fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ScenarioFailure {}
