//! `veil obs` — inspect and validate observability artifacts produced by
//! `veil simulate --trace-out` (or the `VEIL_TRACE_OUT` bench knob).

use super::CmdResult;
use crate::args::Args;
use std::fmt::Write as _;

/// `veil obs validate FILE` — check a JSONL trace file against the event
/// schema, reporting the number of valid events or the first offending
/// line.
pub fn validate(args: &Args) -> CmdResult {
    args.check_known(&[])?;
    let Some(path) = args.positional(2) else {
        return Err("obs validate requires a trace file argument".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let count = veil_obs::validate_events_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(format!("{path}: {count} events, all valid"))
}

/// `veil obs schema` — print the trace-event schema (one line per event
/// kind with its typed fields).
pub fn schema(args: &Args) -> CmdResult {
    args.check_known(&[])?;
    let mut out = String::new();
    writeln!(out, "trace event schema (JSONL, one event per line)")?;
    writeln!(
        out,
        "common fields: t (f64 simulated time), tid (u32 recording thread),"
    )?;
    writeln!(
        out,
        "seq (u64 per-thread sequence), node (u32 or null), kind (tagged payload)"
    )?;
    writeln!(out)?;
    out.push_str(&veil_obs::schema_text());
    Ok(out.trim_end().to_string())
}
