//! `veil obs` — inspect, validate, analyze and diff observability
//! artifacts produced by `veil simulate --trace-out` (or the
//! `VEIL_TRACE_OUT` bench knob).

use super::{CmdResult, Regression};
use crate::args::Args;
use std::fmt::Write as _;
use veil_obs::{analyze_trace, diff_reports, DiffConfig, EventKind, TraceEvent, TraceReport};

/// `veil obs validate FILE` — check a JSONL trace file against the event
/// schema, reporting the number of valid events or the first offending
/// line.
pub fn validate(args: &Args) -> CmdResult {
    args.check_known(&[])?;
    let Some(path) = args.positional(2) else {
        return Err("obs validate requires a trace file argument".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let count = veil_obs::validate_events_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(format!("{path}: {count} events, all valid"))
}

/// Loads a positional argument as a [`TraceReport`]: either a `.json`
/// analysis report written by `obs analyze --out`, or a raw `.jsonl` trace
/// which is analyzed on the fly.
fn load_report(path: &str) -> Result<TraceReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    if let Ok(report) = serde_json::from_str::<TraceReport>(&text) {
        return Ok(report);
    }
    analyze_trace(&text).map_err(|e| format!("{path}: {e}"))
}

/// `veil obs analyze FILE [--json] [--out FILE]` — replay a JSONL trace
/// into per-round overlay state and report derived health series: shuffle
/// success rate, per-round drop breakdown, the alert timeline and
/// time-to-recover after blackouts. `--out` saves the machine-readable
/// report (the format `obs diff` consumes) alongside the printed text.
pub fn analyze(args: &Args) -> CmdResult {
    args.check_known(&["json", "out"])?;
    let Some(path) = args.positional(2) else {
        return Err("obs analyze requires a trace file argument".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let report = analyze_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut out = if args.has("json") {
        serde_json::to_string_pretty(&report)?
    } else {
        report.render_text().trim_end().to_string()
    };
    if let Some(dest) = args.flag("out") {
        std::fs::write(dest, serde_json::to_string_pretty(&report)?)
            .map_err(|e| format!("cannot write {dest:?}: {e}"))?;
        if !args.has("json") {
            write!(out, "\n\nreport written to {dest}")?;
        }
    }
    Ok(out)
}

/// `veil obs diff BASELINE CANDIDATE [--rel-tolerance F] [--abs-tolerance F]
/// [--rate-tolerance F] [--json]` — compare two runs (traces or saved
/// analysis reports) under tolerance bands. Worsened metrics beyond the
/// bands are regressions: the command prints the comparison and exits
/// with code 2, which is what lets CI gate on overlay health.
pub fn diff(args: &Args) -> CmdResult {
    args.check_known(&["rel-tolerance", "abs-tolerance", "rate-tolerance", "json"])?;
    let (Some(base_path), Some(cand_path)) = (args.positional(2), args.positional(3)) else {
        return Err("obs diff requires BASELINE and CANDIDATE file arguments".into());
    };
    let cfg = DiffConfig {
        rel_tolerance: args.get_or(
            "rel-tolerance",
            DiffConfig::default().rel_tolerance,
            "float",
        )?,
        abs_tolerance: args.get_or(
            "abs-tolerance",
            DiffConfig::default().abs_tolerance,
            "float",
        )?,
        rate_tolerance: args.get_or(
            "rate-tolerance",
            DiffConfig::default().rate_tolerance,
            "float",
        )?,
    };
    let baseline = load_report(base_path)?;
    let candidate = load_report(cand_path)?;
    let diff = diff_reports(&baseline, &candidate, cfg);
    let rendered = if args.has("json") {
        serde_json::to_string_pretty(&diff)?
    } else {
        format!(
            "baseline:  {base_path}\ncandidate: {cand_path}\n\n{}",
            diff.render_text().trim_end()
        )
    };
    if diff.passes() {
        Ok(rendered)
    } else {
        Err(Box::new(Regression(rendered)))
    }
}

/// Formats one trace event for `obs tail`.
fn format_event(ev: &TraceEvent) -> String {
    match &ev.kind {
        EventKind::HealthAlert {
            detector,
            severity,
            value,
            threshold,
        } => format!(
            "[t={:>8.1}] {severity:>8} {detector}: value {value:.3} vs threshold {threshold:.3}",
            ev.t
        ),
        other => {
            let node = match ev.node {
                Some(v) => format!("node {v}"),
                None => "-".to_string(),
            };
            format!("[t={:>8.1}] {:>8} {}", ev.t, node, other.name())
        }
    }
}

/// `veil obs tail FILE [--all] [--no-follow] [--poll-ms N] [--timeout-s T]`
/// — follow a growing trace file and print `HealthAlert` events as they
/// are appended (every event with `--all`). `--no-follow` drains what is
/// already there and exits; `--timeout-s` bounds a follow.
pub fn tail(args: &Args) -> CmdResult {
    args.check_known(&["all", "no-follow", "poll-ms", "timeout-s"])?;
    let Some(path) = args.positional(2) else {
        return Err("obs tail requires a trace file argument".into());
    };
    let all = args.has("all");
    let follow = !args.has("no-follow");
    let poll_ms: u64 = args.get_or("poll-ms", 200, "integer")?;
    let timeout_s: f64 = args.get_or("timeout-s", 0.0, "float (0 = unbounded)")?;
    let started = std::time::Instant::now();
    let mut offset = 0usize;
    let mut header_seen = false;
    let mut printed = 0u64;
    let mut scanned = 0u64;
    loop {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
        // Only complete (newline-terminated) lines past the last offset are
        // consumed; a partially written tail line waits for the next poll.
        let complete = match text[offset.min(text.len())..].rfind('\n') {
            Some(rel) => offset + rel + 1,
            None => offset,
        };
        for line in text[offset.min(text.len())..complete].lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if !header_seen {
                header_seen = true;
                if let Some(version) = veil_obs::parse_trace_header(line) {
                    if version != u64::from(veil_obs::TRACE_SCHEMA_VERSION) {
                        return Err(format!(
                            "{path}: unsupported trace version {version} (this build reads \
                             version {})",
                            veil_obs::TRACE_SCHEMA_VERSION
                        )
                        .into());
                    }
                    continue;
                }
            }
            let Ok(ev) = serde_json::from_str::<TraceEvent>(line) else {
                continue;
            };
            scanned += 1;
            if all || matches!(ev.kind, EventKind::HealthAlert { .. }) {
                println!("{}", format_event(&ev));
                printed += 1;
            }
        }
        offset = complete;
        if !follow {
            break;
        }
        if timeout_s > 0.0 && started.elapsed().as_secs_f64() >= timeout_s {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(10)));
    }
    Ok(format!(
        "tail: printed {printed} of {scanned} event(s) from {path}"
    ))
}

/// `veil obs schema` — print the trace-event schema (one line per event
/// kind with its typed fields).
pub fn schema(args: &Args) -> CmdResult {
    args.check_known(&[])?;
    let mut out = String::new();
    writeln!(out, "trace event schema (JSONL, one event per line)")?;
    writeln!(
        out,
        "common fields: t (f64 simulated time), tid (u32 recording thread),"
    )?;
    writeln!(
        out,
        "seq (u64 per-thread sequence), node (u32 or null), kind (tagged payload)"
    )?;
    writeln!(out)?;
    out.push_str(&veil_obs::schema_text());
    Ok(out.trim_end().to_string())
}
