//! `veil scenario` — validate, list, run, and sweep declarative scenario
//! files (see `scenarios/` and DESIGN.md §11).

use super::{CmdResult, ScenarioFailure};
use crate::args::Args;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use veil_core::scenario::{
    self, render_error, run_campaign, run_scenario_with, CampaignSpec, RunOverrides, Scenario,
    ScenarioOutcome,
};

/// Loads, parses, and semantically validates a scenario file, rendering
/// any diagnostic against the source text.
fn load(path: &Path) -> Result<(Scenario, String), String> {
    let label = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {label}: {e}"))?;
    let (s, spans) =
        scenario::parse_scenario_path(path).map_err(|e| render_error(&e, &label, &text))?;
    scenario::validate::validate_with_spans(&s, &spans)
        .map_err(|e| render_error(&e, &label, &text))?;
    Ok((s, text))
}

/// Scenario files in `dir`, sorted by name for deterministic output.
fn scenario_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|x| x.to_str()),
                Some("toml") | Some("json")
            )
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .toml or .json scenarios in {}", dir.display()));
    }
    Ok(files)
}

/// `veil scenario validate <FILE|DIR>` — parse + validate one file or a
/// whole library; any invalid file fails the command (exit 3) with a
/// caret diagnostic.
pub fn validate(args: &Args) -> CmdResult {
    args.check_known(&[])?;
    let target = args
        .positional(2)
        .ok_or("scenario validate: expected a file or directory")?;
    let target = Path::new(target);
    let files = if target.is_dir() {
        scenario_files(target)?
    } else {
        vec![target.to_path_buf()]
    };
    let mut out = String::new();
    let mut failures = 0usize;
    for path in &files {
        match load(path) {
            Ok((s, _)) => {
                let _ = writeln!(
                    out,
                    "ok      {} ({} nodes, horizon {}, {} phase{})",
                    path.display(),
                    s.nodes,
                    s.horizon,
                    s.phases.len(),
                    if s.phases.len() == 1 { "" } else { "s" },
                );
            }
            Err(diag) => {
                failures += 1;
                let _ = writeln!(out, "INVALID {}\n{diag}", path.display());
            }
        }
    }
    let _ = writeln!(out, "{} scenario(s), {} invalid", files.len(), failures);
    if failures > 0 {
        return Err(Box::new(ScenarioFailure(out.trim_end().to_string())));
    }
    Ok(out.trim_end().to_string())
}

/// `veil scenario list [DIR]` — one line per scenario in the library.
pub fn list(args: &Args) -> CmdResult {
    args.check_known(&[])?;
    let dir = args.positional(2).unwrap_or("scenarios");
    let files = scenario_files(Path::new(dir))?;
    let mut out = format!(
        "{:<22} {:>6} {:>8} {:>7} {:>7}  description\n",
        "name", "nodes", "horizon", "phases", "checks"
    );
    for path in &files {
        let (s, _) = load(path).map_err(|diag| format!("{}:\n{diag}", path.display()))?;
        let checks = count_assertions(&s);
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>8} {:>7} {:>7}  {}",
            s.name,
            s.nodes,
            s.horizon,
            s.phases.len(),
            checks,
            s.description,
        );
    }
    Ok(out.trim_end().to_string())
}

fn count_assertions(s: &Scenario) -> usize {
    let a = &s.assertions;
    let opts = [
        a.max_disconnected.is_some(),
        a.min_coverage.is_some(),
        a.max_alerts.is_some(),
        a.min_alerts.is_some(),
        a.max_critical_alerts.is_some(),
        a.min_shuffle_success_rate.is_some(),
        a.max_shuffle_failures.is_some(),
        a.forbid_vertex_cut,
        a.max_observed_node_fraction.is_some(),
        a.max_observed_edge_fraction.is_some(),
        a.recovery_time_at_most.is_some(),
    ];
    opts.iter().filter(|&&b| b).count()
        + a.require_detectors.len()
        + a.forbid_detectors.len()
        + a.reaction_fired.len()
}

fn render_outcome(outcome: &ScenarioOutcome) -> String {
    let mut out = String::new();
    let shards = match outcome.shards {
        Some(k) => k.to_string(),
        None => "-".to_string(),
    };
    let _ = writeln!(
        out,
        "scenario `{}`  seed {}  shards {}",
        outcome.scenario, outcome.seed, shards
    );
    let snap = &outcome.snapshot;
    let _ = writeln!(
        out,
        "  final: {} online, {:.1}% disconnected, coverage {:.1}%, \
         shuffle success {:.1}%",
        snap.online_nodes,
        100.0 * snap.fraction_disconnected,
        100.0 * outcome.coverage,
        100.0 * outcome.shuffle_success_rate,
    );
    let _ = writeln!(
        out,
        "  alerts: {} total, {} critical{}",
        outcome.alerts_total,
        outcome.critical_alerts,
        if outcome.detectors.is_empty() {
            String::new()
        } else {
            format!(" [{}]", outcome.detectors.join(", "))
        },
    );
    if !outcome.reaction_counts.is_empty() {
        let total: u64 = outcome.reaction_counts.values().sum();
        let kinds: Vec<String> = outcome
            .reaction_counts
            .iter()
            .map(|(k, v)| format!("{v} {k}"))
            .collect();
        let _ = writeln!(
            out,
            "  healing: {} reaction(s) ({})",
            total,
            kinds.join(", ")
        );
    }
    if let Some(measured) = outcome.recovery_time {
        match measured {
            Some(t) => {
                let _ = writeln!(out, "  recovery: {t} period(s) after the outage");
            }
            None => {
                let _ = writeln!(out, "  recovery: never, within the horizon");
            }
        }
    }
    if let Some(attack) = &outcome.attack {
        let _ = writeln!(
            out,
            "  attack: observers know {:.1}% of nodes, {:.1}% of edges, vertex cut: {}",
            100.0 * attack.node_fraction,
            100.0 * attack.edge_fraction,
            if attack.is_vertex_cut { "YES" } else { "no" },
        );
    }
    for check in &outcome.checks {
        let _ = writeln!(
            out,
            "  [{}] {:<26} {}",
            if check.passed { "PASS" } else { "FAIL" },
            check.key,
            check.detail,
        );
    }
    if outcome.checks.is_empty() {
        let _ = writeln!(out, "  (no assertions)");
    }
    out
}

/// `veil scenario run <FILE>` — one run, verdict table, exit 3 on any
/// failed assertion.
pub fn run(args: &Args) -> CmdResult {
    args.check_known(&["seed", "shards", "json", "trace-out"])?;
    let path = args
        .positional(2)
        .ok_or("scenario run: expected a scenario file")?;
    let (s, _) = load(Path::new(path)).map_err(flat)?;
    let overrides = RunOverrides {
        seed: match args.flag("seed") {
            Some(_) => Some(args.require::<u64>("seed", "integer seed")?),
            None => None,
        },
        shards: match args.flag("shards") {
            Some(_) => Some(args.require::<usize>("shards", "shard count")?),
            None => None,
        },
    };
    let run = run_scenario_with(&s, overrides, Some(&veil_privacy::evaluate_attack))
        .map_err(|e| e.to_string())?;
    if let Some(out_path) = args.flag("trace-out") {
        std::fs::write(out_path, &run.trace_jsonl)
            .map_err(|e| format!("writing {out_path}: {e}"))?;
    }
    let text = if args.has("json") {
        serde_json::to_string_pretty(&run.outcome)?
    } else {
        let mut text = render_outcome(&run.outcome);
        if let Some(out_path) = args.flag("trace-out") {
            let _ = writeln!(text, "  trace: {out_path}");
        }
        let _ = write!(
            text,
            "verdict: {}",
            if run.outcome.passed { "PASS" } else { "FAIL" }
        );
        text
    };
    if run.outcome.passed {
        Ok(text)
    } else {
        Err(Box::new(ScenarioFailure(text)))
    }
}

/// `veil scenario campaign <FILE>` — sweep seeds × shard counts in
/// parallel, print a per-run verdict table, optionally write a JSONL
/// report, exit 3 if any run fails an assertion.
pub fn campaign(args: &Args) -> CmdResult {
    args.check_known(&["seeds", "seed-list", "shard-list", "parallelism", "report"])?;
    let path = args
        .positional(2)
        .ok_or("scenario campaign: expected a scenario file")?;
    let (s, _) = load(Path::new(path)).map_err(flat)?;
    let seeds: Vec<u64> = match args.flag("seed-list") {
        Some(list) => parse_list(list, "seed-list")?,
        None => {
            let n: u64 = args.get_or("seeds", 3, "seed count")?;
            (s.seed..s.seed + n).collect()
        }
    };
    // Shard counts: 0 means the sequential executor, k >= 1 the sharded
    // one with k shards.
    let shard_counts: Vec<Option<usize>> = match args.flag("shard-list") {
        Some(list) => parse_list::<usize>(list, "shard-list")?
            .into_iter()
            .map(|k| if k == 0 { None } else { Some(k) })
            .collect(),
        None => vec![None],
    };
    let parallelism = match args.flag("parallelism") {
        Some(_) => Some(args.require::<usize>("parallelism", "worker count")?),
        None => None,
    };
    let spec = CampaignSpec {
        seeds,
        shard_counts,
        parallelism,
    };
    let report =
        run_campaign(&s, &spec, Some(&veil_privacy::evaluate_attack)).map_err(|e| e.to_string())?;
    if let Some(out_path) = args.flag("report") {
        std::fs::write(out_path, report.jsonl()).map_err(|e| format!("writing {out_path}: {e}"))?;
    }
    let mut out = format!(
        "campaign `{}`: {} runs\n",
        report.scenario,
        report.runs.len()
    );
    let _ = writeln!(
        out,
        "  {:>10} {:>7} {:>7} {:>9} {:>7}  verdict",
        "seed", "shards", "disc.", "coverage", "alerts"
    );
    for r in &report.runs {
        let shards = match r.shards {
            Some(k) => k.to_string(),
            None => "-".to_string(),
        };
        let verdict = if r.passed {
            "PASS".to_string()
        } else {
            let failed: Vec<&str> = r
                .checks
                .iter()
                .filter(|c| !c.passed)
                .map(|c| c.key.as_str())
                .collect();
            format!("FAIL ({})", failed.join(", "))
        };
        let _ = writeln!(
            out,
            "  {:>10} {:>7} {:>6.1}% {:>8.1}% {:>7}  {}",
            r.seed,
            shards,
            100.0 * r.snapshot.fraction_disconnected,
            100.0 * r.coverage,
            r.alerts_total,
            verdict,
        );
    }
    let _ = write!(
        out,
        "{}/{} runs passed",
        report.passed_count(),
        report.runs.len()
    );
    if let Some(out_path) = args.flag("report") {
        let _ = write!(out, "; report: {out_path}");
    }
    if report.all_passed() {
        Ok(out)
    } else {
        Err(Box::new(ScenarioFailure(out)))
    }
}

fn parse_list<T: std::str::FromStr>(list: &str, flag: &str) -> Result<Vec<T>, String> {
    list.split(',')
        .map(|item| {
            item.trim()
                .parse()
                .map_err(|_| format!("--{flag}: cannot parse {item:?}"))
        })
        .collect()
}

fn flat(diag: String) -> String {
    diag.trim_end().to_string()
}
