//! `veil simulate` — run the overlay-maintenance protocol under churn and
//! report connectivity over time.

use super::CmdResult;
use crate::args::Args;
use serde::Serialize;
use std::fmt::Write as _;
use veil_core::config::LinkLayerConfig;
use veil_core::experiment::{build_simulation, build_trust_graph, ExperimentParams};
use veil_core::metrics::{snapshot, Collector};
use veil_graph::metrics as gm;
use veil_sim::fault::{FaultConfig, LatencyDist};

#[derive(Serialize)]
struct JsonOutput {
    config: ExperimentParams,
    alpha: f64,
    series: Vec<(f64, f64, f64)>, // (time, overlay_disconnected, trust_disconnected)
    #[serde(rename = "final")]
    final_snapshot: veil_core::metrics::OverlaySnapshot,
    normalized_path_length: f64,
}

/// Parses `--blackout T,DURATION,FRACTION`.
fn parse_blackout(raw: &str) -> Result<(f64, f64, f64), String> {
    let parts: Vec<&str> = raw.split(',').collect();
    if parts.len() != 3 {
        return Err(format!(
            "--blackout expects T,DURATION,FRACTION, got {raw:?}"
        ));
    }
    let parse = |s: &str, what: &str| -> Result<f64, String> {
        s.trim()
            .parse::<f64>()
            .map_err(|e| format!("--blackout {what}: {e}"))
    };
    let t = parse(parts[0], "start time")?;
    let duration = parse(parts[1], "duration")?;
    let fraction = parse(parts[2], "fraction")?;
    if !(0.0..=1.0).contains(&fraction) {
        return Err("blackout fraction must be in [0, 1]".into());
    }
    Ok((t, duration, fraction))
}

/// Parses `--latency-dist constant|exponential|pareto[:SHAPE]` together
/// with the `--mean-latency` value into a latency distribution.
fn parse_latency(dist: Option<&str>, mean: f64) -> Result<LatencyDist, String> {
    if !(mean.is_finite() && mean >= 0.0) {
        return Err(format!(
            "--mean-latency must be finite and >= 0, got {mean}"
        ));
    }
    if mean == 0.0 {
        return Ok(LatencyDist::Constant { value: 0.0 });
    }
    match dist.unwrap_or("exponential") {
        "constant" => Ok(LatencyDist::Constant { value: mean }),
        "exponential" | "exp" => Ok(LatencyDist::Exponential { mean }),
        other => match other.strip_prefix("pareto") {
            Some(rest) => {
                let shape = match rest.strip_prefix(':') {
                    None if rest.is_empty() => 2.5,
                    Some(s) => s
                        .parse::<f64>()
                        .map_err(|e| format!("--latency-dist pareto shape: {e}"))?,
                    None => return Err(format!("--latency-dist: unknown distribution {other:?}")),
                };
                Ok(LatencyDist::Pareto { shape, mean })
            }
            None => Err(format!(
                "--latency-dist: expected constant, exponential or pareto[:SHAPE], got {other:?}"
            )),
        },
    }
}

/// `veil simulate --nodes N [--alpha A] [--horizon T] [--seed S]
/// [--lifetime-ratio R|inf] [--snapshot-every X]
/// [--blackout T,DURATION,FRACTION] [--loss P] [--mean-latency M]
/// [--latency-dist D] [--shuffle-timeout T] [--shuffle-retries N]
/// [--parallelism K] [--shards S] [--graph M] [--avg-degree D] [--json]`
pub fn run(args: &Args) -> CmdResult {
    args.check_known(&[
        "nodes",
        "alpha",
        "horizon",
        "seed",
        "lifetime-ratio",
        "snapshot-every",
        "blackout",
        "loss",
        "mean-latency",
        "latency-dist",
        "shuffle-timeout",
        "shuffle-retries",
        "parallelism",
        "shards",
        "graph",
        "avg-degree",
        "json",
        "trace-out",
        "metrics-out",
        "chrome-trace",
        "flight-recorder",
        "health",
        "self-heal",
        "heal-backoff",
        "heal-rebootstrap",
        "heal-throttle",
    ])?;
    let nodes: usize = args.require("nodes", "integer")?;
    let alpha: f64 = args.get_or("alpha", 0.5, "float in (0,1]")?;
    let horizon: f64 = args.get_or("horizon", 200.0, "float")?;
    let seed: u64 = args.get_or("seed", 42, "integer")?;
    // `--parallelism 0` (or the VEIL_PARALLELISM env fallback) means "all
    // cores"; the knob never changes results, only wall-clock time.
    let parallelism = match args.get_or::<usize>("parallelism", 0, "integer")? {
        0 => veil_par::env_parallelism(),
        k => Some(k),
    };
    // `--shards S` (or VEIL_SHARDS) selects the windowed multi-threaded
    // executor. Unlike `--parallelism` it changes the event interleaving
    // (results are identical for every S >= 1, but differ from the
    // sequential executor's); 0/unset keeps the sequential executor. The
    // knob only takes effect when the run has lookahead (a fault model or
    // positive link latency).
    let shards = match args.get_or::<usize>("shards", 0, "integer")? {
        0 => veil_par::env_shards(),
        s => Some(s),
    };
    let interval: f64 = args.get_or("snapshot-every", (horizon / 20.0).max(1.0), "float")?;
    let lifetime_ratio = match args.flag("lifetime-ratio") {
        None => Some(3.0),
        Some("inf") => None,
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|e| format!("--lifetime-ratio: {e}"))?,
        ),
    };
    let blackout = args.flag("blackout").map(parse_blackout).transpose()?;
    let loss: f64 = args.get_or("loss", 0.0, "float in [0,1]")?;
    if !(0.0..=1.0).contains(&loss) {
        return Err(format!("--loss must be in [0, 1], got {loss}").into());
    }
    let mean_latency: f64 = args.get_or("mean-latency", 0.0, "float >= 0")?;
    let latency = parse_latency(args.flag("latency-dist"), mean_latency)?;
    let shuffle_timeout: f64 = args.get_or("shuffle-timeout", 3.0, "float > 0")?;
    let shuffle_retry_budget: u32 = args.get_or("shuffle-retries", 2, "integer")?;
    // Only a genuinely non-ideal configuration switches the link layer;
    // the all-defaults command line keeps the ideal layer (and its exact
    // historical outputs).
    let fault = FaultConfig {
        drop_probability: loss,
        latency,
        episodes: Vec::new(),
    };
    let link = if fault.is_trivial() {
        LinkLayerConfig::Ideal
    } else {
        LinkLayerConfig::Faulty(fault)
    };

    // `--graph degree-matched` swaps the synthetic source model for the
    // degree-matched generator tuned to the paper's trust-sample densities
    // (11.3 links/node at f = 1.0; override with --avg-degree).
    let avg_degree: f64 = args.get_or("avg-degree", 11.3, "float >= 2")?;
    let source = match args.flag("graph").unwrap_or("holme-kim") {
        "holme-kim" | "hk" => veil_core::experiment::SourceModel::default(),
        "degree-matched" | "dm" => veil_core::experiment::SourceModel::DegreeMatched {
            avg_degree,
            triad: 0.6,
        },
        other => {
            return Err(
                format!("--graph: expected holme-kim or degree-matched, got {other:?}").into(),
            )
        }
    };

    // Self-healing: `--self-heal` switches every reaction on; each
    // `--heal-*` flag enables just that reaction. Any of them implies the
    // engine's master switch and health monitoring (there is nothing to
    // react to without the detectors). With none given the remediation
    // config stays at its default and the run is byte-identical to a build
    // without the engine.
    let self_heal = args.has("self-heal");
    let heal_backoff = args.has("heal-backoff");
    let heal_rebootstrap = args.has("heal-rebootstrap");
    let heal_throttle = args.has("heal-throttle");
    let any_heal = self_heal || heal_backoff || heal_rebootstrap || heal_throttle;
    let remedy = if any_heal {
        veil_core::config::RemedyConfig {
            enabled: true,
            backoff_on_eviction_storm: self_heal || heal_backoff,
            rebootstrap_starved: self_heal || heal_rebootstrap,
            throttle_indegree_skew: self_heal || heal_throttle,
            ..veil_core::config::RemedyConfig::default()
        }
    } else {
        veil_core::config::RemedyConfig::default()
    };

    let params = ExperimentParams {
        nodes,
        seed,
        lifetime_ratio,
        warmup: horizon,
        source_multiplier: 20,
        source,
        overlay: veil_core::config::OverlayConfig {
            parallelism,
            shards,
            link,
            shuffle_timeout,
            shuffle_retry_budget,
            health: veil_core::config::HealthConfig {
                enabled: args.has("health") || any_heal,
                ..veil_core::config::HealthConfig::default()
            },
            remedy,
            ..veil_core::config::OverlayConfig::default()
        },
        ..ExperimentParams::default()
    };
    // Observability: any of the obs flags switches on an in-process
    // recorder. Tracing never draws randomness, so the simulation output
    // is byte-identical with and without these flags.
    let trace_out = args.flag("trace-out").map(str::to_string);
    let metrics_out = args.flag("metrics-out").map(str::to_string);
    let chrome_trace = args.flag("chrome-trace").map(str::to_string);
    let flight_recorder = args
        .flag("flight-recorder")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|e| format!("--flight-recorder: {e}"))
        })
        .transpose()?;
    // --health needs a live recorder: the monitor reads the event stream
    // and publishes its alerts back into it.
    let obs_enabled = trace_out.is_some()
        || metrics_out.is_some()
        || chrome_trace.is_some()
        || flight_recorder.is_some()
        || args.has("health")
        || any_heal;
    let recorder = match flight_recorder {
        _ if !obs_enabled => veil_obs::Recorder::disabled(),
        Some(capacity) => veil_obs::Recorder::flight_recorder(capacity),
        None => veil_obs::Recorder::full(),
    };

    let trust = build_trust_graph(&params)?;
    // Install globally before construction: `Simulation::new` emits the
    // initial pseudonym mints, which would otherwise be missed. Restore
    // the previous global immediately — the simulation holds its own
    // handle from here on.
    let prev = veil_obs::install_global(recorder.clone());
    let sim = build_simulation(trust, &params, alpha);
    veil_obs::install_global(prev);
    let mut sim = sim?;
    sim.set_recorder(recorder.clone());
    let mut collector = Collector::new(interval);
    let mut blackout_note = String::new();
    if let Some((t, duration, fraction)) = blackout {
        let t = t.min(horizon);
        collector.run(&mut sim, t);
        let victims: Vec<usize> = (0..sim.node_count())
            .take((fraction * sim.node_count() as f64) as usize)
            .collect();
        sim.inject_blackout(&victims, duration);
        writeln!(
            blackout_note,
            "blackout: {} nodes offline at t = {t} for {duration} periods",
            victims.len()
        )?;
        collector.run(&mut sim, horizon);
    } else {
        collector.run(&mut sim, horizon);
    }

    let final_snapshot = snapshot(&sim);
    let npl = {
        let online = sim.online_mask();
        gm::normalized_avg_path_length(&sim.overlay_graph(), Some(&online))
    };

    let mut obs_note = String::new();
    if obs_enabled {
        sim.publish_metrics();
        if let Some(alerts) = sim.health_alerts() {
            writeln!(obs_note, "health monitor: {alerts} alert(s) emitted")?;
        }
        if let Some(counts) = sim.remedy_counts() {
            writeln!(
                obs_note,
                "self-healing: {} reaction(s) ({} backoff, {} rebootstrap, {} throttle)",
                counts.total(),
                counts.backoffs,
                counts.rebootstraps,
                counts.throttles
            )?;
        }
        if let Some(path) = &trace_out {
            std::fs::write(path, recorder.events_jsonl())
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            writeln!(
                obs_note,
                "trace: {path} ({} events, {} dropped)",
                recorder.events_seen() - recorder.events_dropped(),
                recorder.events_dropped()
            )?;
        } else if flight_recorder.is_some() {
            writeln!(
                obs_note,
                "flight recorder retained {} of {} events (use --trace-out to save them)",
                recorder.events().len(),
                recorder.events_seen()
            )?;
        }
        if let Some(path) = &metrics_out {
            let text = if path.ends_with(".prom") {
                recorder.prometheus_text()
            } else {
                recorder.metrics_json()
            };
            std::fs::write(path, text).map_err(|e| format!("cannot write {path:?}: {e}"))?;
            writeln!(obs_note, "metrics: {path}")?;
        }
        if let Some(path) = &chrome_trace {
            std::fs::write(path, recorder.chrome_trace())
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            writeln!(obs_note, "chrome trace: {path}")?;
        }
    }

    if args.has("json") {
        let series: Vec<(f64, f64, f64)> = collector
            .connectivity()
            .iter()
            .zip(collector.connectivity_trust().iter())
            .map(|((t, o), (_, tr))| (t, o, tr))
            .collect();
        let out = JsonOutput {
            config: params,
            alpha,
            series,
            final_snapshot,
            normalized_path_length: npl,
        };
        return Ok(serde_json::to_string_pretty(&out)?);
    }

    let mut out = String::new();
    writeln!(
        out,
        "overlay simulation: {nodes} nodes, alpha = {alpha}, horizon = {horizon} sp, seed = {seed}"
    )?;
    out.push_str(&blackout_note);
    out.push_str(&obs_note);
    writeln!(
        out,
        "\n{:>10}  {:>18}  {:>18}",
        "time (sp)", "overlay disconnected", "trust disconnected"
    )?;
    for ((t, o), (_, tr)) in collector
        .connectivity()
        .iter()
        .zip(collector.connectivity_trust().iter())
    {
        writeln!(out, "{t:>10.1}  {o:>18.3}  {tr:>18.3}")?;
    }
    writeln!(out)?;
    writeln!(
        out,
        "final online nodes:        {}",
        final_snapshot.online_nodes
    )?;
    writeln!(
        out,
        "final overlay disconnected: {:.3}",
        final_snapshot.fraction_disconnected
    )?;
    writeln!(
        out,
        "final trust disconnected:   {:.3}",
        final_snapshot.fraction_disconnected_trust
    )?;
    writeln!(
        out,
        "pseudonym links:           {}",
        final_snapshot.pseudonym_links
    )?;
    writeln!(out, "normalized path length:    {npl:.3}")?;
    if final_snapshot.dropped_requests > 0 || final_snapshot.shuffle_retries > 0 {
        writeln!(
            out,
            "dropped messages:          {}",
            final_snapshot.dropped_requests
        )?;
        writeln!(
            out,
            "shuffle retries:           {}",
            final_snapshot.shuffle_retries
        )?;
        writeln!(
            out,
            "shuffle failures:          {}",
            final_snapshot.shuffle_failures
        )?;
    }
    Ok(out.trim_end().to_string())
}
