//! `veil` — command-line front end for the overlay simulator.
//!
//! ```text
//! veil graph generate --model social --nodes 1000 --seed 7 --out trust.txt
//! veil graph stats trust.txt
//! veil graph sample trust.txt --target 200 --f 0.5 --seed 7 --out sampled.txt
//! veil simulate --nodes 300 --alpha 0.5 --horizon 200 --seed 7
//! veil attack --nodes 200 --seed 7
//! ```

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "veil — robust privacy-preserving overlays over social graphs

USAGE:
    veil <command> [args]

COMMANDS:
    graph generate   generate a synthetic social graph
                     --model <ba|er|ws|hk|dm|social|community> --nodes N
                     [--seed S] [--degree D] [--avg-degree A] [--out FILE]
    graph stats      print structural metrics of an edge-list file
                     <FILE>
    graph sample     invitation-model f-sample of an edge-list file
                     <FILE> --target N [--f F] [--seed S] [--out FILE]
    simulate         run the overlay protocol under churn
                     --nodes N [--alpha A] [--horizon T] [--seed S]
                     [--lifetime-ratio R|inf] [--snapshot-every X]
                     [--blackout T,DURATION,FRACTION] [--json]
                     [--loss P]          per-message drop probability;
                                         any non-zero fault switches to the
                                         fault-injecting link layer
                     [--mean-latency M]  mean one-way latency in shuffle
                                         periods (0 = instant)
                     [--latency-dist D]  constant | exponential |
                                         pareto[:SHAPE] (default
                                         exponential, shape 2.5)
                     [--shuffle-timeout T] [--shuffle-retries N]
                                         exchange timeout (default 3) and
                                         retry budget (default 2) on the
                                         faulty layer
                     [--parallelism K]   worker threads for sweeps and
                                         metrics; 0 = all cores (default,
                                         or VEIL_PARALLELISM); results
                                         are identical for every K
                     [--shards S]        run the windowed multi-threaded
                                         executor with S shards (or
                                         VEIL_SHARDS); needs a fault model
                                         or positive latency; results are
                                         identical for every S >= 1
                     [--graph M]         source model: holme-kim (default)
                                         or degree-matched (paper trust-
                                         sample densities)
                     [--avg-degree D]    degree-matched target average
                                         degree (default 11.3)
                     [--trace-out FILE]  write the structured event trace
                                         as JSONL (never perturbs results)
                     [--metrics-out FILE] write the metrics registry; a
                                         .prom extension selects Prometheus
                                         text format, anything else JSON
                     [--chrome-trace FILE] write profiling spans as Chrome
                                         trace_event JSON (chrome://tracing)
                     [--flight-recorder N] keep only the last N events per
                                         recording thread (flight recorder)
                     [--self-heal]       enable the remediation engine with
                                         every reaction (implies --health);
                                         off is byte-identical to a build
                                         without the engine
                     [--heal-backoff] [--heal-rebootstrap] [--heal-throttle]
                                         enable a single reaction instead
                                         (each implies --health)
    attack           run the Section III-E threat models
                     --nodes N [--seed S]
                     [--health]          enable the online overlay health
                                         monitor (rolling-window detectors
                                         emitting HealthAlert events);
                                         implies the full recorder
    obs validate     check a JSONL trace file against the event schema
                     <FILE>
    obs schema       print the trace-event schema
    obs analyze      replay a trace into per-round health analytics
                     <FILE> [--json] [--out REPORT.json]
    obs diff         compare two runs (traces or saved reports); exits
                     with code 2 on regression beyond tolerance
                     <BASELINE> <CANDIDATE> [--rel-tolerance F]
                     [--abs-tolerance F] [--rate-tolerance F] [--json]
    obs tail         follow a growing trace, printing health alerts live
                     <FILE> [--all] [--no-follow] [--poll-ms N]
                     [--timeout-s T]
    scenario validate  parse + validate a scenario file or directory
                     <FILE|DIR>          exits 3 with a caret diagnostic
                                         when any file is invalid
    scenario list    summarize a scenario library
                     [DIR]               default: scenarios
    scenario run     run one scenario and grade its assertions
                     <FILE> [--seed S] [--shards K] [--json]
                     [--trace-out FILE]  exits 3 if any assertion fails
    scenario campaign  sweep seeds (× shard counts) in parallel
                     <FILE> [--seeds N]  N seeds from the scenario's seed
                     [--seed-list A,B,C] explicit seeds instead
                     [--shard-list 0,1,8] shard counts; 0 = sequential
                     [--parallelism K] [--report FILE.jsonl]
                                         exits 3 if any run fails
    help             show this message
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            // A regression from `obs diff` is a clean, expected outcome:
            // print the comparison (no usage banner) and exit with a
            // distinct code so scripts and CI can gate on it.
            if let Some(regression) = e.downcast_ref::<commands::Regression>() {
                println!("{regression}");
                return ExitCode::from(2);
            }
            // Likewise for scenario assertion failures and invalid
            // scenario files: the verdict/diagnostic is the output.
            if let Some(failure) = e.downcast_ref::<commands::ScenarioFailure>() {
                println!("{failure}");
                return ExitCode::from(3);
            }
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Dispatches a raw command line to the matching command; returns the text
/// to print. Extracted from `main` so tests can drive it directly.
fn run(raw: &[String]) -> Result<String, Box<dyn std::error::Error>> {
    let args = Args::parse(raw.iter().cloned())?;
    // `obs diff` takes two file positionals after the two command words;
    // everything else takes at most one.
    let max_positionals = if args.positional(1) == Some("diff") {
        4
    } else {
        3
    };
    if args.positionals().len() > max_positionals {
        return Err(format!("too many arguments: {:?}", args.positionals()).into());
    }
    match (args.positional(0), args.positional(1)) {
        (Some("graph"), Some("generate")) => commands::graph::generate(&args),
        (Some("graph"), Some("stats")) => commands::graph::stats(&args),
        (Some("graph"), Some("sample")) => commands::graph::sample(&args),
        (Some("simulate"), _) => commands::simulate::run(&args),
        (Some("attack"), _) => commands::attack::run(&args),
        (Some("obs"), Some("validate")) => commands::obs::validate(&args),
        (Some("obs"), Some("schema")) => commands::obs::schema(&args),
        (Some("obs"), Some("analyze")) => commands::obs::analyze(&args),
        (Some("obs"), Some("diff")) => commands::obs::diff(&args),
        (Some("obs"), Some("tail")) => commands::obs::tail(&args),
        (Some("obs"), other) => Err(format!(
            "obs: expected validate, schema, analyze, diff or tail, got {other:?}"
        )
        .into()),
        (Some("scenario"), Some("validate")) => commands::scenario::validate(&args),
        (Some("scenario"), Some("list")) => commands::scenario::list(&args),
        (Some("scenario"), Some("run")) => commands::scenario::run(&args),
        (Some("scenario"), Some("campaign")) => commands::scenario::campaign(&args),
        (Some("scenario"), other) => {
            Err(format!("scenario: expected validate, list, run or campaign, got {other:?}").into())
        }
        (Some("help"), _) | (None, _) => Ok(USAGE.to_string()),
        (Some(other), _) => Err(format!("unknown command {other:?}").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &[&str]) -> Result<String, String> {
        let raw: Vec<String> = line.iter().map(|s| s.to_string()).collect();
        run(&raw).map_err(|e| e.to_string())
    }

    #[test]
    fn help_and_empty_print_usage() {
        assert!(run_line(&["help"]).unwrap().contains("USAGE"));
        assert!(run_line(&[]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run_line(&["frobnicate"]).unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn generate_and_stats_round_trip() {
        let dir = std::env::temp_dir().join("veil-cli-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let path_str = path.to_str().unwrap();
        let out = run_line(&[
            "graph", "generate", "--model", "social", "--nodes", "120", "--seed", "3", "--out",
            path_str,
        ])
        .unwrap();
        assert!(out.contains("120"));
        let stats = run_line(&["graph", "stats", path_str]).unwrap();
        assert!(stats.contains("nodes"));
        assert!(stats.contains("120"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sample_requires_target() {
        let dir = std::env::temp_dir().join("veil-cli-test-sample");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let path_str = path.to_str().unwrap();
        run_line(&[
            "graph", "generate", "--model", "social", "--nodes", "150", "--out", path_str,
        ])
        .unwrap();
        let err = run_line(&["graph", "sample", path_str]).unwrap_err();
        assert!(err.contains("target"));
        let ok = run_line(&["graph", "sample", path_str, "--target", "50", "--f", "0.5"]).unwrap();
        assert!(ok.contains("50"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_smoke() {
        let out = run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "0.5",
            "--horizon",
            "30",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(out.contains("disconnected"));
        assert!(out.contains("overlay"));
    }

    #[test]
    fn simulate_json_output_parses() {
        let out = run_line(&["simulate", "--nodes", "50", "--horizon", "20", "--json"]).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert!(v.get("final").is_some());
    }

    #[test]
    fn simulate_with_blackout() {
        let out = run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "1.0",
            "--horizon",
            "40",
            "--blackout",
            "20,5,0.5",
        ])
        .unwrap();
        assert!(out.contains("blackout"));
    }

    #[test]
    fn simulate_with_faulty_link() {
        let out = run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "0.8",
            "--horizon",
            "40",
            "--seed",
            "5",
            "--loss",
            "0.2",
            "--mean-latency",
            "0.5",
            "--shuffle-timeout",
            "2",
            "--shuffle-retries",
            "3",
        ])
        .unwrap();
        assert!(
            out.contains("dropped messages"),
            "faulty run reports losses:\n{out}"
        );
        assert!(out.contains("shuffle retries"));
    }

    #[test]
    fn simulate_with_shards_is_shard_count_invariant() {
        let run = |shards: &str| {
            run_line(&[
                "simulate",
                "--nodes",
                "60",
                "--alpha",
                "0.6",
                "--horizon",
                "30",
                "--seed",
                "5",
                "--loss",
                "0.1",
                "--mean-latency",
                "0.4",
                "--shards",
                shards,
                "--json",
            ])
            .unwrap()
        };
        // The echoed config differs (it records the shard count), so
        // compare the measured outputs only.
        let results = |raw: &str| {
            let v: serde_json::Value = serde_json::from_str(raw).expect("valid JSON");
            let mut entries = v.as_map().unwrap().to_vec();
            entries.retain(|(k, _)| k != "config");
            entries
        };
        let one = results(&run("1"));
        assert_eq!(
            one,
            results(&run("2")),
            "shard count must not change results"
        );
        assert_eq!(
            one,
            results(&run("4")),
            "shard count must not change results"
        );
    }

    #[test]
    fn simulate_with_degree_matched_graph() {
        let out = run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--horizon",
            "20",
            "--graph",
            "degree-matched",
            "--avg-degree",
            "8.5",
        ])
        .unwrap();
        assert!(out.contains("disconnected"));
        let err = run_line(&[
            "simulate",
            "--nodes",
            "50",
            "--horizon",
            "20",
            "--graph",
            "mesh",
        ])
        .unwrap_err();
        assert!(err.contains("degree-matched"), "{err}");
    }

    #[test]
    fn graph_generate_degree_matched() {
        let out = run_line(&[
            "graph",
            "generate",
            "--model",
            "dm",
            "--nodes",
            "400",
            "--avg-degree",
            "6.55",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("generated dm graph"), "{out}");
    }

    #[test]
    fn simulate_rejects_bad_fault_flags() {
        let err = run_line(&[
            "simulate",
            "--nodes",
            "50",
            "--horizon",
            "20",
            "--loss",
            "1.5",
        ])
        .unwrap_err();
        assert!(err.contains("loss"));
        let err = run_line(&[
            "simulate",
            "--nodes",
            "50",
            "--horizon",
            "20",
            "--mean-latency",
            "1",
            "--latency-dist",
            "gaussian",
        ])
        .unwrap_err();
        assert!(err.contains("gaussian"));
    }

    #[test]
    fn simulate_trace_export_round_trips_through_validate() {
        let dir = std::env::temp_dir().join("veil-cli-test-obs");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let metrics = dir.join("metrics.prom");
        let chrome = dir.join("spans.json");
        let out = run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "0.6",
            "--horizon",
            "30",
            "--seed",
            "5",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--chrome-trace",
            chrome.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("trace:"), "obs note present:\n{out}");
        let validated = run_line(&["obs", "validate", trace.to_str().unwrap()]).unwrap();
        assert!(validated.contains("all valid"));
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("veil_sim_shuffles_started_total"), "{prom}");
        let spans: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        assert!(spans.get("traceEvents").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_flight_recorder_reports_retention() {
        let out = run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "0.6",
            "--horizon",
            "30",
            "--seed",
            "5",
            "--flight-recorder",
            "16",
        ])
        .unwrap();
        assert!(out.contains("flight recorder retained"), "{out}");
    }

    #[test]
    fn simulate_health_monitor_reports_alert_count() {
        let out = run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "0.6",
            "--horizon",
            "30",
            "--seed",
            "5",
            "--health",
        ])
        .unwrap();
        assert!(out.contains("health monitor:"), "{out}");
    }

    #[test]
    fn simulate_self_heal_reports_reactions() {
        let out = run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "0.6",
            "--horizon",
            "30",
            "--seed",
            "5",
            "--self-heal",
        ])
        .unwrap();
        assert!(out.contains("health monitor:"), "{out}");
        assert!(out.contains("self-healing:"), "{out}");
        // A single-reaction flag implies both the engine and the monitor.
        let out = run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "0.6",
            "--horizon",
            "30",
            "--seed",
            "5",
            "--heal-rebootstrap",
        ])
        .unwrap();
        assert!(out.contains("health monitor:"), "{out}");
        assert!(out.contains("self-healing:"), "{out}");
        assert!(out.contains("0 backoff"), "{out}");
        assert!(out.contains("0 throttle"), "{out}");
    }

    #[test]
    fn obs_analyze_reports_success_rate_and_writes_report() {
        let dir = std::env::temp_dir().join("veil-cli-test-analyze");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let report = dir.join("report.json");
        run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "0.6",
            "--horizon",
            "30",
            "--seed",
            "5",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_line(&[
            "obs",
            "analyze",
            trace.to_str().unwrap(),
            "--out",
            report.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("% success"), "{out}");
        let saved: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert!(saved.get("totals").is_some());
        let json_out = run_line(&["obs", "analyze", trace.to_str().unwrap(), "--json"]).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json_out).expect("valid JSON");
        assert!(v.get("shuffle_success_rate").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_diff_passes_identical_and_flags_faulty_run() {
        let dir = std::env::temp_dir().join("veil-cli-test-diff");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.jsonl");
        let faulty = dir.join("faulty.jsonl");
        let base = &[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "0.6",
            "--horizon",
            "30",
            "--seed",
            "5",
        ];
        let mut clean_cmd: Vec<&str> = base.to_vec();
        clean_cmd.extend(["--trace-out", clean.to_str().unwrap()]);
        run_line(&clean_cmd).unwrap();
        let mut faulty_cmd: Vec<&str> = base.to_vec();
        faulty_cmd.extend([
            "--trace-out",
            faulty.to_str().unwrap(),
            "--loss",
            "0.3",
            "--mean-latency",
            "0.5",
        ]);
        run_line(&faulty_cmd).unwrap();
        let same = run_line(&[
            "obs",
            "diff",
            clean.to_str().unwrap(),
            clean.to_str().unwrap(),
        ])
        .unwrap();
        assert!(same.contains("no regressions"), "{same}");
        let err = run_line(&[
            "obs",
            "diff",
            clean.to_str().unwrap(),
            faulty.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("REGRESSED"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_tail_drains_existing_trace() {
        let dir = std::env::temp_dir().join("veil-cli-test-tail");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        run_line(&[
            "simulate",
            "--nodes",
            "60",
            "--alpha",
            "0.6",
            "--horizon",
            "30",
            "--seed",
            "5",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_line(&["obs", "tail", trace.to_str().unwrap(), "--no-follow"]).unwrap();
        assert!(out.starts_with("tail: printed"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_schema_lists_event_kinds() {
        let out = run_line(&["obs", "schema"]).unwrap();
        assert!(out.contains("ShuffleStart"));
        assert!(out.contains("BroadcastDeliver"));
    }

    #[test]
    fn obs_validate_rejects_garbage() {
        let dir = std::env::temp_dir().join("veil-cli-test-obs-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{\"not\": \"an event\"}\n").unwrap();
        let err = run_line(&["obs", "validate", path.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attack_smoke() {
        let out = run_line(&["attack", "--nodes", "80", "--seed", "2"]).unwrap();
        assert!(out.contains("observer"));
        assert!(out.contains("articulation"));
    }

    #[test]
    fn every_model_generates() {
        for model in ["ba", "er", "ws", "hk", "social", "community"] {
            let nodes = if model == "community" { "200" } else { "60" };
            let out = run_line(&[
                "graph", "generate", "--model", model, "--nodes", nodes, "--seed", "9",
            ])
            .unwrap_or_else(|e| panic!("model {model}: {e}"));
            assert!(out.contains(model), "output should echo the model name");
            assert!(out.contains("edges"));
        }
    }

    #[test]
    fn stats_reports_missing_file() {
        let err = run_line(&["graph", "stats", "/nonexistent/veil.txt"]).unwrap_err();
        assert!(err.contains("cannot open"));
    }

    #[test]
    fn too_many_positionals_rejected() {
        let err = run_line(&["graph", "stats", "a", "b", "c"]).unwrap_err();
        assert!(err.contains("too many"));
    }

    #[test]
    fn generate_rejects_unknown_model() {
        let err =
            run_line(&["graph", "generate", "--model", "mystery", "--nodes", "50"]).unwrap_err();
        assert!(err.contains("mystery"));
    }

    #[test]
    fn generate_rejects_unknown_flag() {
        let err = run_line(&[
            "graph", "generate", "--model", "er", "--nodes", "50", "--sede", "1",
        ])
        .unwrap_err();
        assert!(err.contains("sede"));
    }
}
