//! Reliable epidemic broadcast over a live, churning overlay.
//!
//! The overlay exists so that "high-level social applications such as
//! micro-news, mailing lists and group chat can be built" on top
//! (Section II) via "reliable and privacy-preserving message broadcast by
//! using controlled flooding, epidemic dissemination, or an additional
//! routing layer" (Section I). [`crate::dissemination`] measures one-shot
//! broadcasts on a static snapshot; this module runs a *session*: messages
//! published over time, pushed epidemically across the changing overlay,
//! with anti-entropy pulls so nodes that were offline catch up when they
//! rejoin.
//!
//! The driver advances the underlying [`Simulation`] in fixed increments
//! and performs application rounds between increments, so protocol
//! maintenance and dissemination interleave realistically.

use crate::node::LinkTarget;
use crate::simulation::Simulation;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use veil_obs::{EventKind as Obs, Recorder};
use veil_sim::rng::{derive_rng, Stream};

/// Identifier of a published message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

/// Configuration of the epidemic session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BroadcastConfig {
    /// Online peers each infected node pushes a fresh message to, per
    /// application round.
    pub push_fanout: usize,
    /// How many rounds a node keeps pushing a message after first
    /// receiving it ("infectious period").
    pub push_rounds: u32,
    /// Whether rejoining nodes anti-entropy-pull missed messages from one
    /// random online link.
    pub pull_on_rejoin: bool,
    /// Length of one application round in shuffle periods.
    pub round_length: f64,
    /// Independent probability that a single push transmission is lost by
    /// the link layer. `0.0` (the default) models the paper's ideal
    /// service and draws no randomness at all.
    pub loss_probability: f64,
    /// How many times an unacknowledged push is retransmitted before the
    /// sender gives up on that copy (bounded re-forwarding; only consulted
    /// when `loss_probability > 0`). Every attempt counts towards the
    /// message cost. Default: 0 (fire and forget).
    pub ack_retries: u32,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        Self {
            push_fanout: 3,
            push_rounds: 3,
            pull_on_rejoin: true,
            round_length: 1.0,
            loss_probability: 0.0,
            ack_retries: 0,
        }
    }
}

/// Delivery record for one (node, message) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// When the node first received the message (shuffle periods).
    pub time: f64,
    /// Hop count from the publisher (0 for the publisher itself).
    pub hops: u32,
}

/// Per-node application state.
#[derive(Debug, Clone, Default)]
struct AppState {
    /// Messages received, with delivery metadata.
    inbox: HashMap<MessageId, Delivery>,
    /// Messages still being actively pushed, with remaining rounds.
    active: HashMap<MessageId, u32>,
    /// Whether the node was online at the end of the previous round (to
    /// detect rejoins for anti-entropy pulls).
    was_online: bool,
}

/// An epidemic broadcast session running over a [`Simulation`].
///
/// # Examples
///
/// ```
/// use veil_core::broadcast::{BroadcastConfig, EpidemicSession};
/// use veil_core::config::OverlayConfig;
/// use veil_core::simulation::Simulation;
/// use veil_graph::generators;
/// use veil_sim::churn::ChurnConfig;
/// use veil_sim::rng::{derive_rng, Stream};
///
/// # fn main() -> Result<(), veil_core::error::CoreError> {
/// let mut rng = derive_rng(1, Stream::Topology);
/// let trust = generators::social_graph(60, 3, &mut rng).unwrap();
/// let churn = ChurnConfig::from_availability(1.0, 30.0);
/// let mut sim = Simulation::new(trust, OverlayConfig::default(), churn, 1)?;
/// sim.run_until(20.0);
///
/// let mut session = EpidemicSession::new(BroadcastConfig::default(), 1);
/// let msg = session.publish(&sim, 0).unwrap();
/// session.advance(&mut sim, 35.0);
/// assert!(session.delivery_ratio(msg) > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EpidemicSession {
    cfg: BroadcastConfig,
    nodes: Vec<AppState>,
    publishers: HashMap<MessageId, (u32, f64)>,
    next_id: u64,
    rng: StdRng,
    messages_sent: u64,
}

impl EpidemicSession {
    /// Creates an idle session.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero fanout, rounds or
    /// round length).
    pub fn new(cfg: BroadcastConfig, seed: u64) -> Self {
        assert!(cfg.push_fanout > 0, "fanout must be positive");
        assert!(cfg.push_rounds > 0, "push rounds must be positive");
        assert!(cfg.round_length > 0.0, "round length must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.loss_probability),
            "loss probability must be in [0, 1]"
        );
        Self {
            cfg,
            nodes: Vec::new(),
            publishers: HashMap::new(),
            next_id: 0,
            rng: derive_rng(seed, Stream::Workload(0xB0)),
            messages_sent: 0,
        }
    }

    fn ensure_sized(&mut self, sim: &Simulation) {
        if self.nodes.len() != sim.node_count() {
            self.nodes = (0..sim.node_count())
                .map(|v| AppState {
                    was_online: sim.is_online(v),
                    ..AppState::default()
                })
                .collect();
        }
    }

    /// Publishes a new message at `publisher`. Returns `None` if the
    /// publisher is offline (nothing to say into the void).
    pub fn publish(&mut self, sim: &Simulation, publisher: usize) -> Option<MessageId> {
        self.ensure_sized(sim);
        if !sim.is_online(publisher) {
            return None;
        }
        let id = MessageId(self.next_id);
        self.next_id += 1;
        let now = sim.now().as_f64();
        self.publishers.insert(id, (publisher as u32, now));
        let state = &mut self.nodes[publisher];
        state.inbox.insert(id, Delivery { time: now, hops: 0 });
        state.active.insert(id, self.cfg.push_rounds);
        sim.recorder()
            .event(now, Some(publisher as u32), || Obs::BroadcastPublish {
                message: id.0,
            });
        Some(id)
    }

    /// Advances the simulation to `until`, running one application round
    /// every `round_length` periods. A horizon at or before the current
    /// simulation time is a no-op (no rounds run).
    pub fn advance(&mut self, sim: &mut Simulation, until: f64) {
        self.ensure_sized(sim);
        let _span = sim
            .recorder()
            .span_with("broadcast.advance", || format!("until={until}"));
        let mut t = sim.now().as_f64();
        while t < until {
            t = (t + self.cfg.round_length).min(until);
            sim.run_until(t);
            self.round(sim);
        }
    }

    /// One application round: epidemic pushes, then anti-entropy pulls for
    /// nodes that came back online since the previous round.
    fn round(&mut self, sim: &Simulation) {
        let _span = sim.recorder().span("broadcast.round");
        let now = sim.now();
        let n = sim.node_count();
        // Pushes: collect transfers first so state mutations don't alias.
        let mut transfers: Vec<(usize, MessageId, Delivery)> = Vec::new();
        for v in 0..n {
            if !sim.is_online(v) || self.nodes[v].active.is_empty() {
                continue;
            }
            let online_links: Vec<usize> = sim
                .node(v)
                .links(now)
                .into_iter()
                .map(|l| l.resolve() as usize)
                .filter(|&w| sim.is_online(w))
                .collect();
            if online_links.is_empty() {
                continue;
            }
            let actives: Vec<MessageId> = self.nodes[v].active.keys().copied().collect();
            for id in actives {
                let delivery = self.nodes[v].inbox[&id];
                for _ in 0..self.cfg.push_fanout {
                    let &target = online_links
                        .choose(&mut self.rng)
                        .expect("non-empty link list");
                    if self.cfg.loss_probability > 0.0 {
                        // Bounded re-forwarding: keep retransmitting this
                        // copy until it gets through or the ack budget runs
                        // out. Every attempt costs a message.
                        let mut delivered = false;
                        for _ in 0..=self.cfg.ack_retries {
                            self.messages_sent += 1;
                            if !self.rng.gen_bool(self.cfg.loss_probability) {
                                delivered = true;
                                break;
                            }
                        }
                        if !delivered {
                            continue;
                        }
                    } else {
                        self.messages_sent += 1;
                    }
                    transfers.push((
                        target,
                        id,
                        Delivery {
                            time: now.as_f64(),
                            hops: delivery.hops + 1,
                        },
                    ));
                }
                let rounds = self.nodes[v]
                    .active
                    .get_mut(&id)
                    .expect("active entry exists");
                *rounds -= 1;
                if *rounds == 0 {
                    self.nodes[v].active.remove(&id);
                }
            }
        }
        for (target, id, delivery) in transfers {
            self.deliver(sim.recorder(), target, id, delivery);
        }
        // Anti-entropy pulls by rejoining nodes.
        if self.cfg.pull_on_rejoin {
            for v in 0..n {
                let online = sim.is_online(v);
                let rejoined = online && !self.nodes[v].was_online;
                self.nodes[v].was_online = online;
                if !rejoined {
                    continue;
                }
                let peers: Vec<usize> = sim
                    .node(v)
                    .links(now)
                    .into_iter()
                    .map(|l: LinkTarget| l.resolve() as usize)
                    .filter(|&w| sim.is_online(w))
                    .collect();
                let Some(&peer) = peers.choose(&mut self.rng) else {
                    continue;
                };
                // Pull everything the peer has that we lack.
                let missing: Vec<(MessageId, Delivery)> = self.nodes[peer]
                    .inbox
                    .iter()
                    .filter(|(id, _)| !self.nodes[v].inbox.contains_key(id))
                    .map(|(&id, d)| {
                        (
                            id,
                            Delivery {
                                time: now.as_f64(),
                                hops: d.hops + 1,
                            },
                        )
                    })
                    .collect();
                self.messages_sent += missing.len() as u64;
                for (id, d) in missing {
                    self.deliver(sim.recorder(), v, id, d);
                }
            }
        } else {
            for v in 0..n {
                self.nodes[v].was_online = sim.is_online(v);
            }
        }
    }

    fn deliver(&mut self, recorder: &Recorder, v: usize, id: MessageId, delivery: Delivery) {
        let state = &mut self.nodes[v];
        if state.inbox.contains_key(&id) {
            return;
        }
        state.inbox.insert(id, delivery);
        state.active.insert(id, self.cfg.push_rounds);
        recorder.event(delivery.time, Some(v as u32), || Obs::BroadcastDeliver {
            message: id.0,
            hops: u64::from(delivery.hops),
        });
        recorder.observe("broadcast.hops", delivery.hops as usize);
    }

    /// Fraction of all nodes (online or not) that have received `id`.
    pub fn delivery_ratio(&self, id: MessageId) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let got = self
            .nodes
            .iter()
            .filter(|s| s.inbox.contains_key(&id))
            .count();
        got as f64 / self.nodes.len() as f64
    }

    /// Delivery latencies (periods since publication) of `id` across the
    /// nodes that received it, excluding the publisher.
    pub fn delivery_latencies(&self, id: MessageId) -> Vec<f64> {
        let Some(&(publisher, published_at)) = self.publishers.get(&id) else {
            return Vec::new();
        };
        self.nodes
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != publisher as usize)
            .filter_map(|(_, s)| s.inbox.get(&id))
            .map(|d| d.time - published_at)
            .collect()
    }

    /// Total application messages sent so far (pushes + pulled copies).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Number of messages published so far.
    pub fn published(&self) -> usize {
        self.publishers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OverlayConfig;
    use veil_graph::generators;
    use veil_sim::churn::ChurnConfig;

    fn sim(alpha: f64, seed: u64) -> Simulation {
        let mut rng = derive_rng(seed, Stream::Topology);
        let trust = generators::social_graph(60, 3, &mut rng).unwrap();
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 12,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(alpha, 10.0);
        Simulation::new(trust, cfg, churn, seed).unwrap()
    }

    #[test]
    fn broadcast_reaches_everyone_without_churn() {
        let mut s = sim(1.0, 1);
        s.run_until(20.0);
        let mut session = EpidemicSession::new(BroadcastConfig::default(), 1);
        let msg = session.publish(&s, 0).unwrap();
        session.advance(&mut s, 40.0);
        assert_eq!(session.delivery_ratio(msg), 1.0);
        let latencies = session.delivery_latencies(msg);
        assert_eq!(latencies.len(), 59);
        assert!(latencies.iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn offline_publisher_cannot_publish() {
        let mut s = sim(0.3, 2);
        s.run_until(20.0);
        let offline = (0..s.node_count()).find(|&v| !s.is_online(v)).unwrap();
        let mut session = EpidemicSession::new(BroadcastConfig::default(), 2);
        assert!(session.publish(&s, offline).is_none());
        assert_eq!(session.published(), 0);
    }

    #[test]
    fn rejoining_nodes_catch_up_via_pull() {
        let mut s = sim(0.5, 3);
        s.run_until(30.0);
        let mut session = EpidemicSession::new(BroadcastConfig::default(), 3);
        let publisher = (0..s.node_count()).find(|&v| s.is_online(v)).unwrap();
        let msg = session.publish(&s, publisher).unwrap();
        // Long horizon: every node cycles online at least once (mean
        // offline time 10sp) and pulls what it missed.
        session.advance(&mut s, 130.0);
        assert!(
            session.delivery_ratio(msg) > 0.95,
            "store-and-forward should reach ~everyone eventually: {}",
            session.delivery_ratio(msg)
        );
    }

    #[test]
    fn pull_disabled_leaves_stragglers() {
        let run = |pull: bool, seed: u64| {
            let mut s = sim(0.4, seed);
            s.run_until(30.0);
            let cfg = BroadcastConfig {
                pull_on_rejoin: pull,
                ..BroadcastConfig::default()
            };
            let mut session = EpidemicSession::new(cfg, seed);
            let publisher = (0..s.node_count()).find(|&v| s.is_online(v)).unwrap();
            let msg = session.publish(&s, publisher).unwrap();
            session.advance(&mut s, 80.0);
            session.delivery_ratio(msg)
        };
        // Averaged over a few seeds to avoid single-run noise.
        let with_pull: f64 = (0..3).map(|i| run(true, 10 + i)).sum::<f64>() / 3.0;
        let without: f64 = (0..3).map(|i| run(false, 10 + i)).sum::<f64>() / 3.0;
        assert!(
            with_pull >= without,
            "anti-entropy must not hurt: {with_pull} vs {without}"
        );
    }

    #[test]
    fn multiple_messages_are_tracked_independently() {
        let mut s = sim(1.0, 4);
        s.run_until(20.0);
        // Generous fanout/rounds: with no churn there are no catch-up
        // pulls, so full coverage must come from the push phase alone.
        let cfg = BroadcastConfig {
            push_fanout: 4,
            push_rounds: 6,
            ..BroadcastConfig::default()
        };
        let mut session = EpidemicSession::new(cfg, 4);
        let a = session.publish(&s, 0).unwrap();
        session.advance(&mut s, 30.0);
        let b = session.publish(&s, 1).unwrap();
        assert_ne!(a, b);
        assert_eq!(session.delivery_ratio(a), 1.0);
        assert!(session.delivery_ratio(b) < 1.0, "b was just published");
        session.advance(&mut s, 45.0);
        assert_eq!(session.delivery_ratio(b), 1.0);
        assert_eq!(session.published(), 2);
    }

    #[test]
    fn message_cost_is_bounded_by_fanout_and_rounds() {
        let mut s = sim(1.0, 5);
        s.run_until(20.0);
        let cfg = BroadcastConfig {
            push_fanout: 2,
            push_rounds: 2,
            ..BroadcastConfig::default()
        };
        let mut session = EpidemicSession::new(cfg, 5);
        session.publish(&s, 0).unwrap();
        session.advance(&mut s, 60.0);
        // Each node pushes each message at most fanout * rounds times.
        let bound = (s.node_count() as u64) * 2 * 2;
        assert!(
            session.messages_sent() <= bound,
            "cost {} exceeds bound {bound}",
            session.messages_sent()
        );
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn rejects_zero_fanout() {
        EpidemicSession::new(
            BroadcastConfig {
                push_fanout: 0,
                ..BroadcastConfig::default()
            },
            1,
        );
    }

    #[test]
    fn zero_loss_config_is_byte_identical_to_default() {
        let run = |loss: f64| {
            let mut s = sim(0.5, 7);
            s.run_until(20.0);
            let cfg = BroadcastConfig {
                loss_probability: loss,
                ack_retries: 3, // irrelevant at zero loss
                ..BroadcastConfig::default()
            };
            let mut session = EpidemicSession::new(cfg, 7);
            let publisher = (0..s.node_count()).find(|&v| s.is_online(v)).unwrap();
            let msg = session.publish(&s, publisher).unwrap();
            session.advance(&mut s, 60.0);
            (session.delivery_ratio(msg), session.messages_sent())
        };
        assert_eq!(run(0.0), run(0.0));
        let baseline = {
            let mut s = sim(0.5, 7);
            s.run_until(20.0);
            let mut session = EpidemicSession::new(BroadcastConfig::default(), 7);
            let publisher = (0..s.node_count()).find(|&v| s.is_online(v)).unwrap();
            let msg = session.publish(&s, publisher).unwrap();
            session.advance(&mut s, 60.0);
            (session.delivery_ratio(msg), session.messages_sent())
        };
        assert_eq!(run(0.0), baseline, "zero loss must not perturb the RNG");
    }

    #[test]
    fn ack_retries_recover_coverage_under_loss() {
        let run = |retries: u32, seed: u64| {
            let mut s = sim(1.0, seed);
            s.run_until(20.0);
            let cfg = BroadcastConfig {
                loss_probability: 0.5,
                ack_retries: retries,
                ..BroadcastConfig::default()
            };
            let mut session = EpidemicSession::new(cfg, seed);
            let msg = session.publish(&s, 0).unwrap();
            session.advance(&mut s, 50.0);
            (session.delivery_ratio(msg), session.messages_sent())
        };
        let (lossy, lossy_cost): (f64, u64) = {
            let rs: Vec<_> = (0..3).map(|i| run(0, 20 + i)).collect();
            (
                rs.iter().map(|r| r.0).sum::<f64>() / 3.0,
                rs.iter().map(|r| r.1).sum::<u64>() / 3,
            )
        };
        let (retried, retried_cost): (f64, u64) = {
            let rs: Vec<_> = (0..3).map(|i| run(3, 20 + i)).collect();
            (
                rs.iter().map(|r| r.0).sum::<f64>() / 3.0,
                rs.iter().map(|r| r.1).sum::<u64>() / 3,
            )
        };
        assert!(
            retried >= lossy,
            "retries must not hurt coverage: {retried} vs {lossy}"
        );
        assert!(
            retried_cost > lossy_cost,
            "retransmissions must show up in the message cost"
        );
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_out_of_range_loss() {
        EpidemicSession::new(
            BroadcastConfig {
                loss_probability: 1.5,
                ..BroadcastConfig::default()
            },
            1,
        );
    }

    #[test]
    fn delivery_ratio_of_unknown_message_is_zero() {
        let session = EpidemicSession::new(BroadcastConfig::default(), 6);
        assert_eq!(session.delivery_ratio(MessageId(999)), 0.0);
        assert!(session.delivery_latencies(MessageId(999)).is_empty());
    }
}
