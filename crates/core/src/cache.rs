//! The Cyclon-style pseudonym cache (Section III-D1).
//!
//! Each node maintains a bounded cache of pseudonyms received in gossip
//! exchanges. On each shuffle a node offers a random subset of its cache
//! (plus its own pseudonym) and absorbs the peer's offer, with "a cache
//! replacement policy similar to that employed in \[CYCLON\]": when the cache
//! overflows, the entries that were just offered to the peer are evicted
//! first, then random victims.

use crate::pseudonym::{Pseudonym, PseudonymId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use veil_sim::SimTime;

/// Bounded pseudonym cache with Cyclon-like replacement.
///
/// # Examples
///
/// ```
/// use veil_core::cache::Cache;
/// use veil_core::pseudonym::PseudonymService;
/// use veil_sim::SimTime;
///
/// let mut svc = PseudonymService::new(1);
/// let mut cache = Cache::new(2);
/// let a = svc.mint(1, SimTime::ZERO, None);
/// cache.insert(a, SimTime::ZERO);
/// assert_eq!(cache.len(), 1);
/// assert!(cache.contains(a.id()));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    capacity: usize,
    entries: Vec<Pseudonym>,
    index: HashMap<PseudonymId, usize>,
}

impl Cache {
    /// Creates an empty cache holding at most `capacity` pseudonyms.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
        }
    }

    /// Number of cached pseudonyms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a pseudonym with this id is cached.
    pub fn contains(&self, id: PseudonymId) -> bool {
        self.index.contains_key(&id)
    }

    /// Iterates over the cached pseudonyms in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Pseudonym> {
        self.entries.iter()
    }

    fn remove_at(&mut self, pos: usize) -> Pseudonym {
        let removed = self.entries.swap_remove(pos);
        self.index.remove(&removed.id());
        if pos < self.entries.len() {
            let moved = self.entries[pos].id();
            self.index.insert(moved, pos);
        }
        removed
    }

    /// Removes the pseudonym with the given id, if present.
    pub fn remove(&mut self, id: PseudonymId) -> Option<Pseudonym> {
        let pos = self.index.get(&id).copied()?;
        Some(self.remove_at(pos))
    }

    /// Drops every pseudonym that has expired by `now`; returns how many.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let mut removed = 0;
        let mut pos = 0;
        while pos < self.entries.len() {
            if !self.entries[pos].is_valid(now) {
                self.remove_at(pos);
                removed += 1;
            } else {
                pos += 1;
            }
        }
        removed
    }

    /// Inserts a single pseudonym if it is valid and not already present.
    ///
    /// Returns `false` (without evicting) when the cache is full; bulk
    /// insertion with eviction goes through [`Cache::absorb`].
    pub fn insert(&mut self, p: Pseudonym, now: SimTime) -> bool {
        if !p.is_valid(now) || self.contains(p.id()) || self.entries.len() >= self.capacity {
            return false;
        }
        self.index.insert(p.id(), self.entries.len());
        self.entries.push(p);
        true
    }

    /// Selects up to `count` distinct cached pseudonyms uniformly at random
    /// — the node's offer in a shuffle (its own pseudonym is appended by the
    /// protocol, not stored here).
    pub fn select_offer<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Pseudonym> {
        let mut picks: Vec<usize> = (0..self.entries.len()).collect();
        picks.shuffle(rng);
        picks
            .into_iter()
            .take(count)
            .map(|i| self.entries[i])
            .collect()
    }

    /// Absorbs the peer's offer: inserts every valid, novel pseudonym,
    /// evicting — when full — first the entries in `just_sent` (Cyclon
    /// policy), then random victims.
    ///
    /// `own` is the receiving node's current pseudonym id, which is never
    /// cached ("with the exception of its own pseudonym, if present").
    /// Returns the number of newly inserted entries.
    pub fn absorb<R: Rng + ?Sized>(
        &mut self,
        received: &[Pseudonym],
        just_sent: &[PseudonymId],
        own: Option<PseudonymId>,
        now: SimTime,
        rng: &mut R,
    ) -> usize {
        self.purge_expired(now);
        let mut inserted = 0;
        let mut sent_pool: Vec<PseudonymId> = just_sent.to_vec();
        for &p in received {
            if Some(p.id()) == own || !p.is_valid(now) || self.contains(p.id()) {
                continue;
            }
            if self.entries.len() >= self.capacity {
                // Prefer evicting what we just offered to the peer: the peer
                // now holds those entries, so overall cache diversity grows.
                let evicted = loop {
                    match sent_pool.pop() {
                        Some(victim) if self.contains(victim) => {
                            self.remove(victim);
                            break true;
                        }
                        Some(_) => continue,
                        None => break false,
                    }
                };
                if !evicted {
                    let victim = rng.gen_range(0..self.entries.len());
                    self.remove_at(victim);
                }
            }
            self.index.insert(p.id(), self.entries.len());
            self.entries.push(p);
            inserted += 1;
        }
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pseudonym::PseudonymService;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PseudonymService, StdRng) {
        (PseudonymService::new(1), StdRng::seed_from_u64(2))
    }

    fn mint_n(svc: &mut PseudonymService, n: usize, lifetime: Option<f64>) -> Vec<Pseudonym> {
        (0..n)
            .map(|i| svc.mint(i as u32, SimTime::ZERO, lifetime))
            .collect()
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Cache::new(0);
    }

    #[test]
    fn insert_deduplicates() {
        let (mut svc, _) = setup();
        let mut cache = Cache::new(4);
        let p = svc.mint(1, SimTime::ZERO, None);
        assert!(cache.insert(p, SimTime::ZERO));
        assert!(!cache.insert(p, SimTime::ZERO));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_rejects_expired() {
        let (mut svc, _) = setup();
        let mut cache = Cache::new(4);
        let p = svc.mint(1, SimTime::ZERO, Some(5.0));
        assert!(!cache.insert(p, SimTime::new(5.0)));
        assert!(cache.is_empty());
    }

    #[test]
    fn purge_expired_removes_only_stale() {
        let (mut svc, _) = setup();
        let mut cache = Cache::new(10);
        let short = svc.mint(1, SimTime::ZERO, Some(5.0));
        let long = svc.mint(2, SimTime::ZERO, Some(50.0));
        let eternal = svc.mint(3, SimTime::ZERO, None);
        for p in [short, long, eternal] {
            cache.insert(p, SimTime::ZERO);
        }
        assert_eq!(cache.purge_expired(SimTime::new(10.0)), 1);
        assert!(!cache.contains(short.id()));
        assert!(cache.contains(long.id()));
        assert!(cache.contains(eternal.id()));
    }

    #[test]
    fn select_offer_is_distinct_and_bounded() {
        let (mut svc, mut rng) = setup();
        let mut cache = Cache::new(20);
        for p in mint_n(&mut svc, 10, None) {
            cache.insert(p, SimTime::ZERO);
        }
        let offer = cache.select_offer(4, &mut rng);
        assert_eq!(offer.len(), 4);
        let mut ids: Vec<_> = offer.iter().map(|p| p.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
        // Asking for more than available returns everything.
        assert_eq!(cache.select_offer(100, &mut rng).len(), 10);
    }

    #[test]
    fn absorb_skips_own_pseudonym() {
        let (mut svc, mut rng) = setup();
        let mut cache = Cache::new(10);
        let own = svc.mint(0, SimTime::ZERO, None);
        let other = svc.mint(1, SimTime::ZERO, None);
        let n = cache.absorb(&[own, other], &[], Some(own.id()), SimTime::ZERO, &mut rng);
        assert_eq!(n, 1);
        assert!(!cache.contains(own.id()));
        assert!(cache.contains(other.id()));
    }

    #[test]
    fn absorb_prefers_evicting_sent_entries() {
        let (mut svc, mut rng) = setup();
        let mut cache = Cache::new(3);
        let residents = mint_n(&mut svc, 3, None);
        for &p in &residents {
            cache.insert(p, SimTime::ZERO);
        }
        let sent = residents[0].id();
        let incoming = svc.mint(9, SimTime::ZERO, None);
        cache.absorb(&[incoming], &[sent], None, SimTime::ZERO, &mut rng);
        assert!(cache.contains(incoming.id()));
        assert!(!cache.contains(sent), "sent entry should be the victim");
        assert!(cache.contains(residents[1].id()));
        assert!(cache.contains(residents[2].id()));
    }

    #[test]
    fn absorb_falls_back_to_random_eviction() {
        let (mut svc, mut rng) = setup();
        let mut cache = Cache::new(2);
        for p in mint_n(&mut svc, 2, None) {
            cache.insert(p, SimTime::ZERO);
        }
        let incoming = svc.mint(9, SimTime::ZERO, None);
        cache.absorb(&[incoming], &[], None, SimTime::ZERO, &mut rng);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(incoming.id()));
    }

    #[test]
    fn absorb_never_exceeds_capacity() {
        let (mut svc, mut rng) = setup();
        let mut cache = Cache::new(5);
        let batch = mint_n(&mut svc, 50, None);
        cache.absorb(&batch, &[], None, SimTime::ZERO, &mut rng);
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn remove_fixes_internal_index() {
        let (mut svc, _) = setup();
        let mut cache = Cache::new(5);
        let ps = mint_n(&mut svc, 3, None);
        for &p in &ps {
            cache.insert(p, SimTime::ZERO);
        }
        cache.remove(ps[0].id());
        // swap_remove moved the last entry into slot 0; it must stay findable.
        assert!(cache.contains(ps[2].id()));
        assert!(cache.remove(ps[2].id()).is_some());
        assert_eq!(cache.len(), 1);
    }
}
