//! Overlay protocol configuration (Table I of the paper).

use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use veil_sim::fault::FaultConfig;

/// Which link-layer implementation carries shuffle traffic.
///
/// The paper assumes an ideal anonymity/pseudonym service; [`Ideal`] keeps
/// that behaviour bit-for-bit. [`Faulty`] routes every shuffle through the
/// fault-injecting layer described by a [`FaultConfig`]: per-message drops,
/// sampled latency, and scripted episodes. A `Faulty` layer whose config
/// [`FaultConfig::is_trivial`] is true collapses back to the ideal code
/// path (with `link_latency` equal to the constant latency), so zero-fault
/// runs reproduce ideal outputs exactly.
///
/// [`Ideal`]: LinkLayerConfig::Ideal
/// [`Faulty`]: LinkLayerConfig::Faulty
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum LinkLayerConfig {
    /// The paper's ideal service: reliable delivery between online
    /// endpoints at [`OverlayConfig::link_latency`].
    #[default]
    Ideal,
    /// Fault-injecting layer driven by the given fault model. The model's
    /// latency distribution replaces `link_latency`.
    Faulty(FaultConfig),
}

/// Distance metric used by the pseudonym sampler to compare a pseudonym
/// against a slot's reference value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceMetric {
    /// Absolute numeric difference `|P - R|` — "numerically closer", as the
    /// paper phrases it.
    #[default]
    Absolute,
    /// Hamming-weight of `P XOR R`-style order (compares `P ^ R` values);
    /// an ablation alternative with the same min-wise-sampling property.
    Xor,
}

/// How many sampler slots a node gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SlotPolicy {
    /// The paper's policy: `S(n) = max(min_slots, target_links − deg(n))`,
    /// so all nodes end up with a similar *total* number of overlay links
    /// and trust-graph hubs get few or no extra links.
    #[default]
    DegreeAware,
    /// Every node gets `target_links` slots regardless of its trust degree
    /// (ablation baseline).
    Uniform,
}

/// Configuration of the overlay-maintenance protocol.
///
/// Defaults reproduce Table I of the paper: cache size 400, ℓ = 40
/// pseudonyms per shuffle, 50 target overlay links per node, pseudonym
/// lifetime 90 shuffle periods (3 × the default mean offline time of 30).
///
/// # Examples
///
/// ```
/// use veil_core::config::OverlayConfig;
///
/// let cfg = OverlayConfig::default();
/// assert_eq!(cfg.cache_size, 400);
/// assert_eq!(cfg.shuffle_length, 40);
/// assert_eq!(cfg.target_links, 50);
/// assert_eq!(cfg.pseudonym_lifetime, Some(90.0));
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlayConfig {
    /// Capacity of the pseudonym cache (Table I: 400).
    pub cache_size: usize,
    /// Maximum number of pseudonyms exchanged during a shuffle, the paper's
    /// ℓ (Table I: 40). One slot always carries the node's own pseudonym.
    pub shuffle_length: usize,
    /// Target number of overlay links per node (Table I: 50). A node's
    /// actual degree may exceed this through links established by peers or
    /// a large number of trusted links.
    pub target_links: usize,
    /// Pseudonym lifetime in shuffle periods; `None` means pseudonyms never
    /// expire (the paper's `r = ∞`). Default: 90 (= 3 × Toff).
    pub pseudonym_lifetime: Option<f64>,
    /// Minimum number of sampler slots even for trust-graph hubs.
    ///
    /// The paper says hubs "do not need the extra random links"; a floor of
    /// zero reproduces that exactly. A small positive floor guarantees every
    /// node keeps some random links. Default: 0.
    pub min_slots: usize,
    /// Slot-budget policy (paper: degree-aware).
    pub slot_policy: SlotPolicy,
    /// Distance metric for the sampler (paper: absolute difference).
    pub distance_metric: DistanceMetric,
    /// Whether the min-wise sampler is used at all; when `false`, nodes link
    /// to the most recently received pseudonyms instead (ablation baseline).
    pub minwise_sampling: bool,
    /// Adaptive shuffle suppression: `Some(k)` makes a node stop
    /// *initiating* shuffles once its pseudonym-link set has been stable
    /// for `k` consecutive shuffle periods, resuming on any change
    /// (expiry, a better sample arriving via a peer's shuffle, rejoining
    /// after an offline period). Implements the paper's observation that
    /// with non-expiring pseudonyms "nodes could easily stop executing the
    /// shuffling protocol after detecting the stabilization" (Section V-B).
    /// `None` (the default, and the paper's measured configuration) keeps
    /// shuffling forever.
    pub stop_after_stable_periods: Option<u32>,
    /// How each node chooses the lifetime of the pseudonyms it mints.
    pub lifetime_policy: LifetimePolicy,
    /// One-way delivery latency of the privacy-preserving link layer, in
    /// shuffle periods.
    ///
    /// The paper's evaluation assumes an ideal low-latency service
    /// (`0.0`, the default — requests and responses complete instantly),
    /// but argues that the maintenance protocol tolerates slow mixes:
    /// "for a pseudonym lifetime of a few hours, pseudonym propagation
    /// times in the order of minutes are more than acceptable"
    /// (Section III-E5). Non-zero values route every shuffle request and
    /// response through delayed delivery events; messages to nodes that go
    /// offline before delivery are lost.
    pub link_latency: f64,
    /// Whether shuffle-partner selection skips links whose peer is offline.
    ///
    /// The paper's accounting ("the average number of messages sent per
    /// shuffle period per node across the whole overlay is 2: one message
    /// for a shuffle request generated by each node, and one message for
    /// the corresponding response") implies every request is answered, i.e.
    /// nodes effectively shuffle with online peers only — the ideal link
    /// layer reports deliverability. `false` makes nodes pick uniformly
    /// over *all* links and lose requests to offline peers (ablation).
    pub skip_offline_peers: bool,
    /// Link-layer implementation carrying shuffle traffic (default: the
    /// paper's ideal service).
    pub link: LinkLayerConfig,
    /// How long a shuffle initiator waits for the response before treating
    /// the exchange as failed, in shuffle periods. Only the faulty link
    /// layer uses this; the ideal layer never times out. Doubled on every
    /// retry (exponential backoff). Default: 3.0.
    pub shuffle_timeout: f64,
    /// How many times a timed-out shuffle request is retransmitted before
    /// the initiator gives up and applies Cyclon-style recovery (evicting
    /// the unresponsive pseudonym and counting a `shuffle_failure`).
    /// Default: 2.
    pub shuffle_retry_budget: u32,
    /// Worker threads for the experiment engine's independent sweep points
    /// and metric fan-outs: `None` uses every available core, `Some(1)`
    /// forces serial execution, `Some(k)` caps the pool at `k`.
    ///
    /// Purely an execution knob — every sweep point derives its randomness
    /// from the master seed and its own stream, and results are reduced in
    /// index order, so the output is byte-identical for every value.
    pub parallelism: Option<usize>,
    /// Number of shards for the windowed multi-threaded simulation executor
    /// (`None` = classic single-threaded event loop).
    ///
    /// Sharding partitions the node population into `S` contiguous ranges,
    /// each owning its own event engine, and runs them in bounded time
    /// windows with a deterministic cross-shard message barrier (see
    /// DESIGN.md "Sharded execution"). Every shard count — including
    /// `Some(1)` — produces byte-identical snapshots and canonical traces,
    /// so this is an execution knob, not a model change. Sharding only
    /// engages when the configuration gives messages a non-zero flight time
    /// (a faulty link layer or `link_latency > 0`); the paper's ideal
    /// zero-latency configuration has no lookahead to exploit and keeps the
    /// sequential loop, byte-identical to earlier releases.
    ///
    /// Skipped during serialization when `None` so existing experiment
    /// artifacts (fig3 JSON etc.) keep their exact bytes; absent keys
    /// deserialize as `None`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shards: Option<usize>,
    /// Online health monitoring: rolling-window degradation detectors over
    /// the observability event stream (see [`crate::health`]). Disabled by
    /// default; the monitor only ever *reads* events and emits
    /// `HealthAlert` trace events and `health.*` gauges, so enabling it
    /// cannot perturb the simulation (unless [`OverlayConfig::remedy`]
    /// explicitly closes the loop).
    pub health: HealthConfig,
    /// Self-healing remediation: gated reactions to health alerts (see
    /// [`crate::remedy`]). Disabled by default, and skipped during
    /// serialization while at its default so existing experiment artifacts
    /// keep their exact bytes.
    #[serde(default, skip_serializing_if = "RemedyConfig::is_default")]
    pub remedy: RemedyConfig,
}

/// Gated reactions of the self-healing remediation engine
/// ([`crate::remedy::RemedyEngine`]), consuming the window alerts the
/// health monitor raises and feeding deterministic corrective actions back
/// into the overlay.
///
/// Every reaction sits behind its own flag *and* the master [`enabled`]
/// switch; with the engine off the simulation is byte-identical to a build
/// without it. Remediation requires health monitoring
/// ([`HealthConfig::enabled`]) — there is nothing to react to otherwise.
///
/// [`enabled`]: RemedyConfig::enabled
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RemedyConfig {
    /// Master switch for the remediation engine. `false` (the default)
    /// guarantees byte-identical output to a monitoring-only run.
    pub enabled: bool,
    /// React to `eviction_storm` alerts by suppressing shuffle initiation
    /// for [`RemedyConfig::backoff_shuffles`] periods on every online node,
    /// letting in-flight exchanges drain instead of compounding the storm.
    pub backoff_on_eviction_storm: bool,
    /// React to `starved_nodes` / `isolated_nodes` alerts by re-seeding the
    /// implicated node's sampler with fresh pseudonyms from its online
    /// trusted neighbors (a targeted re-bootstrap along trust edges).
    pub rebootstrap_starved: bool,
    /// React to `indegree_skew` alerts by withholding the over-represented
    /// node's own pseudonym from its shuffle offers for
    /// [`RemedyConfig::throttle_periods`], throttling further in-degree
    /// growth at the hub.
    pub throttle_indegree_skew: bool,
    /// How many of its own shuffle initiations a node skips after an
    /// eviction-storm backoff is applied. The counter decays by one per
    /// skipped shuffle, so the reaction is self-limiting.
    pub backoff_shuffles: u32,
    /// Maximum trusted-neighbor pseudonyms offered to a starved node's
    /// sampler per re-bootstrap.
    pub rebootstrap_max_offers: usize,
    /// Minimum spacing, in shuffle periods, between two re-bootstraps of
    /// the same node (prevents thrashing a persistently isolated node).
    pub rebootstrap_cooldown: f64,
    /// How long, in shuffle periods, a skew-throttled node withholds its
    /// own pseudonym from outgoing shuffle offers.
    pub throttle_periods: f64,
}

impl Default for RemedyConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            backoff_on_eviction_storm: true,
            rebootstrap_starved: true,
            throttle_indegree_skew: true,
            backoff_shuffles: 2,
            rebootstrap_max_offers: 8,
            rebootstrap_cooldown: 10.0,
            throttle_periods: 10.0,
        }
    }
}

impl RemedyConfig {
    /// `true` while every field still holds its default — the serde skip
    /// predicate that keeps the knob off the wire for existing artifacts.
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }

    /// A config with the master switch and every reaction on (the CLI's
    /// `--self-heal`).
    pub fn all_on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Checks internal consistency (validated even when disabled, so a
    /// latent bad config cannot hide until someone switches healing on).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.backoff_shuffles == 0 {
            return Err(CoreError::InvalidConfig {
                field: "remedy.backoff_shuffles",
                reason: "a backoff of zero shuffles would be a no-op reaction".into(),
            });
        }
        if self.rebootstrap_max_offers == 0 {
            return Err(CoreError::InvalidConfig {
                field: "remedy.rebootstrap_max_offers",
                reason: "a re-bootstrap offering zero pseudonyms would be a no-op".into(),
            });
        }
        let positive = [
            ("remedy.rebootstrap_cooldown", self.rebootstrap_cooldown),
            ("remedy.throttle_periods", self.throttle_periods),
        ];
        for (field, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidConfig {
                    field,
                    reason: format!("must be finite and positive, got {v}"),
                });
            }
        }
        Ok(())
    }
}

/// Thresholds of the rolling-window health detectors in
/// [`crate::health::HealthMonitor`]. All windows and thresholds are in
/// shuffle periods / events per window; see the field docs for each
/// detector's semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Master switch. The monitor runs recorder-free too: alerts are
    /// always counted (and feed remediation when that is enabled), while
    /// `HealthAlert` trace events and `health.*` gauges are emitted only if
    /// a recorder happens to be attached.
    pub enabled: bool,
    /// Rolling window length in shuffle periods. Detector counters reset at
    /// every window boundary (boundaries lie on a fixed grid, so results do
    /// not depend on event timing).
    pub window: f64,
    /// `shuffle_failure_burst` fires when `failures / starts` within a
    /// window exceeds this rate.
    pub failure_burst_rate: f64,
    /// Minimum shuffle starts in a window before the failure-burst rate is
    /// meaningful (suppresses noise from nearly idle windows).
    pub failure_burst_min_starts: u64,
    /// `eviction_storm` fires when more than this many Cyclon evictions
    /// happen within one window.
    pub eviction_storm_count: u64,
    /// `pseudonym_expiry_stampede` fires when the fraction of nodes that
    /// purged expired pseudonyms within one window exceeds this value (the
    /// synchronized-expiry transient of the paper's Figure 9).
    pub expiry_stampede_fraction: f64,
    /// `starved_nodes` fires when the fraction of online nodes that have
    /// not completed a shuffle for this many shuffle periods exceeds
    /// [`HealthConfig::starved_fraction`].
    pub starvation_periods: f64,
    /// Fraction of online nodes allowed to be starved before alerting.
    pub starved_fraction: f64,
    /// `indegree_skew` fires when `max_degree / mean_degree` over online
    /// nodes (trusted + pseudonym links) exceeds this ratio — the topology
    /// skew that F2F-overlay analyses flag as the onset of hub formation.
    pub indegree_skew_ratio: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            window: 5.0,
            failure_burst_rate: 0.25,
            failure_burst_min_starts: 20,
            eviction_storm_count: 50,
            expiry_stampede_fraction: 0.5,
            starvation_periods: 15.0,
            starved_fraction: 0.10,
            indegree_skew_ratio: 8.0,
        }
    }
}

impl HealthConfig {
    /// Checks internal consistency (only meaningful values; the config is
    /// validated even when `enabled` is false so a latent bad config cannot
    /// hide until someone switches monitoring on).
    pub fn validate(&self) -> Result<(), CoreError> {
        let positive = [
            ("health.window", self.window),
            ("health.failure_burst_rate", self.failure_burst_rate),
            ("health.starvation_periods", self.starvation_periods),
            ("health.indegree_skew_ratio", self.indegree_skew_ratio),
        ];
        for (field, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidConfig {
                    field,
                    reason: format!("must be finite and positive, got {v}"),
                });
            }
        }
        let fractions = [
            (
                "health.expiry_stampede_fraction",
                self.expiry_stampede_fraction,
            ),
            ("health.starved_fraction", self.starved_fraction),
        ];
        for (field, v) in fractions {
            if !(v.is_finite() && v > 0.0 && v <= 1.0) {
                return Err(CoreError::InvalidConfig {
                    field,
                    reason: format!("must be in (0, 1], got {v}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for OverlayConfig {
    fn default() -> Self {
        Self {
            cache_size: 400,
            shuffle_length: 40,
            target_links: 50,
            pseudonym_lifetime: Some(90.0),
            min_slots: 0,
            slot_policy: SlotPolicy::DegreeAware,
            distance_metric: DistanceMetric::Absolute,
            minwise_sampling: true,
            stop_after_stable_periods: None,
            lifetime_policy: LifetimePolicy::Global,
            link_latency: 0.0,
            skip_offline_peers: true,
            link: LinkLayerConfig::Ideal,
            shuffle_timeout: 3.0,
            shuffle_retry_budget: 2,
            parallelism: None,
            shards: None,
            health: HealthConfig::default(),
            remedy: RemedyConfig::default(),
        }
    }
}

/// Policy for choosing the lifetime of freshly minted pseudonyms.
///
/// The paper treats pseudonym lifetime as "a global system parameter with
/// the same value for all nodes", but notes that "it might be better to let
/// each node adapt the lifetime of its pseudonyms based on the availability
/// characteristics of the other participating nodes" (Section III-C). The
/// adaptive variant implements the node-local version of that idea.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LifetimePolicy {
    /// Every pseudonym uses [`OverlayConfig::pseudonym_lifetime`].
    #[default]
    Global,
    /// Each node tracks an exponential moving average of its *own* offline
    /// durations and mints pseudonyms that live `multiplier ×` that average
    /// (never below `floor`). Until a node has observed an offline period,
    /// it falls back to the global lifetime.
    Adaptive {
        /// Lifetime as a multiple of the node's mean observed offline time
        /// (the paper's guidance: comfortably above 1, e.g. 3).
        multiplier: f64,
        /// Lower bound on the adaptive lifetime in shuffle periods.
        floor: f64,
    },
}

impl OverlayConfig {
    /// Sets the pseudonym lifetime as a ratio `r` of the mean offline time,
    /// the parameterization the paper sweeps in Figures 7–9
    /// (`r ∈ {1, 3, 9, ∞}`; `None` means `∞`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not finite and positive, or `mean_offline <= 0`.
    pub fn with_lifetime_ratio(mut self, r: Option<f64>, mean_offline: f64) -> Self {
        assert!(
            mean_offline.is_finite() && mean_offline > 0.0,
            "mean offline time must be positive"
        );
        self.pseudonym_lifetime = r.map(|r| {
            assert!(r.is_finite() && r > 0.0, "lifetime ratio must be positive");
            r * mean_offline
        });
        self
    }

    /// Number of sampler slots for a node with trust degree `trust_degree`.
    pub fn slots_for_degree(&self, trust_degree: usize) -> usize {
        match self.slot_policy {
            SlotPolicy::DegreeAware => self
                .target_links
                .saturating_sub(trust_degree)
                .max(self.min_slots),
            SlotPolicy::Uniform => self.target_links.max(self.min_slots),
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when any field is out of range
    /// (zero cache, zero shuffle length, non-positive lifetime, or a
    /// shuffle length exceeding cache capacity plus one).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.cache_size == 0 {
            return Err(CoreError::InvalidConfig {
                field: "cache_size",
                reason: "cache must hold at least one pseudonym".into(),
            });
        }
        if self.shuffle_length == 0 {
            return Err(CoreError::InvalidConfig {
                field: "shuffle_length",
                reason: "a shuffle must exchange at least one pseudonym".into(),
            });
        }
        if self.shuffle_length > self.cache_size + 1 {
            return Err(CoreError::InvalidConfig {
                field: "shuffle_length",
                reason: format!(
                    "cannot send {} pseudonyms from a cache of {} plus own pseudonym",
                    self.shuffle_length, self.cache_size
                ),
            });
        }
        if self.target_links == 0 {
            return Err(CoreError::InvalidConfig {
                field: "target_links",
                reason: "target link count must be positive".into(),
            });
        }
        if let Some(l) = self.pseudonym_lifetime {
            if !(l.is_finite() && l > 0.0) {
                return Err(CoreError::InvalidConfig {
                    field: "pseudonym_lifetime",
                    reason: format!("lifetime must be positive and finite, got {l}"),
                });
            }
        }
        if !(self.link_latency.is_finite() && self.link_latency >= 0.0) {
            return Err(CoreError::InvalidConfig {
                field: "link_latency",
                reason: format!(
                    "latency must be finite and non-negative, got {}",
                    self.link_latency
                ),
            });
        }
        if !(self.shuffle_timeout.is_finite() && self.shuffle_timeout > 0.0) {
            return Err(CoreError::InvalidConfig {
                field: "shuffle_timeout",
                reason: format!(
                    "timeout must be finite and positive, got {}",
                    self.shuffle_timeout
                ),
            });
        }
        if let LinkLayerConfig::Faulty(fault) = &self.link {
            if let Err(reason) = fault.validate() {
                return Err(CoreError::InvalidConfig {
                    field: "link",
                    reason,
                });
            }
        }
        if self.shards == Some(0) {
            return Err(CoreError::InvalidConfig {
                field: "shards",
                reason: "shard count must be at least 1 (or None for unsharded)".into(),
            });
        }
        if self.stop_after_stable_periods == Some(0) {
            return Err(CoreError::InvalidConfig {
                field: "stop_after_stable_periods",
                reason: "stability threshold of zero would suppress all shuffling".into(),
            });
        }
        self.health.validate()?;
        self.remedy.validate()?;
        if self.remedy.enabled && !self.health.enabled {
            return Err(CoreError::InvalidConfig {
                field: "remedy.enabled",
                reason: "self-healing requires health monitoring (health.enabled = true); \
                         there are no alerts to react to otherwise"
                    .into(),
            });
        }
        if let LifetimePolicy::Adaptive { multiplier, floor } = self.lifetime_policy {
            if !(multiplier.is_finite() && multiplier > 0.0) {
                return Err(CoreError::InvalidConfig {
                    field: "lifetime_policy",
                    reason: format!("adaptive multiplier must be positive, got {multiplier}"),
                });
            }
            if !(floor.is_finite() && floor > 0.0) {
                return Err(CoreError::InvalidConfig {
                    field: "lifetime_policy",
                    reason: format!("adaptive floor must be positive, got {floor}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_one() {
        let cfg = OverlayConfig::default();
        assert_eq!(cfg.cache_size, 400);
        assert_eq!(cfg.shuffle_length, 40);
        assert_eq!(cfg.target_links, 50);
        assert_eq!(cfg.pseudonym_lifetime, Some(90.0));
        assert_eq!(cfg.slot_policy, SlotPolicy::DegreeAware);
        assert_eq!(cfg.distance_metric, DistanceMetric::Absolute);
        assert!(cfg.minwise_sampling);
        cfg.validate().unwrap();
    }

    #[test]
    fn lifetime_ratio_parameterization() {
        let toff = 30.0;
        let r3 = OverlayConfig::default().with_lifetime_ratio(Some(3.0), toff);
        assert_eq!(r3.pseudonym_lifetime, Some(90.0));
        let r1 = OverlayConfig::default().with_lifetime_ratio(Some(1.0), toff);
        assert_eq!(r1.pseudonym_lifetime, Some(30.0));
        let inf = OverlayConfig::default().with_lifetime_ratio(None, toff);
        assert_eq!(inf.pseudonym_lifetime, None);
    }

    #[test]
    fn degree_aware_slots() {
        let cfg = OverlayConfig::default();
        assert_eq!(cfg.slots_for_degree(0), 50);
        assert_eq!(cfg.slots_for_degree(10), 40);
        assert_eq!(cfg.slots_for_degree(50), 0, "hubs get no extra links");
        assert_eq!(cfg.slots_for_degree(200), 0);
    }

    #[test]
    fn uniform_slots_ignore_degree() {
        let cfg = OverlayConfig {
            slot_policy: SlotPolicy::Uniform,
            ..OverlayConfig::default()
        };
        assert_eq!(cfg.slots_for_degree(0), 50);
        assert_eq!(cfg.slots_for_degree(200), 50);
    }

    #[test]
    fn min_slots_floor() {
        let cfg = OverlayConfig {
            min_slots: 5,
            ..OverlayConfig::default()
        };
        assert_eq!(cfg.slots_for_degree(200), 5);
    }

    #[test]
    fn validation_rejects_degenerate_values() {
        let mut cfg = OverlayConfig {
            cache_size: 0,
            ..OverlayConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg = OverlayConfig {
            shuffle_length: 0,
            ..OverlayConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg = OverlayConfig {
            cache_size: 10,
            shuffle_length: 12,
            ..OverlayConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg = OverlayConfig {
            target_links: 0,
            ..OverlayConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg = OverlayConfig {
            pseudonym_lifetime: Some(0.0),
            ..OverlayConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let cfg = OverlayConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: OverlayConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn faulty_link_serde_round_trip() {
        let cfg = OverlayConfig {
            link: LinkLayerConfig::Faulty(FaultConfig::with_loss(0.1)),
            ..OverlayConfig::default()
        };
        cfg.validate().unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: OverlayConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn link_layer_validation() {
        let bad_timeout = OverlayConfig {
            shuffle_timeout: 0.0,
            ..OverlayConfig::default()
        };
        assert!(bad_timeout.validate().is_err());
        let bad_fault = OverlayConfig {
            link: LinkLayerConfig::Faulty(FaultConfig {
                drop_probability: 2.0,
                ..FaultConfig::none()
            }),
            ..OverlayConfig::default()
        };
        assert!(bad_fault.validate().is_err());
        let ok = OverlayConfig {
            link: LinkLayerConfig::Faulty(FaultConfig::with_loss(0.2)),
            shuffle_timeout: 1.5,
            shuffle_retry_budget: 3,
            ..OverlayConfig::default()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn stable_stop_zero_is_rejected() {
        let cfg = OverlayConfig {
            stop_after_stable_periods: Some(0),
            ..OverlayConfig::default()
        };
        assert!(cfg.validate().is_err());
        let ok = OverlayConfig {
            stop_after_stable_periods: Some(5),
            ..OverlayConfig::default()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn health_config_validation() {
        let defaults = HealthConfig::default();
        assert!(!defaults.enabled, "monitoring is opt-in");
        defaults.validate().unwrap();
        let bad_window = OverlayConfig {
            health: HealthConfig {
                window: 0.0,
                ..HealthConfig::default()
            },
            ..OverlayConfig::default()
        };
        assert!(bad_window.validate().is_err());
        let bad_fraction = OverlayConfig {
            health: HealthConfig {
                starved_fraction: 1.5,
                ..HealthConfig::default()
            },
            ..OverlayConfig::default()
        };
        assert!(bad_fraction.validate().is_err());
        let enabled = OverlayConfig {
            health: HealthConfig {
                enabled: true,
                ..HealthConfig::default()
            },
            ..OverlayConfig::default()
        };
        enabled.validate().unwrap();
        let json = serde_json::to_string(&enabled).unwrap();
        let back: OverlayConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(enabled, back);
    }

    #[test]
    fn shards_knob_validates_and_stays_off_the_wire() {
        let zero = OverlayConfig {
            shards: Some(0),
            ..OverlayConfig::default()
        };
        assert!(zero.validate().is_err());
        let sharded = OverlayConfig {
            shards: Some(8),
            ..OverlayConfig::default()
        };
        sharded.validate().unwrap();
        // `None` is skipped entirely: the default config serializes to the
        // exact same bytes as before the knob existed, which is what keeps
        // committed experiment artifacts (fig3 JSON) byte-stable.
        let json = serde_json::to_string(&OverlayConfig::default()).unwrap();
        assert!(!json.contains("shards"), "{json}");
        // A pre-knob document (no `shards` key) deserializes to `None`.
        let back: OverlayConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shards, None);
        // And `Some` round-trips.
        let json = serde_json::to_string(&sharded).unwrap();
        assert!(json.contains("\"shards\""), "{json}");
        let back: OverlayConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sharded);
    }

    #[test]
    fn remedy_knob_validates_and_stays_off_the_wire() {
        // Healing without monitoring has nothing to react to.
        let no_health = OverlayConfig {
            remedy: RemedyConfig::all_on(),
            ..OverlayConfig::default()
        };
        assert!(no_health.validate().is_err());
        let healed = OverlayConfig {
            health: HealthConfig {
                enabled: true,
                ..HealthConfig::default()
            },
            remedy: RemedyConfig::all_on(),
            ..OverlayConfig::default()
        };
        healed.validate().unwrap();
        // Degenerate tuning is rejected even while disabled.
        for bad in [
            RemedyConfig {
                backoff_shuffles: 0,
                ..RemedyConfig::default()
            },
            RemedyConfig {
                rebootstrap_max_offers: 0,
                ..RemedyConfig::default()
            },
            RemedyConfig {
                rebootstrap_cooldown: 0.0,
                ..RemedyConfig::default()
            },
            RemedyConfig {
                throttle_periods: f64::NAN,
                ..RemedyConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        // The default is skipped entirely: the default config serializes to
        // the exact same bytes as before the knob existed, keeping committed
        // experiment artifacts byte-stable.
        let json = serde_json::to_string(&OverlayConfig::default()).unwrap();
        assert!(!json.contains("remedy"), "{json}");
        // A pre-knob document (no `remedy` key) deserializes to the default.
        let back: OverlayConfig = serde_json::from_str(&json).unwrap();
        assert!(back.remedy.is_default());
        // And a non-default config round-trips.
        let json = serde_json::to_string(&healed).unwrap();
        assert!(json.contains("\"remedy\""), "{json}");
        let back: OverlayConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, healed);
    }

    #[test]
    fn adaptive_lifetime_validation() {
        let bad_mult = OverlayConfig {
            lifetime_policy: LifetimePolicy::Adaptive {
                multiplier: 0.0,
                floor: 10.0,
            },
            ..OverlayConfig::default()
        };
        assert!(bad_mult.validate().is_err());
        let bad_floor = OverlayConfig {
            lifetime_policy: LifetimePolicy::Adaptive {
                multiplier: 3.0,
                floor: -1.0,
            },
            ..OverlayConfig::default()
        };
        assert!(bad_floor.validate().is_err());
        let ok = OverlayConfig {
            lifetime_policy: LifetimePolicy::Adaptive {
                multiplier: 3.0,
                floor: 10.0,
            },
            ..OverlayConfig::default()
        };
        ok.validate().unwrap();
    }
}
