//! Data dissemination over the overlay.
//!
//! The overlay exists so that "reliable and privacy-preserving message
//! broadcast" can be built on top "by using controlled flooding, epidemic
//! dissemination, or an additional routing layer" (Section I). This module
//! provides the two simplest such layers — flooding and probabilistic
//! (epidemic) gossip — so the examples and tests can exercise the overlay
//! end to end and measure what robustness buys.

use crate::simulation::Simulation;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use veil_graph::Graph;

/// Outcome of one broadcast attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BroadcastReport {
    /// The originating node.
    pub source: usize,
    /// Online nodes at the time of the broadcast.
    pub online_nodes: usize,
    /// Online nodes that received the message (including the source).
    pub reached: usize,
    /// Greatest hop count over reached nodes.
    pub max_hops: usize,
    /// Mean hop count over reached nodes other than the source.
    pub mean_hops: f64,
    /// Total point-to-point messages sent.
    pub messages: usize,
}

impl BroadcastReport {
    /// Fraction of online nodes reached.
    pub fn coverage(&self) -> f64 {
        if self.online_nodes == 0 {
            0.0
        } else {
            self.reached as f64 / self.online_nodes as f64
        }
    }
}

/// Floods a message from `source` over `graph`, traversing only edges whose
/// both endpoints are online. Every node forwards once to all neighbours.
///
/// # Panics
///
/// Panics if `source` is out of range, offline, or the mask length differs
/// from the graph order.
pub fn flood(graph: &Graph, online: &[bool], source: usize) -> BroadcastReport {
    assert_eq!(online.len(), graph.node_count(), "mask length mismatch");
    assert!(online[source], "broadcast source must be online");
    let mut hops = vec![usize::MAX; graph.node_count()];
    hops[source] = 0;
    let mut queue = VecDeque::from([source]);
    let mut messages = 0usize;
    while let Some(v) = queue.pop_front() {
        for &w in graph.neighbors(v) {
            let w = w as usize;
            if !online[w] {
                continue;
            }
            messages += 1;
            if hops[w] == usize::MAX {
                hops[w] = hops[v] + 1;
                queue.push_back(w);
            }
        }
    }
    summarize(online, source, &hops, messages)
}

/// Controlled flooding: like [`flood`], but messages carry a TTL and stop
/// propagating after `ttl` hops — the "controlled flooding" variant the
/// paper names as a dissemination layer candidate (Section I). On a
/// random-graph-like overlay a TTL a little above the diameter reaches
/// everyone at a fraction of unbounded flooding's cost.
///
/// # Panics
///
/// Panics if `source` is out of range, offline, or the mask length differs
/// from the graph order.
pub fn controlled_flood(
    graph: &Graph,
    online: &[bool],
    source: usize,
    ttl: usize,
) -> BroadcastReport {
    assert_eq!(online.len(), graph.node_count(), "mask length mismatch");
    assert!(online[source], "broadcast source must be online");
    let mut hops = vec![usize::MAX; graph.node_count()];
    hops[source] = 0;
    let mut queue = VecDeque::from([source]);
    let mut messages = 0usize;
    while let Some(v) = queue.pop_front() {
        if hops[v] >= ttl {
            continue; // TTL exhausted: receive but do not forward
        }
        for &w in graph.neighbors(v) {
            let w = w as usize;
            if !online[w] {
                continue;
            }
            messages += 1;
            if hops[w] == usize::MAX {
                hops[w] = hops[v] + 1;
                queue.push_back(w);
            }
        }
    }
    summarize(online, source, &hops, messages)
}

/// Epidemic gossip: each infected node forwards to `fanout` random online
/// neighbours instead of all of them, trading coverage for message cost.
///
/// # Panics
///
/// Same conditions as [`flood`].
pub fn gossip<R: Rng + ?Sized>(
    graph: &Graph,
    online: &[bool],
    source: usize,
    fanout: usize,
    rng: &mut R,
) -> BroadcastReport {
    assert_eq!(online.len(), graph.node_count(), "mask length mismatch");
    assert!(online[source], "broadcast source must be online");
    let mut hops = vec![usize::MAX; graph.node_count()];
    hops[source] = 0;
    let mut queue = VecDeque::from([source]);
    let mut messages = 0usize;
    while let Some(v) = queue.pop_front() {
        let mut candidates: Vec<usize> = graph
            .neighbors(v)
            .iter()
            .map(|&w| w as usize)
            .filter(|&w| online[w])
            .collect();
        // Partial Fisher–Yates: choose `fanout` targets without replacement.
        let picks = fanout.min(candidates.len());
        for i in 0..picks {
            let j = rng.gen_range(i..candidates.len());
            candidates.swap(i, j);
            let w = candidates[i];
            messages += 1;
            if hops[w] == usize::MAX {
                hops[w] = hops[v] + 1;
                queue.push_back(w);
            }
        }
    }
    summarize(online, source, &hops, messages)
}

fn summarize(online: &[bool], source: usize, hops: &[usize], messages: usize) -> BroadcastReport {
    let online_nodes = online.iter().filter(|&&b| b).count();
    let reached_hops: Vec<usize> = hops.iter().copied().filter(|&h| h != usize::MAX).collect();
    let reached = reached_hops.len();
    let max_hops = reached_hops.iter().copied().max().unwrap_or(0);
    let non_source: Vec<usize> = reached_hops.iter().copied().filter(|&h| h > 0).collect();
    let mean_hops = if non_source.is_empty() {
        0.0
    } else {
        non_source.iter().sum::<usize>() as f64 / non_source.len() as f64
    };
    BroadcastReport {
        source,
        online_nodes,
        reached,
        max_hops,
        mean_hops,
        messages,
    }
}

/// Floods from `source` over the *current* overlay of a simulation.
///
/// # Panics
///
/// Panics if `source` is offline.
pub fn flood_current_overlay(sim: &Simulation, source: usize) -> BroadcastReport {
    flood(&sim.overlay_graph(), &sim.online_mask(), source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use veil_graph::generators;

    #[test]
    fn flood_covers_connected_graph() {
        let g = generators::cycle(10);
        let online = vec![true; 10];
        let r = flood(&g, &online, 0);
        assert_eq!(r.reached, 10);
        assert_eq!(r.coverage(), 1.0);
        assert_eq!(r.max_hops, 5);
        assert_eq!(r.messages, 20, "every node forwards on both edges");
    }

    #[test]
    fn flood_stops_at_offline_nodes() {
        let g = generators::path(5);
        let online = vec![true, true, false, true, true];
        let r = flood(&g, &online, 0);
        assert_eq!(r.reached, 2, "offline node 2 partitions the path");
        assert!(r.coverage() < 1.0);
    }

    #[test]
    #[should_panic(expected = "online")]
    fn flood_rejects_offline_source() {
        let g = generators::path(3);
        flood(&g, &[false, true, true], 0);
    }

    #[test]
    fn flood_hop_counts_are_bfs_distances() {
        let g = generators::path(4);
        let r = flood(&g, &[true; 4], 0);
        assert_eq!(r.max_hops, 3);
        assert!((r.mean_hops - 2.0).abs() < 1e-12); // hops 1,2,3
    }

    #[test]
    fn controlled_flood_respects_ttl() {
        let g = generators::path(6);
        let online = vec![true; 6];
        let r = controlled_flood(&g, &online, 0, 2);
        assert_eq!(r.reached, 3, "hops 0,1,2 only");
        assert_eq!(r.max_hops, 2);
        // Unbounded TTL behaves like flood.
        let full = controlled_flood(&g, &online, 0, 100);
        let flooded = flood(&g, &online, 0);
        assert_eq!(full.reached, flooded.reached);
        assert_eq!(full.messages, flooded.messages);
    }

    #[test]
    fn controlled_flood_ttl_zero_reaches_only_source() {
        let g = generators::complete(5);
        let r = controlled_flood(&g, &[true; 5], 0, 0);
        assert_eq!(r.reached, 1);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn controlled_flood_saves_messages_on_dense_graphs() {
        let g = generators::complete(20);
        let online = vec![true; 20];
        let full = flood(&g, &online, 0);
        let bounded = controlled_flood(&g, &online, 0, 1);
        assert_eq!(bounded.reached, 20, "diameter 1: TTL 1 reaches all");
        assert!(bounded.messages < full.messages);
    }

    #[test]
    fn gossip_with_full_fanout_matches_flood_coverage() {
        let g = generators::complete(8);
        let online = vec![true; 8];
        let mut rng = StdRng::seed_from_u64(1);
        let r = gossip(&g, &online, 0, 7, &mut rng);
        assert_eq!(r.reached, 8);
    }

    #[test]
    fn gossip_uses_fewer_messages_than_flood() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::erdos_renyi_gnm(100, 800, &mut rng).unwrap();
        let online = vec![true; 100];
        let f = flood(&g, &online, 0);
        let e = gossip(&g, &online, 0, 3, &mut rng);
        assert!(e.messages < f.messages);
        assert!(e.reached > 50, "gossip should still reach most nodes");
    }

    #[test]
    fn singleton_broadcast() {
        let g = Graph::new(1);
        let r = flood(&g, &[true], 0);
        assert_eq!(r.reached, 1);
        assert_eq!(r.mean_hops, 0.0);
        assert_eq!(r.messages, 0);
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn coverage_of_empty_online_set_is_zero() {
        let r = BroadcastReport {
            source: 0,
            online_nodes: 0,
            reached: 0,
            max_hops: 0,
            mean_hops: 0.0,
            messages: 0,
        };
        assert_eq!(r.coverage(), 0.0);
    }
}
