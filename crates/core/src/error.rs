//! Error type for overlay configuration and simulation setup.

use std::fmt;

/// Errors raised while configuring or constructing an overlay simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration field had an invalid value.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The trust graph is unusable (e.g. empty).
    InvalidTrustGraph {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration field `{field}`: {reason}")
            }
            CoreError::InvalidTrustGraph { reason } => {
                write!(f, "invalid trust graph: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let e = CoreError::InvalidConfig {
            field: "cache_size",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("cache_size"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<CoreError>();
    }
}
