//! Packaged experiments reproducing the paper's evaluation (Section V).
//!
//! Each public function regenerates the data behind one figure:
//!
//! | Figure | Function |
//! |--------|----------|
//! | 3      | [`availability_sweep`] (`*_disconnected` fields) |
//! | 4      | [`availability_sweep`] (`*_npl` fields) |
//! | 5      | [`degree_distributions`] |
//! | 6      | [`message_load`] |
//! | 7      | [`lifetime_sweep`] |
//! | 8      | [`connectivity_over_time`] |
//! | 9      | [`replacement_rate_over_time`] |
//!
//! The sensitivity and ablation sweeps in `veil-bench` reuse
//! [`availability_sweep`] over configuration variants.
//!
//! The trust graphs are sampled — exactly as in Section IV-A — with the
//! invitation-model *f-sampler* from a larger social graph; since the
//! Facebook crawl the paper used is proprietary, the source graph is a
//! synthetic Holme–Kim graph with power-law degrees and social-level
//! clustering (see DESIGN.md for the substitution argument).

use crate::config::{LinkLayerConfig, OverlayConfig, RemedyConfig};
use crate::error::CoreError;
use crate::metrics::Collector;
use crate::simulation::Simulation;
use serde::{Deserialize, Serialize};
use veil_graph::metrics as gm;
use veil_graph::sample::sample_trust_graph;
use veil_graph::{generators, Graph};
use veil_metrics::{Histogram, TimeSeries};
use veil_sim::churn::ChurnConfig;
use veil_sim::fault::{EpisodeEffect, FaultConfig, FaultEpisode, LatencyDist};
use veil_sim::rng::{derive_rng, derive_rng_raw, Stream};

/// Shared parameters of an experiment run (paper defaults in
/// [`ExperimentParams::default`], matching Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Trust-graph size (Table I: 1000).
    pub nodes: usize,
    /// Invitation-model sampling parameter `f` (Table I: 0.5).
    pub trust_f: f64,
    /// Mean offline time `Toff` in shuffle periods (Table I: 30).
    pub mean_offline: f64,
    /// Pseudonym lifetime as a multiple `r` of `Toff`; `None` = never
    /// expires (Table I default: 3).
    pub lifetime_ratio: Option<f64>,
    /// Warm-up time before steady-state measurements, in shuffle periods.
    pub warmup: f64,
    /// Master seed for full determinism.
    pub seed: u64,
    /// Overlay protocol configuration (Table I defaults).
    pub overlay: OverlayConfig,
    /// The synthetic source social graph has `source_multiplier × nodes`
    /// vertices (the Facebook crawl was ~3000× larger than the samples;
    /// a factor of 50 preserves the sampling dynamics at tractable cost).
    pub source_multiplier: usize,
    /// Which synthetic model stands in for the Facebook crawl.
    pub source: SourceModel,
}

/// Synthetic social-graph model used as the sampling source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourceModel {
    /// Community-structured model: dense Erdős–Rényi communities glued by
    /// preferentially attached inter-community links. Yields dense samples
    /// but with high sample-to-sample variance in the f = 1.0 / f = 0.5
    /// density contrast.
    Community(veil_graph::generators::CommunityParams),
    /// Holme–Kim preferential attachment with triad closure (the default,
    /// with `attach = 3`, `triad = 0.9`): power-law degrees with many
    /// low-degree nodes, which is what makes the invitation-model sampler's
    /// `f` parameter bite — `max(1, f·deg)` differs between `f` values only
    /// where degrees are small. This reproduces the paper's *ordering*
    /// (f = 1.0 samples are consistently denser than f = 0.5 ones) at
    /// every seed, at lower absolute density than the Facebook crawl
    /// (see EXPERIMENTS.md).
    HolmeKim {
        /// Edges added per new node.
        attach: usize,
        /// Triangle-closure probability.
        triad: f64,
    },
    /// Holme–Kim-style attachment tuned to a *fractional* average degree
    /// (see [`veil_graph::generators::degree_matched`]). The paper's trust
    /// samples average 11.3 links per node at `f = 1.0` and 6.55 at
    /// `f = 0.5` (Section IV-A); this model reproduces those densities
    /// directly instead of only their ordering. Note the target applies to
    /// the *source* graph — f-sampling still thins the final trust graph.
    DegreeMatched {
        /// Target average degree of the source graph.
        avg_degree: f64,
        /// Triangle-closure probability.
        triad: f64,
    },
}

impl Default for SourceModel {
    fn default() -> Self {
        SourceModel::HolmeKim {
            attach: 3,
            triad: 0.9,
        }
    }
}

impl Default for ExperimentParams {
    fn default() -> Self {
        Self {
            nodes: 1000,
            trust_f: 0.5,
            mean_offline: 30.0,
            lifetime_ratio: Some(3.0),
            warmup: 300.0,
            seed: 42,
            overlay: OverlayConfig::default(),
            source_multiplier: 100,
            source: SourceModel::default(),
        }
    }
}

impl ExperimentParams {
    /// Scales the experiment down by `factor` (nodes, warm-up) for tests
    /// and smoke runs; protocol parameters scale proportionally so the
    /// dynamics stay comparable. Scaled runs switch the source model to
    /// Holme–Kim, because 100-to-300-node communities do not fit a source
    /// graph of a few thousand vertices.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        if factor > 1 {
            self.nodes = (self.nodes / factor).max(20);
            self.warmup = (self.warmup / factor as f64).max(30.0);
            self.overlay.cache_size = (self.overlay.cache_size / factor).max(20);
            self.overlay.shuffle_length = (self.overlay.shuffle_length / factor).max(4);
            self.overlay.target_links = (self.overlay.target_links / factor).max(8);
            self.source_multiplier = self.source_multiplier.min(10);
            self.source = SourceModel::HolmeKim {
                attach: 4,
                triad: 0.6,
            };
        }
        self
    }

    /// The pseudonym lifetime in shuffle periods implied by the ratio.
    pub fn lifetime(&self) -> Option<f64> {
        self.lifetime_ratio.map(|r| r * self.mean_offline)
    }
}

/// Builds the trust graph: a Holme–Kim synthetic social graph f-sampled
/// down to `params.nodes` vertices.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the parameters cannot produce a
/// valid graph.
pub fn build_trust_graph(params: &ExperimentParams) -> Result<Graph, CoreError> {
    build_trust_graph_with_f(params, params.trust_f)
}

/// Like [`build_trust_graph`] but overriding the sampling parameter `f`
/// (Figures 3–6 compare `f = 1.0` against `f = 0.5`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the parameters cannot produce a
/// valid graph.
pub fn build_trust_graph_with_f(params: &ExperimentParams, f: f64) -> Result<Graph, CoreError> {
    let source_nodes = params.nodes * params.source_multiplier.max(1);
    let mut rng = derive_rng(params.seed, Stream::Topology);
    let source = match params.source {
        SourceModel::Community(community) => {
            generators::community_social(source_nodes, community, &mut rng)
        }
        SourceModel::HolmeKim { attach, triad } => {
            generators::holme_kim(source_nodes, attach, triad, &mut rng)
        }
        SourceModel::DegreeMatched { avg_degree, triad } => {
            generators::degree_matched(source_nodes, avg_degree, triad, &mut rng)
        }
    }
    .map_err(|e| CoreError::InvalidConfig {
        field: "source",
        reason: e.to_string(),
    })?;
    let sampled = sample_trust_graph(&source, params.nodes, f, &mut rng).map_err(|e| {
        CoreError::InvalidConfig {
            field: "trust_f",
            reason: e.to_string(),
        }
    })?;
    Ok(sampled.graph)
}

/// Builds a simulation over `trust` with availability `alpha`, using the
/// experiment's overlay and churn parameterization.
///
/// # Errors
///
/// Propagates configuration errors from [`Simulation::new`].
pub fn build_simulation(
    trust: Graph,
    params: &ExperimentParams,
    alpha: f64,
) -> Result<Simulation, CoreError> {
    let cfg = params
        .overlay
        .clone()
        .with_lifetime_ratio(params.lifetime_ratio, params.mean_offline);
    let churn = ChurnConfig::from_availability(alpha, params.mean_offline);
    Simulation::new(trust, cfg, churn, params.seed)
}

/// An Erdős–Rényi reference graph with the same order and size as `like`,
/// seeded deterministically from the experiment seed.
fn random_reference(like: &Graph, seed: u64) -> Graph {
    let mut rng = derive_rng_raw(seed, 0xEE77);
    generators::erdos_renyi_like(like, &mut rng).expect("reference graph parameters are valid")
}

/// One row of the availability sweeps (Figures 3, 4 and 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Node availability `α`.
    pub alpha: f64,
    /// Fraction of disconnected online nodes: trust graph alone.
    pub trust_disconnected: f64,
    /// Fraction of disconnected online nodes: the maintained overlay.
    pub overlay_disconnected: f64,
    /// Fraction of disconnected online nodes: ER graph of equal size.
    pub random_disconnected: f64,
    /// Normalized average path length: trust graph alone.
    pub trust_npl: f64,
    /// Normalized average path length: the maintained overlay.
    pub overlay_npl: f64,
    /// Normalized average path length: ER graph of equal size.
    pub random_npl: f64,
}

/// Runs the availability sweep behind Figures 3 and 4: for each `α`, build
/// the overlay under churn, run to steady state, and measure connectivity
/// and normalized path length for the trust graph, the overlay, and an ER
/// reference of the same size as the overlay.
///
/// Set `with_path_length = false` to skip the (expensive) all-pairs BFS
/// when only Figure 3 data is needed.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn availability_sweep(
    trust: &Graph,
    params: &ExperimentParams,
    alphas: &[f64],
    with_path_length: bool,
) -> Result<Vec<SweepPoint>, CoreError> {
    let _span = veil_obs::global().span_with("experiment.availability_sweep", || {
        format!("points={}", alphas.len())
    });
    // Each α is an independent simulation whose randomness derives from
    // `(params.seed, stream)` alone, so the points can run on worker
    // threads; collecting in index order keeps the output byte-identical
    // to a serial run for every `params.overlay.parallelism` value.
    veil_par::map(alphas, params.overlay.parallelism, |&alpha| {
        availability_point(trust, params, alpha, with_path_length)
    })
    .into_iter()
    .collect()
}

/// One α-point of [`availability_sweep`]: build the overlay under churn,
/// run to steady state, and measure.
fn availability_point(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
    with_path_length: bool,
) -> Result<SweepPoint, CoreError> {
    let _span =
        veil_obs::global().span_with("experiment.availability_point", || format!("alpha={alpha}"));
    // Connectivity under churn fluctuates snapshot to snapshot; average a
    // few spaced snapshots after warm-up, as "results show the state of the
    // system after the reported metrics have reached stable values".
    const SNAPSHOTS: usize = 5;
    const SNAPSHOT_SPACING: f64 = 10.0;
    let mut sim = build_simulation(trust.clone(), params, alpha)?;
    sim.run_until(params.warmup);
    let mut random: Option<Graph> = None;
    let mut trust_disc = 0.0;
    let mut overlay_disc = 0.0;
    let mut random_disc = 0.0;
    for snap in 0..SNAPSHOTS {
        if snap > 0 {
            sim.run_until(params.warmup + snap as f64 * SNAPSHOT_SPACING);
        }
        let online = sim.online_mask();
        let overlay = sim.overlay_graph();
        let reference = random.get_or_insert_with(|| random_reference(&overlay, params.seed));
        trust_disc += gm::fraction_disconnected(trust, &online);
        overlay_disc += gm::fraction_disconnected(&overlay, &online);
        random_disc += gm::fraction_disconnected(reference, &online);
    }
    let online = sim.online_mask();
    let overlay = sim.overlay_graph();
    let reference = random.expect("at least one snapshot taken");
    // The all-pairs BFS inside the path-length metric stays serial here:
    // the sweep already parallelizes across α-points, and oversubscribing
    // threads would not change the (index-ordered, exact-sum) results.
    let npl = |g: &Graph| {
        if with_path_length {
            gm::normalized_avg_path_length(g, Some(&online))
        } else {
            0.0
        }
    };
    Ok(SweepPoint {
        alpha,
        trust_disconnected: trust_disc / SNAPSHOTS as f64,
        overlay_disconnected: overlay_disc / SNAPSHOTS as f64,
        random_disconnected: random_disc / SNAPSHOTS as f64,
        trust_npl: npl(trust),
        overlay_npl: npl(&overlay),
        random_npl: npl(&reference),
    })
}

/// Degree distributions of trust graph, overlay and ER reference among
/// online nodes at steady state (Figure 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeDistributions {
    /// Availability the snapshot was taken at.
    pub alpha: f64,
    /// Degrees in the trust graph (online-induced).
    pub trust: Histogram,
    /// Degrees in the maintained overlay (online-induced).
    pub overlay: Histogram,
    /// Degrees in the ER reference (online-induced).
    pub random: Histogram,
}

/// Produces the Figure 5 data at availability `alpha`.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn degree_distributions(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
) -> Result<DegreeDistributions, CoreError> {
    let mut sim = build_simulation(trust.clone(), params, alpha)?;
    sim.run_until(params.warmup);
    let online = sim.online_mask();
    let overlay = sim.overlay_graph();
    let random = random_reference(&overlay, params.seed);
    Ok(DegreeDistributions {
        alpha,
        trust: gm::degree_histogram(trust, Some(&online)),
        overlay: gm::degree_histogram(&overlay, Some(&online)),
        random: gm::degree_histogram(&random, Some(&online)),
    })
}

/// Runs [`degree_distributions`] for several availabilities in parallel,
/// returning the snapshots in input order.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn degree_distributions_multi(
    trust: &Graph,
    params: &ExperimentParams,
    alphas: &[f64],
) -> Result<Vec<DegreeDistributions>, CoreError> {
    let _span = veil_obs::global().span_with("experiment.degree_distributions_multi", || {
        format!("points={}", alphas.len())
    });
    veil_par::map(alphas, params.overlay.parallelism, |&alpha| {
        degree_distributions(trust, params, alpha)
    })
    .into_iter()
    .collect()
}

/// One node's row in the message-load experiment (Figure 6). Rows are
/// ordered by decreasing trust degree ("nodes are ranked according to their
/// degree in the trust graph").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageLoadRow {
    /// 1-based rank by trust-graph degree (descending).
    pub rank: usize,
    /// The node index.
    pub node: usize,
    /// Degree in the trust graph.
    pub trust_degree: usize,
    /// Average messages sent per shuffle period of online time during the
    /// measurement window.
    pub messages_per_period: f64,
    /// Maximum overlay out-degree observed during the measurement window.
    pub max_out_degree: usize,
}

/// Runs the Figure 6 experiment: after warm-up, measure for `measure`
/// shuffle periods each node's message rate and maximum out-degree
/// (sampling out-degrees every `sample_every` periods).
///
/// # Errors
///
/// Propagates simulation construction errors.
///
/// # Panics
///
/// Panics if `measure` or `sample_every` is not positive.
pub fn message_load(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
    measure: f64,
    sample_every: f64,
) -> Result<Vec<MessageLoadRow>, CoreError> {
    assert!(
        measure > 0.0 && sample_every > 0.0,
        "window must be positive"
    );
    let mut sim = build_simulation(trust.clone(), params, alpha)?;
    sim.run_until(params.warmup);
    let n = sim.node_count();
    let start: Vec<_> = (0..n).map(|v| sim.node_stats(v)).collect();
    let mut max_out = vec![0usize; n];
    let mut t = params.warmup;
    let end = params.warmup + measure;
    while t < end {
        t = (t + sample_every).min(end);
        sim.run_until(t);
        let now = sim.now();
        for (v, slot) in max_out.iter_mut().enumerate() {
            *slot = (*slot).max(sim.node(v).out_degree(now));
        }
    }
    let mut rows: Vec<MessageLoadRow> = (0..n)
        .map(|v| {
            let s0 = start[v];
            let s1 = sim.node_stats(v);
            let online = s1.online_time - s0.online_time;
            let msgs = (s1.messages_sent() - s0.messages_sent()) as f64;
            MessageLoadRow {
                rank: 0,
                node: v,
                trust_degree: trust.degree(v),
                messages_per_period: if online > 0.0 { msgs / online } else { 0.0 },
                max_out_degree: max_out[v],
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.trust_degree
            .cmp(&a.trust_degree)
            .then(a.node.cmp(&b.node))
    });
    for (i, row) in rows.iter_mut().enumerate() {
        row.rank = i + 1;
    }
    Ok(rows)
}

/// Runs [`message_load`] for several availabilities in parallel, returning
/// the row sets in input order.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn message_load_multi(
    trust: &Graph,
    params: &ExperimentParams,
    alphas: &[f64],
    measure: f64,
    sample_every: f64,
) -> Result<Vec<Vec<MessageLoadRow>>, CoreError> {
    let _span = veil_obs::global().span_with("experiment.message_load_multi", || {
        format!("points={}", alphas.len())
    });
    veil_par::map(alphas, params.overlay.parallelism, |&alpha| {
        message_load(trust, params, alpha, measure, sample_every)
    })
    .into_iter()
    .collect()
}

/// One availability sweep per pseudonym-lifetime ratio (`None` = `r = ∞`),
/// in input order — the shape of [`lifetime_sweep`]'s output.
pub type RatioSweeps = Vec<(Option<f64>, Vec<SweepPoint>)>;

/// Figure 7: the availability sweep repeated for several pseudonym-lifetime
/// ratios. Returns one sweep per ratio, in input order (`None` = `r = ∞`).
///
/// Path lengths are skipped (Figure 7 reports connectivity only).
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn lifetime_sweep(
    trust: &Graph,
    params: &ExperimentParams,
    alphas: &[f64],
    ratios: &[Option<f64>],
) -> Result<RatioSweeps, CoreError> {
    let _span = veil_obs::global().span_with("experiment.lifetime_sweep", || {
        format!("points={}", alphas.len() * ratios.len())
    });
    // Flatten the (ratio × α) grid into one job list so the thread pool
    // stays busy even when one axis is short, then regroup by ratio. Jobs
    // are ordered ratio-major, exactly like the nested serial loops, so
    // the regrouped output is identical to running each sweep in turn.
    let jobs: Vec<(Option<f64>, f64)> = ratios
        .iter()
        .flat_map(|&ratio| alphas.iter().map(move |&alpha| (ratio, alpha)))
        .collect();
    let points = veil_par::map(&jobs, params.overlay.parallelism, |&(ratio, alpha)| {
        let p = ExperimentParams {
            lifetime_ratio: ratio,
            ..params.clone()
        };
        availability_point(trust, &p, alpha, false)
    });
    let mut out = Vec::with_capacity(ratios.len());
    let mut it = points.into_iter();
    for &ratio in ratios {
        let sweep: Result<Vec<SweepPoint>, CoreError> = it.by_ref().take(alphas.len()).collect();
        out.push((ratio, sweep?));
    }
    Ok(out)
}

/// Connectivity-over-time series (Figure 8): the trust-graph baseline plus
/// one overlay series per lifetime ratio, sampled every `interval` periods
/// until `horizon`.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn connectivity_over_time(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
    ratios: &[Option<f64>],
    horizon: f64,
    interval: f64,
) -> Result<ConvergenceSeries, CoreError> {
    let _span = veil_obs::global().span_with("experiment.connectivity_over_time", || {
        format!("ratios={} horizon={horizon}", ratios.len())
    });
    // One independent simulation per ratio; the trust-graph baseline is
    // overlay-independent, so it is taken from the first ratio's run just
    // like the serial loop did.
    let runs = veil_par::map(ratios, params.overlay.parallelism, |&ratio| {
        let p = ExperimentParams {
            lifetime_ratio: ratio,
            ..params.clone()
        };
        let mut sim = build_simulation(trust.clone(), &p, alpha)?;
        let mut collector = Collector::new(interval);
        collector.run(&mut sim, horizon);
        Ok::<_, CoreError>((
            ratio,
            collector.connectivity_trust().clone(),
            collector.connectivity().clone(),
        ))
    });
    let mut overlays = Vec::with_capacity(ratios.len());
    let mut trust_series = TimeSeries::new();
    for (i, run) in runs.into_iter().enumerate() {
        let (ratio, trust_ts, overlay_ts) = run?;
        if i == 0 {
            trust_series = trust_ts;
        }
        overlays.push((ratio, overlay_ts));
    }
    Ok(ConvergenceSeries {
        alpha,
        trust: trust_series,
        overlays,
    })
}

/// Link-replacement-rate series (Figure 9): one series per lifetime ratio.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn replacement_rate_over_time(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
    ratios: &[Option<f64>],
    horizon: f64,
    interval: f64,
) -> Result<Vec<(Option<f64>, TimeSeries)>, CoreError> {
    let _span = veil_obs::global().span_with("experiment.replacement_rate_over_time", || {
        format!("ratios={} horizon={horizon}", ratios.len())
    });
    veil_par::map(ratios, params.overlay.parallelism, |&ratio| {
        let p = ExperimentParams {
            lifetime_ratio: ratio,
            ..params.clone()
        };
        let mut sim = build_simulation(trust.clone(), &p, alpha)?;
        let mut collector = Collector::new(interval);
        collector.run(&mut sim, horizon);
        Ok((ratio, collector.replacement_rate().clone()))
    })
    .into_iter()
    .collect()
}

/// Output of [`connectivity_over_time`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceSeries {
    /// Availability the experiment ran at.
    pub alpha: f64,
    /// Trust-graph connectivity over time.
    pub trust: TimeSeries,
    /// Overlay connectivity over time, one series per lifetime ratio.
    pub overlays: Vec<(Option<f64>, TimeSeries)>,
}

/// Convenience wrapper: flood a broadcast from the highest-degree online
/// node of a steady-state overlay and report the coverage — the end-to-end
/// "does dissemination actually work" check used by examples and tests.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn steady_state_broadcast(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
) -> Result<crate::dissemination::BroadcastReport, CoreError> {
    let mut sim = build_simulation(trust.clone(), params, alpha)?;
    sim.run_until(params.warmup);
    let online = sim.online_mask();
    let source = (0..sim.node_count())
        .filter(|&v| online[v])
        .max_by_key(|&v| trust.degree(v))
        .expect("at least one node online at steady state");
    Ok(crate::dissemination::flood_current_overlay(&sim, source))
}

/// Runs [`steady_state_broadcast`] for several availabilities in parallel,
/// returning the reports in input order.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn steady_state_broadcast_multi(
    trust: &Graph,
    params: &ExperimentParams,
    alphas: &[f64],
) -> Result<Vec<crate::dissemination::BroadcastReport>, CoreError> {
    let _span = veil_obs::global().span_with("experiment.steady_state_broadcast_multi", || {
        format!("points={}", alphas.len())
    });
    veil_par::map(alphas, params.overlay.parallelism, |&alpha| {
        steady_state_broadcast(trust, params, alpha)
    })
    .into_iter()
    .collect()
}

/// One row of the fault-degradation sweeps ([`degradation_loss_sweep`],
/// [`degradation_latency_sweep`], [`degradation_partition_sweep`]): overlay
/// quality and maintenance effort as a function of one fault parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationPoint {
    /// The swept fault parameter: per-message loss probability, mean
    /// latency in shuffle periods, or partitioned node fraction, depending
    /// on the sweep.
    pub x: f64,
    /// Fraction of disconnected online nodes in the maintained overlay,
    /// averaged over the steady-state snapshots.
    pub overlay_disconnected: f64,
    /// Broadcast coverage — the fraction of online nodes reached by a flood
    /// from the highest-degree online node — averaged over the snapshots
    /// (`0` contribution for snapshots with no node online).
    pub coverage: f64,
    /// Normalized average path length of the final snapshot.
    pub overlay_npl: f64,
    /// Pseudonym-link replacements per node per shuffle period over the
    /// measurement window.
    pub replacement_rate: f64,
    /// Total shuffle messages lost in transit since the start of the run.
    pub dropped_requests: u64,
    /// Total shuffle exchanges abandoned after retry exhaustion.
    pub shuffle_failures: u64,
    /// Total timed-out shuffle requests that were retransmitted.
    pub shuffle_retries: u64,
}

/// One point of the degradation sweeps: run the overlay at availability
/// `alpha` over the given link layer, then measure connectivity, broadcast
/// coverage, path length and maintenance effort at steady state (the same
/// snapshot-averaging discipline as [`availability_sweep`]).
///
/// # Errors
///
/// Propagates simulation construction errors (including fault-model
/// validation failures surfaced through [`OverlayConfig::validate`]).
pub fn degradation_point(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
    x: f64,
    link: LinkLayerConfig,
) -> Result<DegradationPoint, CoreError> {
    let _span = veil_obs::global().span_with("experiment.degradation_point", || format!("x={x}"));
    const SNAPSHOTS: usize = 5;
    const SNAPSHOT_SPACING: f64 = 10.0;
    let mut p = params.clone();
    p.overlay.link = link;
    // Structural fault effects (partitions, silent crashes) are invisible
    // to the overlay *graph* — trusted links exist regardless of whether
    // messages get through — so measurement filters the overlay down to
    // what the fault layer actually lets through at snapshot time.
    let fault = match &p.overlay.link {
        LinkLayerConfig::Faulty(fc) if !fc.is_trivial() => Some(fc.clone()),
        _ => None,
    };
    let mut sim = build_simulation(trust.clone(), &p, alpha)?;
    sim.run_until(p.warmup);
    let removals_start = sim.total_link_removals();
    let mut disconnected = 0.0;
    let mut coverage = 0.0;
    let mut final_view = None;
    for snap in 0..SNAPSHOTS {
        if snap > 0 {
            sim.run_until(p.warmup + snap as f64 * SNAPSHOT_SPACING);
        }
        let (overlay, online) = fault_adjusted_view(&sim, fault.as_ref());
        disconnected += gm::fraction_disconnected(&overlay, &online);
        let source = (0..sim.node_count())
            .filter(|&v| online[v])
            .max_by_key(|&v| trust.degree(v));
        if let Some(source) = source {
            coverage += crate::dissemination::flood(&overlay, &online, source).coverage();
        }
        final_view = Some((overlay, online));
    }
    let (overlay, online) = final_view.expect("at least one snapshot taken");
    let snap = crate::metrics::snapshot(&sim);
    let window = (SNAPSHOTS - 1) as f64 * SNAPSHOT_SPACING;
    let replaced = (snap.cumulative_link_removals - removals_start) as f64;
    Ok(DegradationPoint {
        x,
        overlay_disconnected: disconnected / SNAPSHOTS as f64,
        coverage: coverage / SNAPSHOTS as f64,
        overlay_npl: gm::normalized_avg_path_length(&overlay, Some(&online)),
        replacement_rate: replaced / window / sim.node_count() as f64,
        dropped_requests: snap.dropped_requests,
        shuffle_failures: snap.shuffle_failures,
        shuffle_retries: snap.shuffle_retries,
    })
}

/// The overlay as the fault layer lets it operate right now: crashed nodes
/// count as offline and edges crossing an active partition are removed.
/// With no fault model this is just the overlay graph and online mask.
fn fault_adjusted_view(sim: &Simulation, fault: Option<&FaultConfig>) -> (Graph, Vec<bool>) {
    let overlay = sim.overlay_graph();
    let mut online = sim.online_mask();
    let Some(fc) = fault else {
        return (overlay, online);
    };
    let now = sim.now().as_f64();
    for (v, slot) in online.iter_mut().enumerate() {
        if fc.crashed(v as u32, now) {
            *slot = false;
        }
    }
    let mut filtered = Graph::new(overlay.node_count());
    for (a, b) in overlay.edges() {
        if !fc.partitioned(a as u32, b as u32, now) {
            filtered
                .add_edge(a, b)
                .expect("edge endpoints come from a valid graph");
        }
    }
    (filtered, online)
}

/// Degradation versus per-message loss probability: one
/// [`DegradationPoint`] per entry of `losses`, in input order. Loss `0`
/// routes through the ideal-equivalent trivial fault model, so the first
/// point of a sweep starting at `0.0` doubles as the fault-free baseline.
///
/// # Errors
///
/// Propagates simulation construction errors.
///
/// # Panics
///
/// Panics (inside the worker) if a loss value is outside `[0, 1]`.
pub fn degradation_loss_sweep(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
    losses: &[f64],
) -> Result<Vec<DegradationPoint>, CoreError> {
    let _span = veil_obs::global().span_with("experiment.degradation_loss_sweep", || {
        format!("points={}", losses.len())
    });
    veil_par::map(losses, params.overlay.parallelism, |&loss| {
        let link = LinkLayerConfig::Faulty(FaultConfig::with_loss(loss));
        degradation_point(trust, params, alpha, loss, link)
    })
    .into_iter()
    .collect()
}

/// Degradation versus mean one-way latency (exponentially distributed):
/// one [`DegradationPoint`] per entry of `means`, in input order. A mean
/// of `0` substitutes the degenerate constant-zero distribution, i.e. the
/// instant-delivery baseline.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn degradation_latency_sweep(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
    means: &[f64],
) -> Result<Vec<DegradationPoint>, CoreError> {
    let _span = veil_obs::global().span_with("experiment.degradation_latency_sweep", || {
        format!("points={}", means.len())
    });
    veil_par::map(means, params.overlay.parallelism, |&mean| {
        let latency = if mean > 0.0 {
            LatencyDist::Exponential { mean }
        } else {
            LatencyDist::Constant { value: 0.0 }
        };
        let fault = FaultConfig {
            latency,
            ..FaultConfig::none()
        };
        degradation_point(trust, params, alpha, mean, LinkLayerConfig::Faulty(fault))
    })
    .into_iter()
    .collect()
}

/// Degradation versus partition size: for each fraction, the nodes
/// `0..fraction·n` are permanently cut off from the rest (a network
/// partition active for the whole run). One [`DegradationPoint`] per
/// fraction, in input order; fraction `0` is the unpartitioned baseline.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn degradation_partition_sweep(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
    fractions: &[f64],
) -> Result<Vec<DegradationPoint>, CoreError> {
    let _span = veil_obs::global().span_with("experiment.degradation_partition_sweep", || {
        format!("points={}", fractions.len())
    });
    let n = trust.node_count();
    veil_par::map(fractions, params.overlay.parallelism, |&frac| {
        let boundary = (frac * n as f64).round() as u32;
        let fault = if boundary == 0 {
            FaultConfig::none()
        } else {
            FaultConfig {
                episodes: vec![FaultEpisode {
                    start: 0.0,
                    end: f64::INFINITY,
                    effect: EpisodeEffect::Partition { boundary },
                }],
                ..FaultConfig::none()
            }
        };
        degradation_point(trust, params, alpha, frac, LinkLayerConfig::Faulty(fault))
    })
    .into_iter()
    .collect()
}

/// The scripted outage the self-healing recovery sweep measures against.
///
/// The geometry matters: trusted links are node-addressed and never
/// expire, so [`Simulation::overlay_graph`] connectivity and per-round
/// shuffle throughput snap back the instant a blackout lifts, whatever the
/// outage did. What a correlated outage *does* lastingly damage is the
/// pseudonym overlay — the anonymous indirection layer the paper's privacy
/// argument rests on ([`Simulation::pseudonym_graph`]). The default
/// geometry is chosen so that damage is severe: the blackout outlasts the
/// default 90-period pseudonym lifetime, so every pseudonym a victim held
/// (and every pseudonym anyone held *of* a victim) expires while it is
/// dark, and the victims return needing a full re-bootstrap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryScenario {
    /// Fraction of the population taken dark (from node 0 up).
    pub fraction: f64,
    /// Blackout duration in shuffle periods.
    pub duration: f64,
    /// How long past the blackout's end to keep measuring before declaring
    /// the run unrecovered.
    pub horizon: f64,
    /// How many one-period snapshots before the blackout form the
    /// pre-blackout coverage baseline.
    pub baseline_snapshots: usize,
}

impl Default for RecoveryScenario {
    fn default() -> Self {
        Self {
            fraction: 0.8,
            duration: 100.0,
            horizon: 60.0,
            baseline_snapshots: 10,
        }
    }
}

/// The recovery threshold: recovered once pseudonym-overlay coverage
/// regains this fraction of its pre-blackout mean (the same 90% knee as
/// the trace analytics' blackout recovery metric in [`veil_obs::replay`]).
pub(crate) const RECOVERY_FRACTION: f64 = 0.9;

/// One row of the self-healing recovery sweep
/// ([`degradation_recovery_sweep`]): how fast the pseudonym overlay
/// recovers from a correlated blackout, with the remediation engine on or
/// off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPoint {
    /// Master seed of this run.
    pub seed: u64,
    /// Whether the remediation engine was on for this run.
    pub healing: bool,
    /// Periods after the blackout lifted until pseudonym-overlay flood
    /// coverage regained 90% of its pre-blackout mean; `None` if the run
    /// ended without recovering.
    pub time_to_recover: Option<f64>,
    /// Health alerts raised over the whole run.
    pub health_alerts: u64,
    /// Remediation reactions applied (always 0 with healing off).
    pub remedy_actions: u64,
}

/// Time-to-recover from a correlated blackout, healing on versus healing
/// off, at several seeds: for each seed the sweep runs the identical
/// scenario twice — `loss` per-message drop probability plus the default
/// [`RecoveryScenario`] blackout right after warm-up — once with
/// [`RemedyConfig`] disabled and once with every reaction enabled.
/// Recovery is measured on the pseudonym overlay (see
/// [`RecoveryScenario`] for why): periods after the blackout lifts until
/// flood coverage over pseudonym links regains 90% of its pre-blackout
/// mean. Both arms share the identical monitor configuration, so the only
/// difference between them is whether alerts trigger reactions.
///
/// Returns two [`RecoveryPoint`]s per seed, healing-off first.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn degradation_recovery_sweep(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
    loss: f64,
    seeds: &[u64],
) -> Result<Vec<RecoveryPoint>, CoreError> {
    let _span = veil_obs::global().span_with("experiment.degradation_recovery_sweep", || {
        format!("seeds={}", seeds.len())
    });
    let scenario = RecoveryScenario::default();
    let arms: Vec<(u64, bool)> = seeds
        .iter()
        .flat_map(|&seed| [(seed, false), (seed, true)])
        .collect();
    veil_par::map(&arms, params.overlay.parallelism, |&(seed, healing)| {
        recovery_point(trust, params, alpha, loss, seed, healing, &scenario)
    })
    .into_iter()
    .collect()
}

/// One arm of the recovery sweep: run the blackout scenario and measure
/// pseudonym-overlay coverage period by period.
///
/// The health monitor runs with a 1-period window (reaction latency is the
/// whole point of the measurement) and the eviction-storm threshold lifted
/// out of reach: at 20% message loss, retry-exhausted evictions are
/// routine, so a storm threshold calibrated for clean links would fire
/// every window and the backoff reaction would suppress healthy gossip
/// (measurably slowing recovery — the backoff path is exercised by unit
/// and integration tests instead). Both arms share this monitor; the
/// healing arm differs only in reacting to its alerts.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn recovery_point(
    trust: &Graph,
    params: &ExperimentParams,
    alpha: f64,
    loss: f64,
    seed: u64,
    healing: bool,
    scenario: &RecoveryScenario,
) -> Result<RecoveryPoint, CoreError> {
    let n = trust.node_count();
    let count = (n as f64 * scenario.fraction).round() as u32;
    let start = params.warmup;
    let end = start + scenario.duration;
    let mut p = params.clone();
    p.seed = seed;
    p.overlay.link = LinkLayerConfig::Faulty(FaultConfig {
        drop_probability: loss,
        episodes: vec![FaultEpisode {
            start,
            end,
            effect: EpisodeEffect::Blackout { first: 0, count },
        }],
        ..FaultConfig::none()
    });
    p.overlay.health.enabled = true;
    p.overlay.health.window = 1.0;
    p.overlay.health.eviction_storm_count = u64::MAX;
    p.overlay.remedy = if healing {
        RemedyConfig::all_on()
    } else {
        RemedyConfig::default()
    };
    let mut sim = build_simulation(trust.clone(), &p, alpha)?;

    // Pre-blackout baseline: mean pseudonym-overlay coverage over the last
    // `baseline_snapshots` periods of warm-up (the episode fires strictly
    // after the `t == start` snapshot is taken).
    let snaps = scenario.baseline_snapshots.max(1);
    let mut baseline = 0.0;
    for i in (0..snaps).rev() {
        sim.run_until(start - i as f64);
        baseline += pseudonym_coverage(&sim, trust);
    }
    let baseline = baseline / snaps as f64;
    let target = RECOVERY_FRACTION * baseline;

    // Run through the blackout, then probe coverage once per period.
    sim.run_until(end);
    let mut time_to_recover = None;
    let mut t = end;
    while t < end + scenario.horizon {
        t += 1.0;
        sim.run_until(t);
        if pseudonym_coverage(&sim, trust) >= target {
            time_to_recover = Some(t - end);
            break;
        }
    }
    Ok(RecoveryPoint {
        seed,
        healing,
        time_to_recover,
        health_alerts: sim.health_alerts().unwrap_or(0),
        remedy_actions: sim.remedy_counts().map_or(0, |c| c.total()),
    })
}

/// Flood coverage over the pseudonym overlay from the highest-trust-degree
/// online node: the fraction of online nodes reachable through pseudonym
/// links alone. `0` when nobody is online.
pub(crate) fn pseudonym_coverage(sim: &Simulation, trust: &Graph) -> f64 {
    let online = sim.online_mask();
    let source = (0..sim.node_count())
        .filter(|&v| online[v])
        .max_by_key(|&v| trust.degree(v));
    match source {
        Some(s) => crate::dissemination::flood(&sim.pseudonym_graph(), &online, s).coverage(),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params(seed: u64) -> ExperimentParams {
        ExperimentParams {
            nodes: 60,
            warmup: 60.0,
            seed,
            source_multiplier: 5,
            ..ExperimentParams::default()
        }
        .scaled_down(8)
    }

    #[test]
    fn default_params_match_table_one() {
        let p = ExperimentParams::default();
        assert_eq!(p.nodes, 1000);
        assert_eq!(p.trust_f, 0.5);
        assert_eq!(p.mean_offline, 30.0);
        assert_eq!(p.lifetime_ratio, Some(3.0));
        assert_eq!(p.lifetime(), Some(90.0));
    }

    #[test]
    fn trust_graph_has_requested_size_and_is_connected() {
        let p = tiny_params(1);
        let g = build_trust_graph(&p).unwrap();
        assert_eq!(g.node_count(), p.nodes);
        assert_eq!(gm::component_count(&g), 1);
    }

    #[test]
    fn degree_matched_source_tracks_paper_density() {
        // The source graph itself (before f-sampling) should land near the
        // requested average degree; sampling then thins it.
        let p = ExperimentParams {
            nodes: 100,
            warmup: 60.0,
            seed: 9,
            source_multiplier: 10,
            source: SourceModel::DegreeMatched {
                avg_degree: 11.3,
                triad: 0.6,
            },
            ..ExperimentParams::default()
        };
        let dense = build_trust_graph_with_f(&p, 1.0).unwrap();
        let sparse = build_trust_graph_with_f(&p, 0.5).unwrap();
        assert_eq!(dense.node_count(), 100);
        assert!(
            dense.average_degree() > sparse.average_degree(),
            "f = 1.0 must stay denser: {:.2} vs {:.2}",
            dense.average_degree(),
            sparse.average_degree()
        );
    }

    #[test]
    fn f_one_gives_denser_sample_than_f_half() {
        // At test scale a single 20-node sample is too noisy to pin the
        // ordering per seed, so check the density contrast in aggregate,
        // on the default (unscaled) source model where `f` bites.
        let mut dense_total = 0usize;
        let mut sparse_total = 0usize;
        for seed in 1..=4 {
            let p = ExperimentParams {
                nodes: 60,
                warmup: 60.0,
                seed,
                source_multiplier: 5,
                ..ExperimentParams::default()
            };
            dense_total += build_trust_graph_with_f(&p, 1.0).unwrap().edge_count();
            sparse_total += build_trust_graph_with_f(&p, 0.5).unwrap().edge_count();
        }
        assert!(
            dense_total > sparse_total,
            "f = 1.0 samples should be denser in aggregate: {dense_total} vs {sparse_total}"
        );
    }

    #[test]
    fn availability_sweep_shapes() {
        let p = tiny_params(3);
        let trust = build_trust_graph(&p).unwrap();
        let points = availability_sweep(&trust, &p, &[0.25, 1.0], false).unwrap();
        assert_eq!(points.len(), 2);
        let low = &points[0];
        let full = &points[1];
        // At full availability everything is connected.
        assert_eq!(full.trust_disconnected, 0.0);
        assert_eq!(full.overlay_disconnected, 0.0);
        // Under heavy churn the overlay must beat the bare trust graph.
        assert!(
            low.overlay_disconnected <= low.trust_disconnected,
            "overlay {} vs trust {}",
            low.overlay_disconnected,
            low.trust_disconnected
        );
    }

    #[test]
    fn sweep_with_path_lengths() {
        let p = tiny_params(4);
        let trust = build_trust_graph(&p).unwrap();
        let points = availability_sweep(&trust, &p, &[1.0], true).unwrap();
        let pt = &points[0];
        assert!(pt.overlay_npl > 0.0);
        assert!(
            pt.overlay_npl < pt.trust_npl,
            "overlay npl {} should undercut trust npl {}",
            pt.overlay_npl,
            pt.trust_npl
        );
    }

    #[test]
    fn degree_distributions_cover_online_nodes() {
        let p = tiny_params(5);
        let trust = build_trust_graph(&p).unwrap();
        let d = degree_distributions(&trust, &p, 0.5).unwrap();
        assert_eq!(d.trust.total(), d.overlay.total());
        assert_eq!(d.overlay.total(), d.random.total());
        // Overlay mean degree should exceed the trust graph's.
        assert!(d.overlay.mean() > d.trust.mean());
    }

    #[test]
    fn message_load_ranks_by_trust_degree() {
        let p = tiny_params(6);
        let trust = build_trust_graph(&p).unwrap();
        let rows = message_load(&trust, &p, 1.0, 20.0, 5.0).unwrap();
        assert_eq!(rows.len(), p.nodes);
        for w in rows.windows(2) {
            assert!(w[0].trust_degree >= w[1].trust_degree);
        }
        assert_eq!(rows[0].rank, 1);
        let mean: f64 = rows.iter().map(|r| r.messages_per_period).sum::<f64>() / rows.len() as f64;
        assert!((mean - 2.0).abs() < 0.4, "mean message rate {mean}");
    }

    #[test]
    fn lifetime_sweep_orders_ratios() {
        let p = tiny_params(7);
        let trust = build_trust_graph(&p).unwrap();
        let sweeps = lifetime_sweep(&trust, &p, &[0.5], &[Some(1.0), None]).unwrap();
        assert_eq!(sweeps.len(), 2);
        assert_eq!(sweeps[0].0, Some(1.0));
        assert_eq!(sweeps[1].0, None);
    }

    #[test]
    fn convergence_series_has_all_ratios() {
        let p = tiny_params(8);
        let trust = build_trust_graph(&p).unwrap();
        let series =
            connectivity_over_time(&trust, &p, 0.5, &[Some(3.0), None], 30.0, 10.0).unwrap();
        assert_eq!(series.overlays.len(), 2);
        assert_eq!(series.trust.len(), 4); // t = 0, 10, 20, 30
        for (_, ts) in &series.overlays {
            assert_eq!(ts.len(), 4);
        }
    }

    #[test]
    fn replacement_series_zero_for_infinite_lifetime_at_steady_state() {
        let p = tiny_params(9);
        let trust = build_trust_graph(&p).unwrap();
        let series = replacement_rate_over_time(&trust, &p, 1.0, &[None], 120.0, 10.0).unwrap();
        let (_, ts) = &series[0];
        let tail = ts.tail_mean(3).unwrap();
        assert!(tail < 1.0, "late replacement rate {tail} should be ~0");
    }

    #[test]
    fn broadcast_reaches_most_online_nodes() {
        let p = tiny_params(10);
        let trust = build_trust_graph(&p).unwrap();
        let report = steady_state_broadcast(&trust, &p, 0.5).unwrap();
        assert!(
            report.coverage() > 0.8,
            "coverage {} too low",
            report.coverage()
        );
    }

    #[test]
    fn scaled_down_keeps_validity() {
        let p = ExperimentParams::default().scaled_down(10);
        p.overlay.validate().unwrap();
        assert!(p.nodes >= 20);
    }

    #[test]
    fn churn_edge_cases_survive_full_sweep() {
        // Near-zero availability (nodes almost always offline) and
        // always-on nodes are the churn model's extremes; a full sweep —
        // path lengths included — must complete without panicking even
        // when snapshots catch zero or one node online.
        let p = tiny_params(11);
        let trust = build_trust_graph(&p).unwrap();
        let points = availability_sweep(&trust, &p, &[0.02, 1.0], true).unwrap();
        assert_eq!(points.len(), 2);
        let (trickle, full) = (&points[0], &points[1]);
        assert_eq!(full.overlay_disconnected, 0.0);
        assert!(full.overlay_npl > 0.0);
        assert!(
            (0.0..=1.0).contains(&trickle.overlay_disconnected),
            "disconnection fraction {} out of range",
            trickle.overlay_disconnected
        );
        assert!(trickle.overlay_npl.is_finite());
    }

    #[test]
    fn churn_edge_cases_survive_degradation_sweep() {
        // The fault path must tolerate the same churn extremes.
        let p = tiny_params(12);
        let trust = build_trust_graph(&p).unwrap();
        for alpha in [0.02, 1.0] {
            let pts = degradation_loss_sweep(&trust, &p, alpha, &[0.2]).unwrap();
            assert!((0.0..=1.0).contains(&pts[0].coverage));
        }
    }

    #[test]
    fn loss_sweep_baseline_matches_ideal_and_degrades() {
        let p = tiny_params(13);
        let trust = build_trust_graph(&p).unwrap();
        let pts = degradation_loss_sweep(&trust, &p, 0.8, &[0.0, 0.3]).unwrap();
        assert_eq!(pts.len(), 2);
        let (clean, lossy) = (&pts[0], &pts[1]);
        // The zero-loss point runs the ideal-equivalent path: no retries,
        // no failures, and healthy coverage.
        assert_eq!(clean.shuffle_retries, 0);
        assert_eq!(clean.shuffle_failures, 0);
        assert!(clean.coverage > 0.8, "baseline coverage {}", clean.coverage);
        // Loss forces visible recovery work.
        assert!(lossy.dropped_requests > 0);
        assert!(lossy.shuffle_retries > 0);
        assert!((0.0..=1.0).contains(&lossy.coverage));
    }

    #[test]
    fn latency_sweep_times_out_under_slow_links() {
        let p = tiny_params(14);
        let trust = build_trust_graph(&p).unwrap();
        // Mean latency far beyond the shuffle timeout: most exchanges
        // should need retries, yet the run completes.
        let pts = degradation_latency_sweep(&trust, &p, 1.0, &[0.0, 10.0]).unwrap();
        assert_eq!(pts[0].shuffle_retries, 0);
        assert!(pts[1].shuffle_retries > 0, "slow links must time out");
    }

    #[test]
    fn partition_sweep_disconnects_cut_off_region() {
        let p = tiny_params(15);
        let trust = build_trust_graph(&p).unwrap();
        let pts = degradation_partition_sweep(&trust, &p, 1.0, &[0.0, 0.4]).unwrap();
        let (whole, split) = (&pts[0], &pts[1]);
        assert_eq!(whole.overlay_disconnected, 0.0);
        // With 40% of nodes cut off, a broadcast from the majority side
        // cannot reach everyone.
        assert!(
            split.coverage < whole.coverage,
            "partition should reduce coverage: {} vs {}",
            split.coverage,
            whole.coverage
        );
    }
}
