//! Online overlay health monitoring.
//!
//! A [`HealthMonitor`] watches the observability event stream of a running
//! [`crate::simulation::Simulation`] through rolling windows and raises
//! typed `HealthAlert` trace events when a degradation detector crosses its
//! configured threshold ([`HealthConfig`]):
//!
//! * `shuffle_failure_burst` — failures / starts within a window;
//! * `eviction_storm` — Cyclon evictions per window;
//! * `pseudonym_expiry_stampede` — fraction of nodes purging expired
//!   pseudonyms in one window (the synchronized-expiry transient);
//! * `starved_nodes` — online nodes that have not completed a shuffle for
//!   a configured number of periods;
//! * `isolated_nodes` — online nodes with no *pseudonym* links. Trusted
//!   links are node-addressed and survive any outage, so a node can be
//!   perfectly reachable by its friends yet absent from the anonymous
//!   indirection layer the paper's privacy argument rests on — exactly the
//!   state a long blackout leaves its victims in, and exactly what the
//!   remediation engine's re-bootstrap repairs;
//! * `indegree_skew` — max/mean overlay degree over online nodes (hub
//!   formation).
//!
//! # Alerts are events — and decisions
//!
//! The monitor is strictly read-only with respect to the simulation: it
//! never draws randomness and never touches protocol state. Each
//! [`HealthMonitor::rotate`] returns the window's [`WindowAlert`]s (with
//! the implicated node set) so the remediation engine
//! ([`crate::remedy`]) can act on them; as a side effect it also pushes
//! `HealthAlert` trace events and `health.*` gauges into the recorder it
//! was built with. The recorder is *optional* plumbing: a disabled
//! recorder silently swallows the events while alert counting and the
//! returned decisions stay identical, so untraced runs monitor (and heal)
//! exactly like traced ones. With remediation off this keeps the
//! `off == full == ring` byte-identity of `tests/obs_equivalence.rs`
//! intact whether monitoring is enabled or not.
//!
//! # Determinism
//!
//! Window boundaries lie on the fixed grid `k * window`, so detector
//! decisions depend only on the event stream, not on when the simulation
//! happens to poll. All state lives in plain vectors — no hash-map
//! iteration order can leak into the alert sequence.

use crate::config::HealthConfig;
use veil_obs::{EventKind as Obs, Recorder};

/// Severity threshold: a value at least this multiple of its threshold is
/// reported as `critical` rather than `warning`.
const CRITICAL_FACTOR: f64 = 2.0;

/// One detector firing, as returned by [`HealthMonitor::rotate`].
///
/// This is the monitor's *decision* record — the same information as the
/// emitted `HealthAlert` trace event, plus the set of implicated nodes so a
/// consumer (the remediation engine) can target its reaction. Aggregate
/// detectors (`shuffle_failure_burst`, `eviction_storm`,
/// `pseudonym_expiry_stampede`) report an empty node set.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAlert {
    /// Window boundary the alert is stamped at.
    pub t: f64,
    /// Detector name, matching the trace event's `detector` field.
    pub detector: &'static str,
    /// Whether the value reached the critical multiple of its threshold.
    pub critical: bool,
    /// Observed value.
    pub value: f64,
    /// Configured threshold (0.0 for the always-critical isolation check).
    pub threshold: f64,
    /// Nodes the detector implicates, in ascending id order; empty for
    /// population-aggregate detectors.
    pub nodes: Vec<u32>,
}

/// Rolling-window health detector bank over the simulation event stream.
///
/// Construct with [`HealthMonitor::maybe_new`]; feed every emitted event
/// through [`HealthMonitor::observe`]; let the simulation call
/// [`HealthMonitor::due`] / [`HealthMonitor::rotate`] when event time
/// crosses a window boundary.
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    recorder: Recorder,
    /// Start of the currently accumulating window (on the `k * window`
    /// grid).
    window_start: f64,
    // Counts accumulated over the current window.
    starts: u64,
    completes: u64,
    failures: u64,
    evictions: u64,
    /// Number of `PseudonymsExpired` purges seen this window (one per node
    /// per purge, which is what the stampede detector wants).
    expiry_purges: u64,
    /// Per node: time of the last completed shuffle, or of coming online —
    /// a rejoining node gets a fresh grace period before counting as
    /// starved.
    last_progress: Vec<f64>,
    alerts_emitted: u64,
}

impl HealthMonitor {
    /// Builds a monitor when `cfg.enabled`; `None` otherwise. The recorder
    /// may be disabled — alerts are still detected, counted, and returned
    /// from [`HealthMonitor::rotate`]; only the trace events and gauges are
    /// dropped. `now` seeds the window grid and the per-node starvation
    /// clocks.
    pub fn maybe_new(
        cfg: &HealthConfig,
        recorder: &Recorder,
        nodes: usize,
        now: f64,
    ) -> Option<Self> {
        if !cfg.enabled {
            return None;
        }
        Some(Self {
            cfg: cfg.clone(),
            recorder: recorder.clone(),
            window_start: (now / cfg.window).floor() * cfg.window,
            starts: 0,
            completes: 0,
            failures: 0,
            evictions: 0,
            expiry_purges: 0,
            last_progress: vec![now; nodes],
            alerts_emitted: 0,
        })
    }

    /// Total `HealthAlert` events emitted so far.
    pub fn alerts_emitted(&self) -> u64 {
        self.alerts_emitted
    }

    /// Feeds one emitted event into the window counters.
    pub fn observe(&mut self, t: f64, node: Option<u32>, kind: &Obs) {
        match kind {
            Obs::ShuffleStart { .. } => self.starts += 1,
            Obs::ShuffleComplete { .. } => {
                self.completes += 1;
                if let Some(v) = node {
                    if let Some(slot) = self.last_progress.get_mut(v as usize) {
                        *slot = t;
                    }
                }
            }
            Obs::ShuffleFailure { .. } => self.failures += 1,
            Obs::PeerEvicted { .. } => self.evictions += 1,
            Obs::PseudonymsExpired { .. } => self.expiry_purges += 1,
            // Coming online (or back from a blackout) restarts the
            // starvation clock; the node cannot have completed a shuffle
            // while away.
            Obs::NodeOnline | Obs::BlackoutEnd => {
                if let Some(v) = node {
                    if let Some(slot) = self.last_progress.get_mut(v as usize) {
                        *slot = t;
                    }
                }
            }
            _ => {}
        }
    }

    /// Whether event time `now` has crossed the current window's end.
    pub fn due(&self, now: f64) -> bool {
        now >= self.window_start + self.cfg.window
    }

    /// Closes the elapsed window(s): runs every detector against the
    /// accumulated counts and the caller-supplied topology view, emits
    /// `HealthAlert` events stamped at the window boundary, refreshes the
    /// `health.*` gauges, resets the counters, and returns the window's
    /// alerts (with implicated nodes) for the remediation engine.
    ///
    /// `online[v]` / `degrees[v]` describe the current node states and
    /// total overlay degree (trusted + pseudonym links) per node;
    /// `pseudonym_degrees[v]` counts the pseudonym links alone, which is
    /// what the isolation detector watches (see the module docs for why
    /// trusted links don't count).
    pub fn rotate(
        &mut self,
        now: f64,
        online: &[bool],
        degrees: &[usize],
        pseudonym_degrees: &[usize],
    ) -> Vec<WindowAlert> {
        let w = self.cfg.window;
        let mut fired = Vec::new();
        // Jump straight to the grid point at or below `now`: an idle gap
        // spanning several windows is closed as one evaluation instead of
        // replaying empty windows one by one.
        let boundary = (now / w).floor() * w;
        if boundary <= self.window_start {
            return fired;
        }

        let online_count = online.iter().filter(|o| **o).count();
        let nodes = online.len().max(1);

        // 1. Shuffle failure burst.
        if self.starts >= self.cfg.failure_burst_min_starts {
            let rate = self.failures as f64 / self.starts as f64;
            self.gauge("health.shuffle_failure_rate", rate);
            if rate > self.cfg.failure_burst_rate {
                self.alert(
                    &mut fired,
                    boundary,
                    "shuffle_failure_burst",
                    rate,
                    self.cfg.failure_burst_rate,
                    Vec::new(),
                );
            }
        } else if self.starts > 0 {
            self.gauge(
                "health.shuffle_failure_rate",
                self.failures as f64 / self.starts as f64,
            );
        }

        // 2. Eviction storm.
        self.gauge("health.window_evictions", self.evictions as f64);
        if self.evictions > self.cfg.eviction_storm_count {
            self.alert(
                &mut fired,
                boundary,
                "eviction_storm",
                self.evictions as f64,
                self.cfg.eviction_storm_count as f64,
                Vec::new(),
            );
        }

        // 3. Pseudonym expiry stampede.
        let expiry_fraction = self.expiry_purges as f64 / nodes as f64;
        self.gauge("health.window_expiry_fraction", expiry_fraction);
        if expiry_fraction > self.cfg.expiry_stampede_fraction {
            self.alert(
                &mut fired,
                boundary,
                "pseudonym_expiry_stampede",
                expiry_fraction,
                self.cfg.expiry_stampede_fraction,
                Vec::new(),
            );
        }

        // 4. Starved nodes: online but no completed shuffle for the
        // configured number of periods.
        let starved: Vec<u32> = online
            .iter()
            .zip(self.last_progress.iter())
            .enumerate()
            .filter(|(_, (on, last))| **on && boundary - **last > self.cfg.starvation_periods)
            .map(|(v, _)| v as u32)
            .collect();
        self.gauge("health.starved_nodes", starved.len() as f64);
        if online_count > 0 {
            let starved_fraction = starved.len() as f64 / online_count as f64;
            if starved_fraction > self.cfg.starved_fraction {
                self.alert(
                    &mut fired,
                    boundary,
                    "starved_nodes",
                    starved_fraction,
                    self.cfg.starved_fraction,
                    starved,
                );
            }
        }

        // 5. Isolated nodes: online with no pseudonym links — invisible to
        // the anonymous overlay however healthy their trusted links are.
        // Always critical: every such node is deanonymized-or-unreachable
        // until re-bootstrapped.
        let isolated: Vec<u32> = online
            .iter()
            .zip(pseudonym_degrees.iter())
            .enumerate()
            .filter(|(_, (on, deg))| **on && **deg == 0)
            .map(|(v, _)| v as u32)
            .collect();
        self.gauge("health.isolated_nodes", isolated.len() as f64);
        if !isolated.is_empty() {
            let count = isolated.len() as f64;
            self.alert(&mut fired, boundary, "isolated_nodes", count, 0.0, isolated);
        }

        // 6. In-degree skew over online nodes.
        if online_count > 0 {
            let (sum, max) = online
                .iter()
                .zip(degrees.iter())
                .filter(|(on, _)| **on)
                .fold((0usize, 0usize), |(s, m), (_, d)| (s + d, m.max(*d)));
            let mean = sum as f64 / online_count as f64;
            if mean > 0.0 {
                let skew = max as f64 / mean;
                self.gauge("health.indegree_skew", skew);
                if skew > self.cfg.indegree_skew_ratio {
                    // Implicate every online node sitting above the
                    // configured ratio (at least the max-degree node).
                    let hubs: Vec<u32> = online
                        .iter()
                        .zip(degrees.iter())
                        .enumerate()
                        .filter(|(_, (on, deg))| {
                            **on && **deg as f64 > self.cfg.indegree_skew_ratio * mean
                        })
                        .map(|(v, _)| v as u32)
                        .collect();
                    self.alert(
                        &mut fired,
                        boundary,
                        "indegree_skew",
                        skew,
                        self.cfg.indegree_skew_ratio,
                        hubs,
                    );
                }
            }
        }

        self.gauge("health.alerts_emitted", self.alerts_emitted as f64);
        self.window_start = boundary;
        self.starts = 0;
        self.completes = 0;
        self.failures = 0;
        self.evictions = 0;
        self.expiry_purges = 0;
        fired
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.recorder.gauge(name, value);
    }

    fn alert(
        &mut self,
        fired: &mut Vec<WindowAlert>,
        t: f64,
        detector: &'static str,
        value: f64,
        threshold: f64,
        nodes: Vec<u32>,
    ) {
        self.alerts_emitted += 1;
        // Zero-threshold detectors (isolated nodes) have no meaningful
        // ratio; any firing is critical.
        let critical = threshold <= 0.0 || value >= CRITICAL_FACTOR * threshold;
        self.recorder.event(t, None, || Obs::HealthAlert {
            detector: detector.to_string(),
            severity: if critical { "critical" } else { "warning" }.to_string(),
            value,
            threshold,
        });
        fired.push(WindowAlert {
            t,
            detector,
            critical,
            value,
            threshold,
            nodes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_cfg() -> HealthConfig {
        HealthConfig {
            enabled: true,
            window: 5.0,
            failure_burst_min_starts: 4,
            ..HealthConfig::default()
        }
    }

    fn alerts(recorder: &Recorder) -> Vec<(f64, String, String)> {
        recorder
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                Obs::HealthAlert {
                    detector, severity, ..
                } => Some((e.t, detector, severity)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn only_the_config_gates_the_monitor() {
        let off = HealthConfig::default();
        assert!(HealthMonitor::maybe_new(&off, &Recorder::full(), 4, 0.0).is_none());
        let on = enabled_cfg();
        // A disabled recorder no longer disables monitoring: alerts are
        // decisions first, trace events second.
        assert!(HealthMonitor::maybe_new(&on, &Recorder::disabled(), 4, 0.0).is_some());
        assert!(HealthMonitor::maybe_new(&on, &Recorder::full(), 4, 0.0).is_some());
    }

    #[test]
    fn recorder_free_monitor_counts_and_returns_alerts() {
        let rec = Recorder::disabled();
        let mut hm = HealthMonitor::maybe_new(&enabled_cfg(), &rec, 4, 0.0).unwrap();
        // Starve everyone and isolate node 3; no recorder is attached, yet
        // the decisions must match a traced run exactly.
        let fired = hm.rotate(20.0, &[true; 4], &[2, 2, 2, 1], &[2, 2, 2, 0]);
        assert!(
            fired
                .iter()
                .any(|a| a.detector == "starved_nodes" && a.nodes == vec![0, 1, 2, 3]),
            "{fired:?}"
        );
        assert!(
            fired
                .iter()
                .any(|a| a.detector == "isolated_nodes" && a.critical && a.nodes == vec![3]),
            "{fired:?}"
        );
        assert_eq!(hm.alerts_emitted(), fired.len() as u64);
        assert!(rec.events().is_empty(), "disabled recorder stays empty");
    }

    #[test]
    fn failure_burst_fires_with_severity() {
        let rec = Recorder::full();
        let mut hm = HealthMonitor::maybe_new(&enabled_cfg(), &rec, 4, 0.0).unwrap();
        for i in 0..10 {
            hm.observe(
                0.5,
                Some(i % 4),
                &Obs::ShuffleStart {
                    target: 0,
                    trusted: false,
                },
            );
        }
        for _ in 0..6 {
            hm.observe(1.0, Some(0), &Obs::ShuffleFailure { exchange: 1 });
        }
        assert!(hm.due(5.0));
        hm.rotate(5.0, &[true; 4], &[3, 3, 3, 3], &[1, 1, 1, 1]);
        let fired = alerts(&rec);
        // 0.6 failure rate >= 2 * 0.25 threshold: critical, stamped at the
        // window boundary.
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].0, 5.0);
        assert_eq!(fired[0].1, "shuffle_failure_burst");
        assert_eq!(fired[0].2, "critical");
        assert_eq!(rec.metrics().counter("health.alerts"), 1);
        assert_eq!(hm.alerts_emitted(), 1);
    }

    #[test]
    fn quiet_window_fires_nothing() {
        let rec = Recorder::full();
        let mut hm = HealthMonitor::maybe_new(&enabled_cfg(), &rec, 4, 0.0).unwrap();
        for i in 0..8 {
            hm.observe(
                0.5,
                Some(i % 4),
                &Obs::ShuffleStart {
                    target: 0,
                    trusted: false,
                },
            );
            hm.observe(0.6, Some(i % 4), &Obs::ShuffleComplete { exchange: 0 });
        }
        hm.rotate(6.0, &[true; 4], &[3, 3, 3, 3], &[1, 1, 1, 1]);
        assert!(alerts(&rec).is_empty());
        assert_eq!(hm.alerts_emitted(), 0);
    }

    #[test]
    fn isolated_and_starved_nodes_detected() {
        let rec = Recorder::full();
        let mut hm = HealthMonitor::maybe_new(&enabled_cfg(), &rec, 4, 0.0).unwrap();
        // Nobody completes anything for 20 periods: everyone online is
        // starved (> 15 periods) and node 3 is isolated — its surviving
        // trusted link (total degree 1) does not rescue it, because
        // isolation is measured on pseudonym links alone.
        hm.rotate(
            20.0,
            &[true, true, true, true],
            &[2, 2, 2, 1],
            &[2, 2, 2, 0],
        );
        let a = alerts(&rec);
        assert!(a.iter().any(|(_, d, _)| d == "starved_nodes"), "{a:?}");
        assert!(
            a.iter()
                .any(|(_, d, s)| d == "isolated_nodes" && s == "critical"),
            "{a:?}"
        );
    }

    #[test]
    fn rejoining_node_gets_starvation_grace() {
        let rec = Recorder::full();
        let mut hm = HealthMonitor::maybe_new(&enabled_cfg(), &rec, 2, 0.0).unwrap();
        // Both nodes make progress late enough to stay fresh; one came
        // online even later.
        hm.observe(18.0, Some(0), &Obs::ShuffleComplete { exchange: 0 });
        hm.observe(19.0, Some(1), &Obs::NodeOnline);
        hm.rotate(20.0, &[true, true], &[1, 1], &[1, 1]);
        assert!(
            !alerts(&rec).iter().any(|(_, d, _)| d == "starved_nodes"),
            "progress and rejoin must reset the starvation clock"
        );
    }

    #[test]
    fn skew_detector_uses_online_mean() {
        let rec = Recorder::full();
        let cfg = HealthConfig {
            indegree_skew_ratio: 3.0,
            ..enabled_cfg()
        };
        let mut hm = HealthMonitor::maybe_new(&cfg, &rec, 4, 0.0).unwrap();
        hm.observe(1.0, Some(0), &Obs::ShuffleComplete { exchange: 0 });
        hm.observe(1.0, Some(1), &Obs::ShuffleComplete { exchange: 0 });
        hm.observe(1.0, Some(2), &Obs::ShuffleComplete { exchange: 0 });
        // The offline node's degree (100) must not enter the mean; with
        // only 3 online nodes max/mean is bounded below 3, so no alert.
        hm.rotate(5.0, &[true, true, true, false], &[30, 1, 1, 100], &[1; 4]);
        assert!(
            !alerts(&rec).iter().any(|(_, d, _)| d == "indegree_skew"),
            "3 online nodes bound the ratio below 3"
        );
        let rec2 = Recorder::full();
        let mut hm2 = HealthMonitor::maybe_new(&cfg, &rec2, 5, 0.0).unwrap();
        for v in 0..5 {
            hm2.observe(1.0, Some(v), &Obs::ShuffleComplete { exchange: 0 });
        }
        hm2.rotate(5.0, &[true; 5], &[80, 1, 1, 1, 1], &[1; 5]);
        assert!(
            alerts(&rec2).iter().any(|(_, d, _)| d == "indegree_skew"),
            "80 vs mean 16.8 is a 4.8x skew"
        );
    }

    #[test]
    fn eviction_storm_and_stampede() {
        let rec = Recorder::full();
        let cfg = HealthConfig {
            eviction_storm_count: 3,
            expiry_stampede_fraction: 0.5,
            ..enabled_cfg()
        };
        let mut hm = HealthMonitor::maybe_new(&cfg, &rec, 4, 0.0).unwrap();
        for v in 0..4 {
            hm.observe(1.0, Some(v), &Obs::PeerEvicted { pseudonym: 7 });
            hm.observe(1.5, Some(v), &Obs::PseudonymsExpired { count: 2 });
            hm.observe(2.0, Some(v), &Obs::ShuffleComplete { exchange: 0 });
        }
        hm.rotate(5.0, &[true; 4], &[3; 4], &[1; 4]);
        let fired = alerts(&rec);
        assert!(fired.iter().any(|(_, d, _)| d == "eviction_storm"));
        assert!(
            fired
                .iter()
                .any(|(_, d, _)| d == "pseudonym_expiry_stampede"),
            "4/4 nodes purged"
        );
        // Counters reset: an immediately following quiet window is clean.
        hm.rotate(10.0, &[true; 4], &[3; 4], &[1; 4]);
        assert_eq!(alerts(&rec).len(), fired.len());
    }

    #[test]
    fn rotation_is_idempotent_within_a_window() {
        let rec = Recorder::full();
        let mut hm = HealthMonitor::maybe_new(&enabled_cfg(), &rec, 2, 0.0).unwrap();
        assert!(!hm.due(4.9));
        hm.rotate(4.9, &[true, true], &[1, 1], &[1, 1]); // not past the boundary: no-op
        assert!(hm.due(5.0));
        hm.rotate(5.0, &[true, true], &[1, 1], &[1, 1]);
        assert!(!hm.due(9.9));
        // A long idle gap collapses into one evaluation at the last grid
        // point, not one per elapsed window.
        hm.rotate(102.3, &[true, true], &[1, 1], &[1, 1]);
        assert!(!hm.due(102.4));
        assert!(hm.due(105.0));
    }
}
