//! Robust privacy-preserving overlay maintenance over a social trust graph.
//!
//! This crate reproduces the system of Singh, Urdaneta, van Steen and
//! Vitenberg, *"Robust overlays for privacy-preserving data dissemination
//! over a social graph"* (ICDCS 2012). The idea: bootstrap a communication
//! overlay from a social *trust graph* (friend-to-friend links), then evolve
//! it — without ever disclosing node identities — into a topology that
//! behaves like a random graph: robust under churn and with short paths.
//!
//! # Architecture (paper Figure 2)
//!
//! * **Privacy-preserving link layer** — [`pseudonym`] models the paper's
//!   anonymity + pseudonym services. Pseudonyms are random p-bit strings
//!   with a TTL; the evaluation assumes the services are *ideal* (links work
//!   whenever both endpoints are online), which [`simulation`] reproduces.
//! * **Overlay layer** —
//!   [`cache`] is the Cyclon-style pseudonym cache,
//!   [`sampler`] the Brahms-style min-wise sampler choosing which received
//!   pseudonyms become links, [`protocol`] the shuffle exchange, and
//!   [`node`] the per-node composite state.
//! * **Simulation** — [`simulation::Simulation`] binds the protocol to the
//!   discrete-event engine and churn model from `veil-sim`;
//!   [`metrics`] takes overlay snapshots, [`experiment`] packages the
//!   paper's experiments (Figures 3–9), and [`dissemination`] provides the
//!   flooding broadcast the overlay exists to support.
//!
//! # Quickstart
//!
//! ```
//! use veil_core::config::OverlayConfig;
//! use veil_core::simulation::Simulation;
//! use veil_graph::generators;
//! use veil_sim::churn::ChurnConfig;
//! use veil_sim::rng::{derive_rng, Stream};
//!
//! # fn main() -> Result<(), veil_core::error::CoreError> {
//! let mut rng = derive_rng(42, Stream::Topology);
//! let trust = generators::social_graph(100, 3, &mut rng).unwrap();
//! let cfg = OverlayConfig::default();
//! let churn = ChurnConfig::from_availability(0.5, 30.0);
//! let mut sim = Simulation::new(trust, cfg, churn, 42)?;
//! sim.run_until(20.0);
//! let overlay = sim.overlay_graph();
//! assert!(overlay.edge_count() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod cache;
pub mod config;
pub mod dissemination;
pub mod error;
pub mod experiment;
pub mod health;
pub mod metrics;
pub mod node;
pub mod protocol;
pub mod pseudonym;
pub mod remedy;
pub mod sampler;
pub mod scenario;
mod sim_exec;
pub mod simulation;

pub use config::{HealthConfig, LinkLayerConfig, OverlayConfig, RemedyConfig};
pub use error::CoreError;
pub use health::HealthMonitor;
pub use pseudonym::{Pseudonym, PseudonymId, PseudonymService};
pub use remedy::RemedyEngine;
pub use simulation::Simulation;
