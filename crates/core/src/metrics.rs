//! Overlay-quality metrics and time-series collection (Section IV-C).
//!
//! Wraps the graph metrics of `veil-graph` into snapshot records taken from
//! a running [`Simulation`], and provides the periodic collector used by
//! the convergence experiments (Figures 8 and 9).

use crate::simulation::Simulation;
use serde::{Deserialize, Serialize};
use veil_graph::metrics as gm;
use veil_metrics::{Histogram, TimeSeries};

/// A point-in-time measurement of overlay quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlaySnapshot {
    /// Simulation time of the snapshot, in shuffle periods.
    pub time: f64,
    /// Nodes currently online.
    pub online_nodes: usize,
    /// Fraction of online nodes outside the largest connected component of
    /// the online overlay (the paper's connectivity metric).
    pub fraction_disconnected: f64,
    /// Same metric evaluated on the trust graph alone (the F2F baseline).
    pub fraction_disconnected_trust: f64,
    /// Total distinct pseudonym links over all nodes.
    pub pseudonym_links: usize,
    /// Cumulative pseudonym-link removals over all nodes.
    pub cumulative_link_removals: u64,
    /// Cumulative shuffle messages lost in transit over all nodes (peer
    /// offline, churned mid-transit, or dropped by the fault-injecting link
    /// layer).
    pub dropped_requests: u64,
    /// Cumulative shuffle exchanges abandoned after retry exhaustion over
    /// all nodes (faulty link layer only).
    pub shuffle_failures: u64,
    /// Cumulative timed-out shuffle requests that were retransmitted over
    /// all nodes (faulty link layer only).
    pub shuffle_retries: u64,
}

/// Takes a snapshot of the simulation's current overlay.
pub fn snapshot(sim: &Simulation) -> OverlaySnapshot {
    let online = sim.online_mask();
    let overlay = sim.overlay_graph();
    let mut dropped_requests = 0;
    let mut shuffle_failures = 0;
    let mut shuffle_retries = 0;
    for v in 0..sim.node_count() {
        let stats = sim.node(v).stats;
        dropped_requests += stats.dropped_requests;
        shuffle_failures += stats.shuffle_failures;
        shuffle_retries += stats.shuffle_retries;
    }
    OverlaySnapshot {
        time: sim.now().as_f64(),
        online_nodes: online.iter().filter(|&&b| b).count(),
        fraction_disconnected: gm::fraction_disconnected(&overlay, &online),
        fraction_disconnected_trust: gm::fraction_disconnected(sim.trust_graph(), &online),
        pseudonym_links: (0..sim.node_count())
            .map(|v| sim.node(v).sampler.link_count())
            .sum(),
        cumulative_link_removals: sim.total_link_removals(),
        dropped_requests,
        shuffle_failures,
        shuffle_retries,
    }
}

/// Normalized average path length of the current online overlay
/// (expensive: all-pairs BFS within the largest component).
pub fn normalized_path_length(sim: &Simulation) -> f64 {
    let online = sim.online_mask();
    let overlay = sim.overlay_graph();
    gm::normalized_avg_path_length(&overlay, Some(&online))
}

/// Degree histogram of the current online overlay (Figure 5): for each
/// online node, the number of its overlay neighbours that are also online.
pub fn degree_histogram(sim: &Simulation) -> Histogram {
    let online = sim.online_mask();
    let overlay = sim.overlay_graph();
    gm::degree_histogram(&overlay, Some(&online))
}

/// Periodic collector producing the time series of Figures 8 and 9:
/// connectivity over time and link replacements per node per shuffle
/// period.
///
/// # Examples
///
/// ```
/// use veil_core::config::OverlayConfig;
/// use veil_core::metrics::Collector;
/// use veil_core::simulation::Simulation;
/// use veil_graph::generators;
/// use veil_sim::churn::ChurnConfig;
/// use veil_sim::rng::{derive_rng, Stream};
///
/// # fn main() -> Result<(), veil_core::error::CoreError> {
/// let mut rng = derive_rng(1, Stream::Topology);
/// let trust = generators::social_graph(40, 3, &mut rng).unwrap();
/// let churn = ChurnConfig::from_availability(0.5, 10.0);
/// let mut sim = Simulation::new(trust, OverlayConfig::default(), churn, 1)?;
/// let mut collector = Collector::new(5.0);
/// collector.run(&mut sim, 20.0);
/// assert_eq!(collector.connectivity().len(), 5); // t = 0, 5, 10, 15, 20
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Collector {
    interval: f64,
    connectivity: TimeSeries,
    connectivity_trust: TimeSeries,
    replacement_rate: TimeSeries,
    last_removals: u64,
    last_time: f64,
    started: bool,
}

impl Collector {
    /// Creates a collector sampling every `interval` shuffle periods.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn new(interval: f64) -> Self {
        assert!(interval > 0.0, "sampling interval must be positive");
        Self {
            interval,
            ..Self::default()
        }
    }

    /// Runs the simulation until `horizon`, sampling every `interval`
    /// periods (including at the starting instant of this call and at the
    /// horizon when it falls on the grid).
    pub fn run(&mut self, sim: &mut Simulation, horizon: f64) {
        let mut t = if self.started {
            self.last_time + self.interval
        } else {
            sim.now().as_f64()
        };
        while t <= horizon + 1e-9 {
            sim.run_until(t);
            self.sample(sim);
            t += self.interval;
        }
        sim.run_until(horizon);
    }

    fn sample(&mut self, sim: &Simulation) {
        let snap = snapshot(sim);
        self.connectivity
            .push(snap.time, snap.fraction_disconnected);
        self.connectivity_trust
            .push(snap.time, snap.fraction_disconnected_trust);
        if self.started {
            let dt = snap.time - self.last_time;
            let removed = (snap.cumulative_link_removals - self.last_removals) as f64;
            let per_node_per_period = if dt > 0.0 {
                removed / dt / sim.node_count() as f64
            } else {
                0.0
            };
            self.replacement_rate.push(snap.time, per_node_per_period);
        }
        self.last_removals = snap.cumulative_link_removals;
        self.last_time = snap.time;
        self.started = true;
    }

    /// Fraction of disconnected online nodes over time (overlay).
    pub fn connectivity(&self) -> &TimeSeries {
        &self.connectivity
    }

    /// Fraction of disconnected online nodes over time (trust graph).
    pub fn connectivity_trust(&self) -> &TimeSeries {
        &self.connectivity_trust
    }

    /// Pseudonym-link replacements per node per shuffle period over time
    /// (one point per sampling interval, starting after the first).
    pub fn replacement_rate(&self) -> &TimeSeries {
        &self.replacement_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OverlayConfig;
    use veil_graph::generators;
    use veil_sim::churn::ChurnConfig;
    use veil_sim::rng::{derive_rng, Stream};

    fn sim(alpha: f64, seed: u64) -> Simulation {
        let mut rng = derive_rng(seed, Stream::Topology);
        let trust = generators::social_graph(50, 3, &mut rng).unwrap();
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 12,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(alpha, 10.0);
        Simulation::new(trust, cfg, churn, seed).unwrap()
    }

    #[test]
    fn snapshot_at_start() {
        let s = sim(1.0, 1);
        let snap = snapshot(&s);
        assert_eq!(snap.time, 0.0);
        assert_eq!(snap.online_nodes, 50);
        assert_eq!(snap.pseudonym_links, 0, "no gossip has happened yet");
        // The generated trust graph is connected and everyone is online.
        assert_eq!(snap.fraction_disconnected, 0.0);
        assert_eq!(snap.fraction_disconnected_trust, 0.0);
    }

    #[test]
    fn snapshot_improves_over_time_under_churn() {
        let mut s = sim(0.4, 2);
        let early = snapshot(&s);
        s.run_until(80.0);
        let late = snapshot(&s);
        assert!(late.pseudonym_links > early.pseudonym_links);
        assert!(
            late.fraction_disconnected <= late.fraction_disconnected_trust,
            "overlay {} vs trust {}",
            late.fraction_disconnected,
            late.fraction_disconnected_trust
        );
    }

    #[test]
    fn collector_samples_on_grid() {
        let mut s = sim(0.5, 3);
        let mut c = Collector::new(2.0);
        c.run(&mut s, 10.0);
        let times: Vec<f64> = c.connectivity().iter().map(|(t, _)| t).collect();
        assert_eq!(times, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        // Replacement rate starts one interval later.
        assert_eq!(c.replacement_rate().len(), 5);
    }

    #[test]
    fn collector_resumes_without_duplicate_sample() {
        let mut s = sim(0.5, 4);
        let mut c = Collector::new(2.0);
        c.run(&mut s, 4.0);
        c.run(&mut s, 8.0);
        let times: Vec<f64> = c.connectivity().iter().map(|(t, _)| t).collect();
        assert_eq!(times, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn normalized_path_length_positive_when_connected() {
        let mut s = sim(1.0, 5);
        s.run_until(20.0);
        let npl = normalized_path_length(&s);
        assert!(npl > 1.0, "normalized path length {npl}");
    }

    #[test]
    fn degree_histogram_counts_online_nodes() {
        let mut s = sim(0.5, 6);
        s.run_until(20.0);
        let h = degree_histogram(&s);
        assert_eq!(h.total() as usize, s.online_count());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn collector_rejects_zero_interval() {
        Collector::new(0.0);
    }

    #[test]
    fn snapshot_counts_fault_statistics() {
        // Always-on nodes over an ideal link layer lose nothing.
        let mut quiet = sim(1.0, 7);
        quiet.run_until(20.0);
        let snap = snapshot(&quiet);
        assert_eq!(snap.dropped_requests, 0);
        assert_eq!(snap.shuffle_failures, 0);
        assert_eq!(snap.shuffle_retries, 0);
        // Under churn with in-flight delay, some requests find their peer
        // offline mid-transit.
        let mut rng = derive_rng(7, Stream::Topology);
        let trust = generators::social_graph(50, 3, &mut rng).unwrap();
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 12,
            link_latency: 0.5,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(0.4, 10.0);
        let mut churny = Simulation::new(trust, cfg, churn, 7).unwrap();
        churny.run_until(80.0);
        let snap = snapshot(&churny);
        assert!(snap.dropped_requests > 0, "churn should drop some requests");
        assert_eq!(snap.shuffle_failures, 0, "ideal layer never times out");
    }
}
