//! Per-node protocol state: trusted links, cache, sampler, own pseudonym.

use crate::cache::Cache;
use crate::config::OverlayConfig;
use crate::pseudonym::{Pseudonym, PseudonymService};
use rand::Rng;
use veil_sim::SimTime;

/// One end of an overlay link, from the owning node's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkTarget {
    /// A trusted link to a trust-graph neighbour, addressed by node ID
    /// (both ends know each other's identity).
    Trusted(u32),
    /// A pseudonym link, addressed by pseudonym (neither end learns the
    /// other's identity).
    Pseudonym(Pseudonym),
}

impl LinkTarget {
    /// Resolves the link to the destination node index.
    ///
    /// For pseudonym links this models the pseudonym service performing the
    /// delivery; the sending node itself never learns the result.
    pub fn resolve(&self) -> u32 {
        match self {
            LinkTarget::Trusted(n) => *n,
            LinkTarget::Pseudonym(p) => p.owner(),
        }
    }

    /// Whether this is a trusted link.
    pub fn is_trusted(&self) -> bool {
        matches!(self, LinkTarget::Trusted(_))
    }
}

/// Message and activity statistics of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeStats {
    /// Shuffle requests sent (one per shuffle period while online, when the
    /// node has at least one link).
    pub requests_sent: u64,
    /// Shuffle responses sent (one per delivered incoming request).
    pub responses_sent: u64,
    /// Shuffle messages this node sent that were never delivered: the peer
    /// was offline, churned away mid-transit, or the fault-injecting link
    /// layer dropped the message.
    pub dropped_requests: u64,
    /// Shuffle exchanges abandoned after the retry budget was exhausted
    /// (faulty link layer only); each triggers Cyclon-style eviction of the
    /// unresponsive pseudonym.
    pub shuffle_failures: u64,
    /// Timed-out shuffle requests that were retransmitted (faulty link
    /// layer only).
    pub shuffle_retries: u64,
    /// Shuffle rounds skipped by the adaptive stability detector
    /// (`stop_after_stable_periods`).
    pub shuffles_suppressed: u64,
    /// Accumulated time spent online, in shuffle periods.
    pub online_time: f64,
}

impl NodeStats {
    /// Total messages sent (requests + responses).
    pub fn messages_sent(&self) -> u64 {
        self.requests_sent + self.responses_sent
    }

    /// Average messages sent per shuffle period of online time
    /// (the quantity plotted in Figure 6). `0.0` if never online.
    pub fn messages_per_period(&self) -> f64 {
        if self.online_time <= 0.0 {
            0.0
        } else {
            self.messages_sent() as f64 / self.online_time
        }
    }
}

/// The complete protocol state of one participant.
///
/// Composes the trusted neighbour list (from the trust graph), the Cyclon
/// cache, the Brahms sampler, and the node's own current pseudonym. State
/// survives offline periods: "when a node rejoins the system, it retains
/// the state data that it had prior to the failure" (Section II-D).
#[derive(Debug)]
pub struct Node {
    /// The node's index in the trust graph.
    pub id: u32,
    trusted: Vec<u32>,
    /// Pseudonym cache (gossip working set).
    pub cache: Cache,
    /// Min-wise sampler deciding which pseudonyms become links.
    pub sampler: crate::sampler::Sampler,
    own: Option<Pseudonym>,
    /// Until when the node withholds its own pseudonym from shuffle offers
    /// (the remediation engine's in-degree-skew throttle); `-inf` when
    /// never throttled.
    throttle_until: f64,
    /// Activity statistics.
    pub stats: NodeStats,
}

impl Node {
    /// Creates the node's initial state from the overlay configuration and
    /// its trusted neighbour list.
    ///
    /// The sampler's slot count follows the configured [`SlotPolicy`]:
    /// by default `max(min_slots, target_links − |trusted|)`, so hubs rely
    /// on their trusted links.
    ///
    /// [`SlotPolicy`]: crate::config::SlotPolicy
    pub fn new<R: Rng + ?Sized>(
        id: u32,
        trusted: Vec<u32>,
        cfg: &OverlayConfig,
        rng: &mut R,
    ) -> Self {
        let slots = cfg.slots_for_degree(trusted.len());
        Self {
            id,
            trusted,
            cache: Cache::new(cfg.cache_size),
            sampler: crate::sampler::Sampler::new(
                slots,
                cfg.distance_metric,
                cfg.minwise_sampling,
                rng,
            ),
            own: None,
            throttle_until: f64::NEG_INFINITY,
            stats: NodeStats::default(),
        }
    }

    /// The node's trust-graph neighbours.
    pub fn trusted(&self) -> &[u32] {
        &self.trusted
    }

    /// The node's current pseudonym, if one has been created and not
    /// expired by `now`.
    pub fn own_pseudonym(&self, now: SimTime) -> Option<Pseudonym> {
        self.own.filter(|p| p.is_valid(now))
    }

    /// Whether the node needs a fresh pseudonym at `now`.
    pub fn needs_pseudonym(&self, now: SimTime) -> bool {
        self.own_pseudonym(now).is_none()
    }

    /// Withholds the node's own pseudonym from outgoing shuffle offers
    /// until `until` (the remediation engine's contribution throttle for
    /// over-represented hubs). Extends but never shortens an active
    /// throttle.
    pub fn throttle_contribution(&mut self, until: SimTime) {
        self.throttle_until = self.throttle_until.max(until.as_f64());
    }

    /// Whether the contribution throttle is active at `now`.
    pub fn contribution_throttled(&self, now: SimTime) -> bool {
        now.as_f64() < self.throttle_until
    }

    /// Mints and installs a fresh pseudonym ("every node creates a
    /// pseudonym to represent itself when it starts" and again whenever the
    /// previous one expires).
    pub fn renew_pseudonym(
        &mut self,
        svc: &mut PseudonymService,
        now: SimTime,
        lifetime: Option<f64>,
    ) -> Pseudonym {
        let p = svc.mint(self.id, now, lifetime);
        self.own = Some(p);
        p
    }

    /// Drops expired pseudonyms from the cache and sampler; returns the
    /// number of pseudonym *links* removed (the expiry side of Figure 9).
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        self.cache.purge_expired(now);
        self.sampler.purge_expired(now)
    }

    /// The node's overlay links: trusted links plus the sampled pseudonym
    /// links valid at `now` (`n.links` in the paper).
    pub fn links(&self, now: SimTime) -> Vec<LinkTarget> {
        let mut out: Vec<LinkTarget> = self
            .trusted
            .iter()
            .map(|&t| LinkTarget::Trusted(t))
            .collect();
        out.extend(
            self.sampler
                .links()
                .into_iter()
                .filter(|p| p.is_valid(now))
                .map(LinkTarget::Pseudonym),
        );
        out
    }

    /// Picks one link uniformly at random ("periodically, n selects a link
    /// from n.links uniformly at random"); `None` when the node has no
    /// links at all.
    pub fn pick_link<R: Rng + ?Sized>(&self, now: SimTime, rng: &mut R) -> Option<LinkTarget> {
        let links = self.links(now);
        if links.is_empty() {
            None
        } else {
            Some(links[rng.gen_range(0..links.len())])
        }
    }

    /// Current overlay out-degree: trusted links plus distinct pseudonym
    /// links.
    pub fn out_degree(&self, now: SimTime) -> usize {
        self.links(now).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_node(id: u32, trusted: Vec<u32>) -> Node {
        let cfg = OverlayConfig::default();
        let mut rng = StdRng::seed_from_u64(id as u64 + 100);
        Node::new(id, trusted, &cfg, &mut rng)
    }

    #[test]
    fn slot_budget_respects_trust_degree() {
        let lone = make_node(0, vec![]);
        assert_eq!(lone.sampler.slot_count(), 50);
        let social = make_node(1, (0..20).collect());
        assert_eq!(social.sampler.slot_count(), 30);
        let hub = make_node(2, (0..80).collect());
        assert_eq!(hub.sampler.slot_count(), 0);
    }

    #[test]
    fn pseudonym_lifecycle() {
        let mut node = make_node(0, vec![]);
        let mut svc = PseudonymService::new(1);
        assert!(node.needs_pseudonym(SimTime::ZERO));
        let p = node.renew_pseudonym(&mut svc, SimTime::ZERO, Some(10.0));
        assert_eq!(node.own_pseudonym(SimTime::ZERO), Some(p));
        assert!(!node.needs_pseudonym(SimTime::new(9.0)));
        assert!(node.needs_pseudonym(SimTime::new(10.0)));
        let p2 = node.renew_pseudonym(&mut svc, SimTime::new(10.0), Some(10.0));
        assert_ne!(p.id(), p2.id());
    }

    #[test]
    fn links_merge_trusted_and_sampled() {
        let mut node = make_node(0, vec![7, 9]);
        let mut svc = PseudonymService::new(2);
        let p = svc.mint(3, SimTime::ZERO, None);
        node.sampler.offer(p, SimTime::ZERO);
        let links = node.links(SimTime::ZERO);
        assert_eq!(links.len(), 3);
        assert!(links.contains(&LinkTarget::Trusted(7)));
        assert!(links.contains(&LinkTarget::Trusted(9)));
        assert!(links.iter().any(|l| l.resolve() == 3 && !l.is_trusted()));
        assert_eq!(node.out_degree(SimTime::ZERO), 3);
    }

    #[test]
    fn expired_pseudonym_links_excluded() {
        let mut node = make_node(0, vec![]);
        let mut svc = PseudonymService::new(3);
        let p = svc.mint(3, SimTime::ZERO, Some(5.0));
        node.sampler.offer(p, SimTime::ZERO);
        assert_eq!(node.links(SimTime::new(4.0)).len(), 1);
        assert_eq!(node.links(SimTime::new(5.0)).len(), 0);
    }

    #[test]
    fn purge_counts_link_removals() {
        let mut node = make_node(0, vec![]);
        let mut svc = PseudonymService::new(4);
        let p = svc.mint(3, SimTime::ZERO, Some(5.0));
        node.sampler.offer(p, SimTime::ZERO);
        node.cache.insert(p, SimTime::ZERO);
        assert_eq!(node.purge_expired(SimTime::new(6.0)), 1);
        assert!(node.cache.is_empty());
        assert_eq!(node.sampler.link_count(), 0);
    }

    #[test]
    fn pick_link_none_when_isolated() {
        let node = make_node(0, vec![]);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(node.pick_link(SimTime::ZERO, &mut rng).is_none());
    }

    #[test]
    fn pick_link_uniform_over_links() {
        let node = make_node(0, vec![1, 2, 3, 4]);
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0u32; 5];
        for _ in 0..4000 {
            if let Some(LinkTarget::Trusted(t)) = node.pick_link(SimTime::ZERO, &mut rng) {
                counts[t as usize] += 1;
            }
        }
        for &c in &counts[1..] {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn stats_message_rates() {
        let stats = NodeStats {
            requests_sent: 10,
            responses_sent: 8,
            dropped_requests: 2,
            shuffle_failures: 0,
            shuffle_retries: 0,
            shuffles_suppressed: 0,
            online_time: 9.0,
        };
        assert_eq!(stats.messages_sent(), 18);
        assert!((stats.messages_per_period() - 2.0).abs() < 1e-12);
        assert_eq!(NodeStats::default().messages_per_period(), 0.0);
    }
}
