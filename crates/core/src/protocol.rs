//! The shuffle exchange (Section III-D1).
//!
//! Periodically each node selects one of its overlay links uniformly at
//! random and runs a shuffle with the peer: both sides send an encrypted
//! set of up to ℓ pseudonyms — their own plus up to ℓ−1 from their cache.
//! Received pseudonyms enter the cache (Cyclon replacement) and *all* of
//! them — cached or not — are offered to the min-wise sampler.
//!
//! The functions here are pure protocol logic over [`Node`] state; the
//! event-driven orchestration (timers, churn, delivery) lives in
//! [`crate::simulation`].

use crate::node::Node;
use crate::pseudonym::{Pseudonym, PseudonymId};
use rand::Rng;
use veil_sim::SimTime;

/// The pseudonym set one side contributes to a shuffle.
#[derive(Debug, Clone)]
pub struct Offer {
    /// Pseudonyms sent over the link (own pseudonym first, then cache
    /// picks), at most ℓ entries.
    pub entries: Vec<Pseudonym>,
    /// Ids of the cache entries included — the Cyclon eviction candidates
    /// on this side once the peer's offer arrives.
    pub sent_from_cache: Vec<PseudonymId>,
}

/// Builds a node's offer: its own pseudonym (when valid) plus up to
/// `shuffle_length − 1` random cache entries.
///
/// Expired cache entries are purged first so they are never gossiped. A
/// contribution-throttled node ([`Node::throttle_contribution`]) withholds
/// its own pseudonym and fills the whole budget from its cache instead.
pub fn build_offer<R: Rng + ?Sized>(
    node: &mut Node,
    shuffle_length: usize,
    now: SimTime,
    rng: &mut R,
) -> Offer {
    node.cache.purge_expired(now);
    let own = if node.contribution_throttled(now) {
        None
    } else {
        node.own_pseudonym(now)
    };
    let budget = shuffle_length.saturating_sub(usize::from(own.is_some()));
    let picks = node.cache.select_offer(budget, rng);
    let sent_from_cache = picks.iter().map(|p| p.id()).collect();
    let mut entries = Vec::with_capacity(picks.len() + 1);
    if let Some(p) = own {
        entries.push(p);
    }
    entries.extend(picks);
    Offer {
        entries,
        sent_from_cache,
    }
}

/// Applies a received offer to a node: absorbs the entries into the cache
/// (evicting just-sent entries first) and offers every received pseudonym —
/// whether cached or not — to the sampler.
///
/// Returns the number of pseudonyms that changed the node's sampler.
pub fn receive_offer<R: Rng + ?Sized>(
    node: &mut Node,
    received: &[Pseudonym],
    just_sent: &[PseudonymId],
    now: SimTime,
    rng: &mut R,
) -> usize {
    let own_id = node.own_pseudonym(now).map(|p| p.id());
    node.cache.absorb(received, just_sent, own_id, now, rng);
    node.sampler.purge_expired(now);
    let mut sampled = 0;
    for &p in received {
        // A node recognizes every pseudonym it minted itself — including
        // previous, still-valid instances — and never self-links. This is
        // legitimate local knowledge, not an identity leak.
        if p.owner() == node.id {
            continue;
        }
        if node.sampler.offer(p, now) {
            sampled += 1;
        }
    }
    sampled
}

/// Runs one complete shuffle between an initiator and a responder.
///
/// Models the paper's exchange over an ideal privacy-preserving link: the
/// initiator's offer is delivered, the responder builds and returns its own
/// offer, and both sides apply what they received. The caller must have
/// verified that both nodes are online.
pub fn execute_shuffle<R: Rng + ?Sized>(
    initiator: &mut Node,
    responder: &mut Node,
    shuffle_length: usize,
    now: SimTime,
    rng: &mut R,
) {
    let request = build_offer(initiator, shuffle_length, now, rng);
    let response = build_offer(responder, shuffle_length, now, rng);
    receive_offer(
        responder,
        &request.entries,
        &response.sent_from_cache,
        now,
        rng,
    );
    receive_offer(
        initiator,
        &response.entries,
        &request.sent_from_cache,
        now,
        rng,
    );
    initiator.stats.requests_sent += 1;
    responder.stats.responses_sent += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OverlayConfig;
    use crate::pseudonym::PseudonymService;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> OverlayConfig {
        OverlayConfig {
            cache_size: 10,
            shuffle_length: 4,
            target_links: 8,
            ..OverlayConfig::default()
        }
    }

    fn node_with_pseudonym(
        id: u32,
        cfg: &OverlayConfig,
        svc: &mut PseudonymService,
        rng: &mut StdRng,
    ) -> Node {
        let mut n = Node::new(id, vec![], cfg, rng);
        n.renew_pseudonym(svc, SimTime::ZERO, cfg.pseudonym_lifetime);
        n
    }

    #[test]
    fn offer_contains_own_pseudonym_first() {
        let cfg = small_cfg();
        let mut svc = PseudonymService::new(1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut node = node_with_pseudonym(0, &cfg, &mut svc, &mut rng);
        let own = node.own_pseudonym(SimTime::ZERO).unwrap();
        let offer = build_offer(&mut node, cfg.shuffle_length, SimTime::ZERO, &mut rng);
        assert_eq!(offer.entries[0], own);
        assert!(offer.sent_from_cache.is_empty(), "cache was empty");
    }

    #[test]
    fn offer_respects_length_limit() {
        let cfg = small_cfg();
        let mut svc = PseudonymService::new(2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut node = node_with_pseudonym(0, &cfg, &mut svc, &mut rng);
        for i in 1..=9 {
            let p = svc.mint(i, SimTime::ZERO, None);
            node.cache.insert(p, SimTime::ZERO);
        }
        let offer = build_offer(&mut node, cfg.shuffle_length, SimTime::ZERO, &mut rng);
        assert_eq!(offer.entries.len(), 4, "own + 3 cache entries");
        assert_eq!(offer.sent_from_cache.len(), 3);
    }

    #[test]
    fn offer_without_own_pseudonym_uses_full_budget() {
        let cfg = small_cfg();
        let mut svc = PseudonymService::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut node = Node::new(0, vec![], &cfg, &mut rng);
        for i in 1..=9 {
            node.cache
                .insert(svc.mint(i, SimTime::ZERO, None), SimTime::ZERO);
        }
        let offer = build_offer(&mut node, cfg.shuffle_length, SimTime::ZERO, &mut rng);
        assert_eq!(offer.entries.len(), 4);
        assert_eq!(offer.sent_from_cache.len(), 4);
    }

    #[test]
    fn throttled_node_withholds_own_pseudonym() {
        let cfg = small_cfg();
        let mut svc = PseudonymService::new(9);
        let mut rng = StdRng::seed_from_u64(9);
        let mut node = node_with_pseudonym(0, &cfg, &mut svc, &mut rng);
        let own = node.own_pseudonym(SimTime::ZERO).unwrap();
        for i in 1..=9 {
            node.cache
                .insert(svc.mint(i, SimTime::ZERO, None), SimTime::ZERO);
        }
        node.throttle_contribution(SimTime::new(5.0));
        let offer = build_offer(&mut node, cfg.shuffle_length, SimTime::ZERO, &mut rng);
        assert!(!offer.entries.contains(&own), "own pseudonym withheld");
        assert_eq!(offer.entries.len(), 4, "full budget from the cache");
        // The throttle expires: the own pseudonym leads the offer again.
        let offer = build_offer(&mut node, cfg.shuffle_length, SimTime::new(5.0), &mut rng);
        assert_eq!(offer.entries[0], own);
    }

    #[test]
    fn expired_entries_never_gossiped() {
        let cfg = small_cfg();
        let mut svc = PseudonymService::new(4);
        let mut rng = StdRng::seed_from_u64(4);
        let mut node = Node::new(0, vec![], &cfg, &mut rng);
        node.cache
            .insert(svc.mint(1, SimTime::ZERO, Some(5.0)), SimTime::ZERO);
        let offer = build_offer(&mut node, cfg.shuffle_length, SimTime::new(6.0), &mut rng);
        assert!(offer.entries.is_empty());
    }

    #[test]
    fn receive_populates_cache_and_sampler() {
        let cfg = small_cfg();
        let mut svc = PseudonymService::new(5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut node = node_with_pseudonym(0, &cfg, &mut svc, &mut rng);
        let incoming: Vec<Pseudonym> = (1..=3).map(|i| svc.mint(i, SimTime::ZERO, None)).collect();
        let changed = receive_offer(&mut node, &incoming, &[], SimTime::ZERO, &mut rng);
        assert!(changed > 0);
        assert_eq!(node.cache.len(), 3);
        // Each slot keeps the minimum-distance pseudonym; a received
        // pseudonym that wins no slot does not become a link.
        let links = node.sampler.link_count();
        assert!((1..=3).contains(&links), "link count {links}");
    }

    #[test]
    fn receive_ignores_own_pseudonym() {
        let cfg = small_cfg();
        let mut svc = PseudonymService::new(6);
        let mut rng = StdRng::seed_from_u64(6);
        let mut node = node_with_pseudonym(0, &cfg, &mut svc, &mut rng);
        let own = node.own_pseudonym(SimTime::ZERO).unwrap();
        receive_offer(&mut node, &[own], &[], SimTime::ZERO, &mut rng);
        assert!(node.cache.is_empty());
        assert_eq!(node.sampler.link_count(), 0);
    }

    #[test]
    fn shuffle_exchanges_pseudonyms_both_ways() {
        let cfg = small_cfg();
        let mut svc = PseudonymService::new(7);
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = node_with_pseudonym(0, &cfg, &mut svc, &mut rng);
        let mut b = node_with_pseudonym(1, &cfg, &mut svc, &mut rng);
        let pa = a.own_pseudonym(SimTime::ZERO).unwrap();
        let pb = b.own_pseudonym(SimTime::ZERO).unwrap();
        execute_shuffle(&mut a, &mut b, cfg.shuffle_length, SimTime::ZERO, &mut rng);
        assert!(a.cache.contains(pb.id()), "a learned b's pseudonym");
        assert!(b.cache.contains(pa.id()), "b learned a's pseudonym");
        assert!(a.sampler.contains(pb.id()));
        assert!(b.sampler.contains(pa.id()));
        assert_eq!(a.stats.requests_sent, 1);
        assert_eq!(b.stats.responses_sent, 1);
        assert_eq!(a.stats.responses_sent, 0);
    }

    #[test]
    fn repeated_shuffles_spread_third_party_pseudonyms() {
        let cfg = small_cfg();
        let mut svc = PseudonymService::new(8);
        let mut rng = StdRng::seed_from_u64(8);
        let mut a = node_with_pseudonym(0, &cfg, &mut svc, &mut rng);
        let mut b = node_with_pseudonym(1, &cfg, &mut svc, &mut rng);
        // a knows a third party's pseudonym.
        let third = svc.mint(2, SimTime::ZERO, None);
        a.cache.insert(third, SimTime::ZERO);
        let mut learned = false;
        for _ in 0..20 {
            execute_shuffle(&mut a, &mut b, cfg.shuffle_length, SimTime::ZERO, &mut rng);
            if b.cache.contains(third.id()) {
                learned = true;
                break;
            }
        }
        assert!(learned, "third-party pseudonym should eventually spread");
    }
}
