//! Pseudonyms and the (ideal) pseudonym service.
//!
//! A pseudonym `P(n)` is "an address that any other node `m` can use in
//! conjunction with the pseudonym service to build a link to `n` such that
//! `n`'s ID is not disclosed to `m` and vice versa" (Section III-A). The
//! sampling protocol additionally assumes "each pseudonym is a random p-bit
//! sequence".
//!
//! In a deployment the service is realized on top of a mix network (Tor
//! hidden services, I2P eepsites, or an anonymity-fronted storage service —
//! Section III-B). The paper's evaluation assumes an *ideal* service:
//! links are reliable and low-latency whenever both endpoints are online.
//! [`PseudonymService`] here plays exactly that role: it mints pseudonyms
//! and — as simulation-level ground truth — remembers their owners so the
//! simulator can route messages. Protocol logic never inspects the owner;
//! see [`Pseudonym::owner`] for the visibility contract.

use crate::config::DistanceMetric;
use rand::Rng;
use serde::{Deserialize, Serialize};
use veil_sim::rng::{derive_rng, Stream};
use veil_sim::SimTime;

/// Unique identifier of one minted pseudonym instance.
///
/// Renewing a pseudonym produces a new instance with a fresh id and fresh
/// random bits; the old instance stays distinct until it expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PseudonymId(pub u64);

impl std::fmt::Display for PseudonymId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A pseudonym: a random 128-bit address with an expiry time.
///
/// `Pseudonym` is the datum gossiped through the shuffle protocol and
/// compared against sampler reference values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pseudonym {
    id: PseudonymId,
    bits: u128,
    expires: Option<SimTime>,
    owner: u32,
}

impl Pseudonym {
    /// The unique instance id.
    pub fn id(&self) -> PseudonymId {
        self.id
    }

    /// The random p-bit value (p = 128) used for sampler distances.
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// Expiry instant; `None` for non-expiring pseudonyms (`r = ∞`).
    pub fn expires(&self) -> Option<SimTime> {
        self.expires
    }

    /// Whether the pseudonym is still valid at `now`.
    ///
    /// Expiry is exclusive: a pseudonym whose expiry equals `now` is no
    /// longer valid.
    pub fn is_valid(&self, now: SimTime) -> bool {
        self.expires.is_none_or(|e| now < e)
    }

    /// The owning node — **simulation-level ground truth only**.
    ///
    /// A real pseudonym reveals nothing about its owner; the simulator uses
    /// this to model the pseudonym service resolving the address when a
    /// message is sent. Protocol decision logic (caching, sampling, peer
    /// selection) must not read it, and the privacy attack models in
    /// `veil-privacy` treat it as the hidden variable an adversary tries to
    /// infer.
    pub fn owner(&self) -> u32 {
        self.owner
    }

    /// Distance between this pseudonym and a reference value under the
    /// given metric. Smaller is better for the min-wise sampler.
    pub fn distance_to(&self, reference: u128, metric: DistanceMetric) -> u128 {
        match metric {
            DistanceMetric::Absolute => self.bits.abs_diff(reference),
            DistanceMetric::Xor => self.bits ^ reference,
        }
    }
}

/// Mints pseudonyms with deterministic per-owner randomness.
///
/// One service instance exists per simulation; its counter makes every
/// minted pseudonym unique.
///
/// # Examples
///
/// ```
/// use veil_core::pseudonym::PseudonymService;
/// use veil_sim::SimTime;
///
/// let mut svc = PseudonymService::new(7);
/// let p = svc.mint(3, SimTime::ZERO, Some(90.0));
/// assert!(p.is_valid(SimTime::new(89.9)));
/// assert!(!p.is_valid(SimTime::new(90.0)));
/// ```
#[derive(Debug)]
pub struct PseudonymService {
    master_seed: u64,
    next_id: u64,
    minted: u64,
    /// Per-owner mint counters for the *keyed* id scheme (sharded runs);
    /// `None` selects the classic global-counter scheme.
    per_owner: Option<std::collections::HashMap<u32, u64>>,
}

impl PseudonymService {
    /// Creates a service deriving all pseudonym bits from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Self {
            master_seed,
            next_id: 0,
            minted: 0,
            per_owner: None,
        }
    }

    /// Creates a service whose instance ids are *keyed* by owner:
    /// `id = (owner + 1) << 32 | per_owner_seq`.
    ///
    /// A global mint counter would make pseudonym ids depend on the
    /// interleaving of mints across nodes — exactly what a sharded run must
    /// not observe. The keyed scheme makes every id a pure function of
    /// `(owner, how many pseudonyms that owner minted before)`, so any
    /// shard layout assigns identical ids to identical protocol histories.
    /// The `owner + 1` offset keeps keyed ids disjoint from the classic
    /// scheme's small integers, so mixed traces cannot alias. Bits are
    /// derived exactly as in the classic scheme, from `(master_seed ^ id,
    /// Stream::Pseudonym(owner))`.
    pub fn new_keyed(master_seed: u64) -> Self {
        Self {
            master_seed,
            next_id: 0,
            minted: 0,
            per_owner: Some(std::collections::HashMap::new()),
        }
    }

    /// Mints a fresh pseudonym for `owner` at time `now` with the given
    /// lifetime in shuffle periods (`None` = never expires).
    pub fn mint(&mut self, owner: u32, now: SimTime, lifetime: Option<f64>) -> Pseudonym {
        let id = match &mut self.per_owner {
            Some(counters) => {
                let seq = counters.entry(owner).or_insert(0);
                let id = PseudonymId(((u64::from(owner) + 1) << 32) | *seq);
                *seq += 1;
                id
            }
            None => {
                let id = PseudonymId(self.next_id);
                self.next_id += 1;
                id
            }
        };
        self.minted += 1;
        // Bits are drawn from a stream keyed by the instance id, so the
        // sequence is reproducible and independent across instances.
        let mut rng = derive_rng(self.master_seed ^ id.0, Stream::Pseudonym(owner));
        Pseudonym {
            id,
            bits: rng.gen(),
            expires: lifetime.map(|l| now + l),
            owner,
        }
    }

    /// Total number of pseudonyms minted so far.
    pub fn minted(&self) -> u64 {
        self.minted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_pseudonyms_are_unique() {
        let mut svc = PseudonymService::new(1);
        let a = svc.mint(0, SimTime::ZERO, Some(10.0));
        let b = svc.mint(0, SimTime::ZERO, Some(10.0));
        assert_ne!(a.id(), b.id());
        assert_ne!(a.bits(), b.bits());
        assert_eq!(svc.minted(), 2);
    }

    #[test]
    fn expiry_semantics() {
        let mut svc = PseudonymService::new(2);
        let p = svc.mint(5, SimTime::new(10.0), Some(30.0));
        assert_eq!(p.expires(), Some(SimTime::new(40.0)));
        assert!(p.is_valid(SimTime::new(10.0)));
        assert!(p.is_valid(SimTime::new(39.999)));
        assert!(!p.is_valid(SimTime::new(40.0)));
        assert!(!p.is_valid(SimTime::new(100.0)));
    }

    #[test]
    fn infinite_lifetime_never_expires() {
        let mut svc = PseudonymService::new(3);
        let p = svc.mint(5, SimTime::ZERO, None);
        assert_eq!(p.expires(), None);
        assert!(p.is_valid(SimTime::new(1e9)));
    }

    #[test]
    fn owner_is_recorded() {
        let mut svc = PseudonymService::new(4);
        assert_eq!(svc.mint(17, SimTime::ZERO, None).owner(), 17);
    }

    #[test]
    fn absolute_distance() {
        let mut svc = PseudonymService::new(5);
        let p = svc.mint(0, SimTime::ZERO, None);
        assert_eq!(p.distance_to(p.bits(), DistanceMetric::Absolute), 0);
        assert_eq!(
            p.distance_to(p.bits().wrapping_add(5), DistanceMetric::Absolute),
            5
        );
    }

    #[test]
    fn xor_distance() {
        let mut svc = PseudonymService::new(6);
        let p = svc.mint(0, SimTime::ZERO, None);
        assert_eq!(p.distance_to(p.bits(), DistanceMetric::Xor), 0);
        assert_eq!(
            p.distance_to(p.bits() ^ 0b1010, DistanceMetric::Xor),
            0b1010
        );
    }

    #[test]
    fn same_seed_same_bits() {
        let mut a = PseudonymService::new(9);
        let mut b = PseudonymService::new(9);
        assert_eq!(
            a.mint(1, SimTime::ZERO, None).bits(),
            b.mint(1, SimTime::ZERO, None).bits()
        );
    }

    #[test]
    fn keyed_ids_are_owner_local_and_interleaving_invariant() {
        // Interleaved mints across owners...
        let mut a = PseudonymService::new_keyed(9);
        let a0 = a.mint(0, SimTime::ZERO, None);
        let a7 = a.mint(7, SimTime::ZERO, None);
        let a0b = a.mint(0, SimTime::ZERO, None);
        // ...and the reverse interleaving produce identical instances.
        let mut b = PseudonymService::new_keyed(9);
        let b7 = b.mint(7, SimTime::ZERO, None);
        let b0 = b.mint(0, SimTime::ZERO, None);
        let b0b = b.mint(0, SimTime::ZERO, None);
        assert_eq!((a0.id(), a0.bits()), (b0.id(), b0.bits()));
        assert_eq!((a7.id(), a7.bits()), (b7.id(), b7.bits()));
        assert_eq!((a0b.id(), a0b.bits()), (b0b.id(), b0b.bits()));
        assert_eq!(a0.id(), PseudonymId(1 << 32));
        assert_eq!(a0b.id(), PseudonymId((1 << 32) | 1));
        assert_eq!(a7.id(), PseudonymId(8 << 32));
        assert_eq!(a.minted(), 3);
        // Keyed ids never collide with classic small-integer ids.
        let mut classic = PseudonymService::new(9);
        let c = classic.mint(0, SimTime::ZERO, None);
        assert!(c.id().0 < (1 << 32) && a0.id().0 >= (1 << 32));
    }

    #[test]
    fn bits_spread_over_range() {
        // 200 pseudonyms should not cluster in one quarter of the range.
        let mut svc = PseudonymService::new(10);
        let mut quarters = [0u32; 4];
        for i in 0..200 {
            let p = svc.mint(i, SimTime::ZERO, None);
            quarters[(p.bits() >> 126) as usize] += 1;
        }
        for &q in &quarters {
            assert!(q > 20, "quarter counts {quarters:?}");
        }
    }
}
