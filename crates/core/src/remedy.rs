//! Self-healing remediation: deterministic, gated reactions to health
//! alerts.
//!
//! The [`crate::health::HealthMonitor`] detects degradation; the
//! [`RemedyEngine`] closes the loop. Each window rotation hands the engine
//! the fired [`WindowAlert`]s, and the engine maps them — purely, with no
//! randomness of its own — onto three reactions, each behind its own
//! [`RemedyConfig`] flag:
//!
//! * **eviction storm ⇒ shuffle backoff** — every online node skips its
//!   next [`RemedyConfig::backoff_shuffles`] shuffle initiations, letting
//!   in-flight exchanges drain instead of compounding the storm (the
//!   counter decays by one per skipped shuffle, so the reaction is
//!   self-limiting);
//! * **starvation / isolation ⇒ targeted re-bootstrap** — an implicated
//!   node's sampler and cache are re-seeded with the current pseudonyms of
//!   its *online trusted neighbors* (the one set of peers it can always
//!   re-contact without deanonymizing anyone), rate-limited per node by
//!   [`RemedyConfig::rebootstrap_cooldown`];
//! * **in-degree skew ⇒ contribution throttle** — over-represented hubs
//!   withhold their own pseudonym from outgoing shuffle offers for
//!   [`RemedyConfig::throttle_periods`], starving further in-degree growth
//!   while normal gossip rebalances the topology.
//!
//! # Shard-layout invariance
//!
//! Decisions are a pure function of the window alerts and the online mask,
//! both of which the sharded executor derives from the barrier-replayed,
//! time-sorted health observations — so every shard count (including the
//! sequential executor's health tick) sees the same alert sequence and
//! produces the same reactions at the same barrier instant. Reactions
//! mutate only per-node state (backoff counters, throttle deadlines,
//! sampler offers along trust edges in neighbor order) and draw no
//! randomness, keeping the downstream event stream invariant too.
//!
//! # Off means off
//!
//! With [`RemedyConfig::enabled`] false the engine is never constructed,
//! no `RemedyAction` events exist, and the simulation is byte-identical to
//! a monitoring-only build — pinned by the equivalence suites.

use crate::config::RemedyConfig;
use crate::health::WindowAlert;
use crate::sim_exec::state::NodeCell;
use veil_graph::Graph;
use veil_obs::{EventKind as Obs, Recorder};
use veil_sim::SimTime;

/// One reaction the engine decided to take, before application.
///
/// Decisions are split from application so the decision logic stays a pure,
/// unit-testable function of alerts + online mask, while application owns
/// the `&mut` access to node state.
#[derive(Debug, Clone, PartialEq)]
pub enum RemedyDecision {
    /// Suppress the next shuffle initiations of every listed node.
    Backoff {
        /// Window boundary the triggering alert was stamped at.
        t: f64,
        /// Triggering detector name.
        detector: &'static str,
        /// Nodes to back off (the online population at the boundary).
        nodes: Vec<u32>,
    },
    /// Re-seed one node's sampler from its online trusted neighbors.
    Rebootstrap {
        /// Window boundary the triggering alert was stamped at.
        t: f64,
        /// Triggering detector name.
        detector: &'static str,
        /// The starved / isolated node.
        node: u32,
    },
    /// Throttle one node's own-pseudonym contribution.
    Throttle {
        /// Window boundary the triggering alert was stamped at.
        t: f64,
        /// Triggering detector name.
        detector: &'static str,
        /// The over-represented hub.
        node: u32,
    },
}

/// Per-reaction application totals, surfaced as `remedy.*` gauges and by
/// [`crate::simulation::Simulation::remedy_counts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemedyCounts {
    /// Eviction-storm backoffs applied (one per triggering alert).
    pub backoffs: u64,
    /// Targeted re-bootstraps applied (one per implicated node).
    pub rebootstraps: u64,
    /// Contribution throttles applied (one per implicated hub).
    pub throttles: u64,
}

impl RemedyCounts {
    /// Total reactions applied.
    pub fn total(&self) -> u64 {
        self.backoffs + self.rebootstraps + self.throttles
    }
}

/// The remediation engine: alert consumer and reaction dispatcher.
#[derive(Debug)]
pub struct RemedyEngine {
    cfg: RemedyConfig,
    /// Per node: boundary time of the last re-bootstrap (`-inf` = never).
    last_rebootstrap: Vec<f64>,
    counts: RemedyCounts,
}

impl RemedyEngine {
    /// Builds an engine when `cfg.enabled`; `None` otherwise (the caller
    /// additionally requires a health monitor — no alerts, no reactions).
    pub fn maybe_new(cfg: &RemedyConfig, nodes: usize) -> Option<Self> {
        if !cfg.enabled {
            return None;
        }
        Some(Self {
            cfg: cfg.clone(),
            last_rebootstrap: vec![f64::NEG_INFINITY; nodes],
            counts: RemedyCounts::default(),
        })
    }

    /// Reactions applied so far, per kind.
    pub fn counts(&self) -> RemedyCounts {
        self.counts
    }

    /// Maps one window's alerts onto reaction decisions.
    ///
    /// Pure except for the per-node re-bootstrap cooldown stamps: a node
    /// implicated by both `starved_nodes` and `isolated_nodes` in the same
    /// window is re-bootstrapped once, and not again until
    /// [`RemedyConfig::rebootstrap_cooldown`] periods have passed.
    pub fn decide(&mut self, alerts: &[WindowAlert], online: &[bool]) -> Vec<RemedyDecision> {
        let mut out = Vec::new();
        for a in alerts {
            match a.detector {
                "eviction_storm" if self.cfg.backoff_on_eviction_storm => {
                    let nodes: Vec<u32> = online
                        .iter()
                        .enumerate()
                        .filter(|(_, on)| **on)
                        .map(|(v, _)| v as u32)
                        .collect();
                    if !nodes.is_empty() {
                        out.push(RemedyDecision::Backoff {
                            t: a.t,
                            detector: a.detector,
                            nodes,
                        });
                    }
                }
                "starved_nodes" | "isolated_nodes" if self.cfg.rebootstrap_starved => {
                    for &v in &a.nodes {
                        let slot = match self.last_rebootstrap.get_mut(v as usize) {
                            Some(slot) => slot,
                            None => continue,
                        };
                        if a.t - *slot < self.cfg.rebootstrap_cooldown {
                            continue;
                        }
                        *slot = a.t;
                        out.push(RemedyDecision::Rebootstrap {
                            t: a.t,
                            detector: a.detector,
                            node: v,
                        });
                    }
                }
                "indegree_skew" if self.cfg.throttle_indegree_skew => {
                    for &v in &a.nodes {
                        out.push(RemedyDecision::Throttle {
                            t: a.t,
                            detector: a.detector,
                            node: v,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Applies the decided reactions to the node cells and emits one
    /// `RemedyAction` event per decision (a no-op on a disabled recorder).
    ///
    /// Both executors call this at their health boundary: the sequential
    /// executor right after its `health_tick` rotation, the sharded
    /// executor at the window barrier after replaying the merged health
    /// observations — the same state snapshot for every shard layout.
    pub(crate) fn apply(
        &mut self,
        decisions: &[RemedyDecision],
        cells: &mut [NodeCell],
        trust: &Graph,
        recorder: &Recorder,
    ) {
        for d in decisions {
            match d {
                RemedyDecision::Backoff { t, detector, nodes } => {
                    for &v in nodes {
                        let cell = &mut cells[v as usize];
                        cell.shuffle_backoff = cell.shuffle_backoff.max(self.cfg.backoff_shuffles);
                    }
                    self.counts.backoffs += 1;
                    let affected = nodes.len() as u64;
                    recorder.event(*t, None, || Obs::RemedyAction {
                        reaction: "backoff".to_string(),
                        detector: (*detector).to_string(),
                        affected,
                    });
                }
                RemedyDecision::Rebootstrap { t, detector, node } => {
                    let now = SimTime::new(*t);
                    let v = *node as usize;
                    // Collect the online trusted neighbors' current
                    // pseudonyms first (immutable pass), then feed them to
                    // the starved node (mutable pass).
                    let mut offers = Vec::new();
                    for &u in trust.neighbors(v) {
                        if offers.len() >= self.cfg.rebootstrap_max_offers {
                            break;
                        }
                        let peer = &cells[u as usize];
                        if !peer.churn.is_online() {
                            continue;
                        }
                        if let Some(p) = peer.node.own_pseudonym(now) {
                            offers.push(p);
                        }
                    }
                    let cell = &mut cells[v];
                    let mut accepted = 0u64;
                    for p in offers {
                        cell.node.cache.insert(p, now);
                        if cell.node.sampler.offer(p, now) {
                            accepted += 1;
                        }
                    }
                    // Fresh links are a state change: re-arm suppressed
                    // shuffling so the node gossips its way back.
                    if accepted > 0 {
                        cell.stable_ticks = 0;
                    }
                    self.counts.rebootstraps += 1;
                    recorder.event(*t, Some(*node), || Obs::RemedyAction {
                        reaction: "rebootstrap".to_string(),
                        detector: (*detector).to_string(),
                        affected: accepted,
                    });
                }
                RemedyDecision::Throttle { t, detector, node } => {
                    let until = SimTime::new(*t + self.cfg.throttle_periods);
                    cells[*node as usize].node.throttle_contribution(until);
                    self.counts.throttles += 1;
                    recorder.event(*t, Some(*node), || Obs::RemedyAction {
                        reaction: "throttle".to_string(),
                        detector: (*detector).to_string(),
                        affected: 1,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RemedyConfig {
        RemedyConfig::all_on()
    }

    fn alert(detector: &'static str, t: f64, nodes: Vec<u32>) -> WindowAlert {
        WindowAlert {
            t,
            detector,
            critical: false,
            value: 1.0,
            threshold: 0.5,
            nodes,
        }
    }

    #[test]
    fn disabled_config_yields_no_engine() {
        assert!(RemedyEngine::maybe_new(&RemedyConfig::default(), 4).is_none());
        assert!(RemedyEngine::maybe_new(&cfg(), 4).is_some());
    }

    #[test]
    fn eviction_storm_backs_off_online_nodes() {
        let mut eng = RemedyEngine::maybe_new(&cfg(), 4).unwrap();
        let out = eng.decide(
            &[alert("eviction_storm", 5.0, vec![])],
            &[true, false, true, true],
        );
        assert_eq!(
            out,
            vec![RemedyDecision::Backoff {
                t: 5.0,
                detector: "eviction_storm",
                nodes: vec![0, 2, 3],
            }]
        );
    }

    #[test]
    fn rebootstrap_respects_cooldown_and_dedups() {
        let mut eng = RemedyEngine::maybe_new(&cfg(), 4).unwrap();
        // Starved and isolated implicate node 1 in the same window: one
        // re-bootstrap, not two.
        let out = eng.decide(
            &[
                alert("starved_nodes", 5.0, vec![1, 2]),
                alert("isolated_nodes", 5.0, vec![1]),
            ],
            &[true; 4],
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out
            .iter()
            .all(|d| matches!(d, RemedyDecision::Rebootstrap { node: 1 | 2, .. })));
        // Within the cooldown nothing fires; after it, it does.
        assert!(eng
            .decide(&[alert("starved_nodes", 10.0, vec![1])], &[true; 4])
            .is_empty());
        assert_eq!(
            eng.decide(&[alert("starved_nodes", 15.0, vec![1])], &[true; 4])
                .len(),
            1
        );
    }

    #[test]
    fn skew_throttles_each_hub() {
        let mut eng = RemedyEngine::maybe_new(&cfg(), 4).unwrap();
        let out = eng.decide(&[alert("indegree_skew", 5.0, vec![0, 3])], &[true; 4]);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], RemedyDecision::Throttle { node: 0, .. }));
        assert!(matches!(out[1], RemedyDecision::Throttle { node: 3, .. }));
    }

    #[test]
    fn per_reaction_flags_gate_independently() {
        let mut eng = RemedyEngine::maybe_new(
            &RemedyConfig {
                backoff_on_eviction_storm: false,
                throttle_indegree_skew: false,
                ..cfg()
            },
            4,
        )
        .unwrap();
        let out = eng.decide(
            &[
                alert("eviction_storm", 5.0, vec![]),
                alert("starved_nodes", 5.0, vec![2]),
                alert("indegree_skew", 5.0, vec![0]),
            ],
            &[true; 4],
        );
        assert_eq!(
            out,
            vec![RemedyDecision::Rebootstrap {
                t: 5.0,
                detector: "starved_nodes",
                node: 2,
            }]
        );
    }

    #[test]
    fn unknown_detectors_are_ignored() {
        let mut eng = RemedyEngine::maybe_new(&cfg(), 4).unwrap();
        assert!(eng
            .decide(
                &[
                    alert("shuffle_failure_burst", 5.0, vec![]),
                    alert("pseudonym_expiry_stampede", 5.0, vec![]),
                ],
                &[true; 4]
            )
            .is_empty());
    }
}
