//! The Brahms-style min-wise pseudonym sampler (Section III-D2).
//!
//! Each node keeps a list `L` of `S` slots. Each slot holds a pair
//! `(P, R)`: `R` is a fixed random reference value chosen at start-up and
//! never changed; `P` is the sampled pseudonym (possibly empty). A received
//! pseudonym `P'` replaces `P` when
//!
//! 1. the slot is empty, or
//! 2. `P'` is numerically closer to `R` than `P`, or
//! 3. `P'` is as close to `R` as `P` but expires later.
//!
//! Because each slot retains the minimum-distance pseudonym ever offered to
//! it, the set of kept pseudonyms "will always be a random sample of all
//! the pseudonyms `n` has received ... regardless of how frequently any
//! pseudonym is received" — the property (from Brahms) that defeats
//! frequency-biased gossip.

use crate::config::DistanceMetric;
use crate::pseudonym::{Pseudonym, PseudonymId};
use rand::Rng;
use std::collections::HashMap;
use veil_sim::SimTime;

/// One sampler slot: a fixed reference value plus the current minimum.
#[derive(Debug, Clone, Copy)]
struct Slot {
    reference: u128,
    entry: Option<Pseudonym>,
}

/// The per-node pseudonym sampler.
///
/// Tracks, besides the slots themselves, the *link set* — the distinct
/// pseudonyms present in at least one slot — and cumulative counters of
/// link additions and removals, which drive the paper's link-replacement
/// metric (Figure 9).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use veil_core::config::DistanceMetric;
/// use veil_core::pseudonym::PseudonymService;
/// use veil_core::sampler::Sampler;
/// use veil_sim::SimTime;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut sampler = Sampler::new(8, DistanceMetric::Absolute, true, &mut rng);
/// let mut svc = PseudonymService::new(1);
/// let p = svc.mint(3, SimTime::ZERO, None);
/// sampler.offer(p, SimTime::ZERO);
/// assert_eq!(sampler.link_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Sampler {
    metric: DistanceMetric,
    minwise: bool,
    slots: Vec<Slot>,
    refcount: HashMap<PseudonymId, u32>,
    next_ring: usize,
    additions: u64,
    removals: u64,
}

impl Sampler {
    /// Creates a sampler with `slot_count` slots whose reference values are
    /// drawn from `rng` ("the reference values are never removed or changed
    /// afterwards").
    ///
    /// `minwise = false` disables rule 2/3 and instead fills slots
    /// round-robin with the most recently received pseudonyms — the
    /// ablation baseline showing why Brahms-style sampling matters.
    pub fn new<R: Rng + ?Sized>(
        slot_count: usize,
        metric: DistanceMetric,
        minwise: bool,
        rng: &mut R,
    ) -> Self {
        let slots = (0..slot_count)
            .map(|_| Slot {
                reference: rng.gen(),
                entry: None,
            })
            .collect();
        Self {
            metric,
            minwise,
            slots,
            refcount: HashMap::new(),
            next_ring: 0,
            additions: 0,
            removals: 0,
        }
    }

    /// Number of slots `S`.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of distinct pseudonyms currently sampled (the pseudonym-link
    /// count; at most `slot_count`).
    pub fn link_count(&self) -> usize {
        self.refcount.len()
    }

    /// Whether the pseudonym with this id occupies at least one slot.
    pub fn contains(&self, id: PseudonymId) -> bool {
        self.refcount.contains_key(&id)
    }

    /// The distinct sampled pseudonyms — the node's pseudonym links.
    pub fn links(&self) -> Vec<Pseudonym> {
        let mut seen = HashMap::with_capacity(self.refcount.len());
        for slot in &self.slots {
            if let Some(p) = slot.entry {
                seen.entry(p.id()).or_insert(p);
            }
        }
        let mut out: Vec<Pseudonym> = seen.into_values().collect();
        out.sort_unstable_by_key(|p| p.id());
        out
    }

    /// Cumulative count of pseudonyms that entered the link set.
    pub fn additions(&self) -> u64 {
        self.additions
    }

    /// Cumulative count of pseudonyms that left the link set — through
    /// displacement by closer pseudonyms or through expiry. This is the
    /// paper's "links replaced" quantity.
    pub fn removals(&self) -> u64 {
        self.removals
    }

    fn retain_entry(&mut self, p: Pseudonym) {
        let count = self.refcount.entry(p.id()).or_insert(0);
        if *count == 0 {
            self.additions += 1;
        }
        *count += 1;
    }

    fn release_entry(&mut self, p: Pseudonym) {
        let count = self
            .refcount
            .get_mut(&p.id())
            .expect("released pseudonym must be referenced");
        *count -= 1;
        if *count == 0 {
            self.refcount.remove(&p.id());
            self.removals += 1;
        }
    }

    fn set_slot(&mut self, idx: usize, p: Pseudonym) {
        if let Some(old) = self.slots[idx].entry {
            if old.id() == p.id() {
                return;
            }
            self.release_entry(old);
        }
        self.slots[idx].entry = Some(p);
        self.retain_entry(p);
    }

    /// Offers a received pseudonym to every slot, applying the paper's
    /// three replacement rules. Returns `true` if any slot changed.
    ///
    /// Expired pseudonyms are ignored. The caller (the protocol layer)
    /// filters out the node's own pseudonym.
    pub fn offer(&mut self, p: Pseudonym, now: SimTime) -> bool {
        if !p.is_valid(now) || self.slots.is_empty() {
            return false;
        }
        if !self.minwise {
            // Ablation: round-robin recency buffer.
            if self.contains(p.id()) {
                return false;
            }
            let idx = self.next_ring % self.slots.len();
            self.next_ring = self.next_ring.wrapping_add(1);
            self.set_slot(idx, p);
            return true;
        }
        let mut changed = false;
        for idx in 0..self.slots.len() {
            let slot = self.slots[idx];
            let replace = match slot.entry {
                None => true,
                Some(current) => {
                    if current.id() == p.id() {
                        false
                    } else {
                        let d_new = p.distance_to(slot.reference, self.metric);
                        let d_old = current.distance_to(slot.reference, self.metric);
                        d_new < d_old
                            || (d_new == d_old && expires_later(p.expires(), current.expires()))
                    }
                }
            };
            if replace {
                self.set_slot(idx, p);
                changed = true;
            }
        }
        changed
    }

    /// Clears every slot whose pseudonym has expired by `now`
    /// ("pseudonyms are automatically removed from `n.L` when they expire,
    /// and their corresponding slots become empty").
    ///
    /// Returns the number of distinct pseudonyms removed from the link set.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.removals;
        for idx in 0..self.slots.len() {
            if let Some(p) = self.slots[idx].entry {
                if !p.is_valid(now) {
                    self.slots[idx].entry = None;
                    self.release_entry(p);
                }
            }
        }
        (self.removals - before) as usize
    }

    /// Number of currently empty slots.
    pub fn empty_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.entry.is_none()).count()
    }

    /// Evicts the pseudonym with this id from every slot it occupies —
    /// Cyclon-style recovery when the peer behind it proves unresponsive.
    /// Returns whether anything was removed. The freed slots resume normal
    /// min-wise sampling, so a healthier pseudonym can take the place.
    pub fn evict(&mut self, id: PseudonymId) -> bool {
        let mut found = false;
        for idx in 0..self.slots.len() {
            if let Some(p) = self.slots[idx].entry {
                if p.id() == id {
                    self.slots[idx].entry = None;
                    self.release_entry(p);
                    found = true;
                }
            }
        }
        found
    }
}

/// `a` expires strictly later than `b` (where `None` means never).
fn expires_later(a: Option<SimTime>, b: Option<SimTime>) -> bool {
    match (a, b) {
        (None, None) => false,
        (None, Some(_)) => true,
        (Some(_), None) => false,
        (Some(x), Some(y)) => x > y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pseudonym::PseudonymService;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler(slots: usize, seed: u64) -> Sampler {
        let mut rng = StdRng::seed_from_u64(seed);
        Sampler::new(slots, DistanceMetric::Absolute, true, &mut rng)
    }

    #[test]
    fn empty_sampler_has_no_links() {
        let s = sampler(4, 1);
        assert_eq!(s.slot_count(), 4);
        assert_eq!(s.link_count(), 0);
        assert_eq!(s.empty_slots(), 4);
        assert!(s.links().is_empty());
    }

    #[test]
    fn zero_slot_sampler_rejects_everything() {
        let mut s = sampler(0, 1);
        let mut svc = PseudonymService::new(1);
        let p = svc.mint(0, SimTime::ZERO, None);
        assert!(!s.offer(p, SimTime::ZERO));
        assert_eq!(s.link_count(), 0);
    }

    #[test]
    fn evict_removes_pseudonym_from_all_slots() {
        let mut s = sampler(4, 9);
        let mut svc = PseudonymService::new(9);
        let p = svc.mint(0, SimTime::ZERO, None);
        s.offer(p, SimTime::ZERO);
        assert!(s.contains(p.id()));
        let removed_before = s.removals();
        assert!(s.evict(p.id()));
        assert!(!s.contains(p.id()));
        assert_eq!(s.link_count(), 0);
        assert_eq!(s.empty_slots(), 4);
        assert_eq!(s.removals(), removed_before + 1, "one link removal");
        assert!(!s.evict(p.id()), "second evict is a no-op");
        // The freed slots accept new samples again.
        let q = svc.mint(1, SimTime::ZERO, None);
        assert!(s.offer(q, SimTime::ZERO));
        assert!(s.contains(q.id()));
    }

    #[test]
    fn first_offer_fills_all_slots() {
        let mut s = sampler(4, 2);
        let mut svc = PseudonymService::new(2);
        let p = svc.mint(0, SimTime::ZERO, None);
        assert!(s.offer(p, SimTime::ZERO));
        assert_eq!(s.empty_slots(), 0);
        assert_eq!(s.link_count(), 1, "one distinct pseudonym in 4 slots");
        assert_eq!(s.additions(), 1);
    }

    #[test]
    fn closer_pseudonym_displaces() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = Sampler::new(1, DistanceMetric::Absolute, true, &mut rng);
        let reference = s.slots[0].reference;
        let mut svc = PseudonymService::new(3);
        // Mint until we find two pseudonyms with known distance ordering.
        let mut far = svc.mint(0, SimTime::ZERO, None);
        let mut near = svc.mint(1, SimTime::ZERO, None);
        if near.distance_to(reference, DistanceMetric::Absolute)
            > far.distance_to(reference, DistanceMetric::Absolute)
        {
            std::mem::swap(&mut far, &mut near);
        }
        s.offer(far, SimTime::ZERO);
        assert!(s.contains(far.id()));
        s.offer(near, SimTime::ZERO);
        assert!(s.contains(near.id()));
        assert!(!s.contains(far.id()));
        assert_eq!(s.removals(), 1);
        // The farther one can never displace the nearer one back.
        assert!(!s.offer(far, SimTime::ZERO));
    }

    #[test]
    fn kept_pseudonym_is_global_minimum() {
        // Property: after offering many pseudonyms, each slot holds the
        // minimum-distance one among all offered.
        let mut s = sampler(6, 4);
        let mut svc = PseudonymService::new(4);
        let offered: Vec<Pseudonym> = (0..200).map(|i| svc.mint(i, SimTime::ZERO, None)).collect();
        for &p in &offered {
            s.offer(p, SimTime::ZERO);
        }
        for slot in &s.slots {
            let kept = slot.entry.expect("slot filled");
            let kept_d = kept.distance_to(slot.reference, DistanceMetric::Absolute);
            let min_d = offered
                .iter()
                .map(|p| p.distance_to(slot.reference, DistanceMetric::Absolute))
                .min()
                .unwrap();
            assert_eq!(kept_d, min_d);
        }
    }

    #[test]
    fn equal_distance_prefers_later_expiry() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = Sampler::new(1, DistanceMetric::Absolute, true, &mut rng);
        let mut svc = PseudonymService::new(5);
        let a = svc.mint(0, SimTime::ZERO, Some(10.0));
        // Force an equal-distance comparison by reusing the same bits: the
        // only way in practice is a == b in bits, so craft via same distance
        // to a reference of a's own bits. Instead, test tie-break directly.
        assert!(super::expires_later(None, Some(SimTime::new(5.0))));
        assert!(super::expires_later(
            Some(SimTime::new(9.0)),
            Some(SimTime::new(5.0))
        ));
        assert!(!super::expires_later(Some(SimTime::new(5.0)), None));
        assert!(!super::expires_later(None, None));
        // Same pseudonym re-offered: no change, no double count.
        s.offer(a, SimTime::ZERO);
        assert!(!s.offer(a, SimTime::ZERO));
        assert_eq!(s.additions(), 1);
    }

    #[test]
    fn expired_offer_is_ignored() {
        let mut s = sampler(2, 6);
        let mut svc = PseudonymService::new(6);
        let p = svc.mint(0, SimTime::ZERO, Some(5.0));
        assert!(!s.offer(p, SimTime::new(5.0)));
        assert_eq!(s.link_count(), 0);
    }

    #[test]
    fn purge_expired_clears_slots_and_counts_removals() {
        let mut s = sampler(4, 7);
        let mut svc = PseudonymService::new(7);
        let p = svc.mint(0, SimTime::ZERO, Some(5.0));
        s.offer(p, SimTime::ZERO);
        assert_eq!(s.link_count(), 1);
        let removed = s.purge_expired(SimTime::new(6.0));
        assert_eq!(removed, 1, "one distinct pseudonym expired");
        assert_eq!(s.link_count(), 0);
        assert_eq!(s.empty_slots(), 4);
        assert_eq!(s.removals(), 1);
        // Idempotent.
        assert_eq!(s.purge_expired(SimTime::new(7.0)), 0);
    }

    #[test]
    fn links_are_distinct() {
        let mut s = sampler(8, 8);
        let mut svc = PseudonymService::new(8);
        for i in 0..3 {
            s.offer(svc.mint(i, SimTime::ZERO, None), SimTime::ZERO);
        }
        let links = s.links();
        let mut ids: Vec<_> = links.iter().map(|p| p.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), links.len());
        assert!(links.len() <= 3);
    }

    #[test]
    fn recency_mode_keeps_latest() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = Sampler::new(2, DistanceMetric::Absolute, false, &mut rng);
        let mut svc = PseudonymService::new(9);
        let ps: Vec<Pseudonym> = (0..5).map(|i| svc.mint(i, SimTime::ZERO, None)).collect();
        for &p in &ps {
            s.offer(p, SimTime::ZERO);
        }
        // Ring of 2 slots: only the last two survive.
        assert!(s.contains(ps[3].id()));
        assert!(s.contains(ps[4].id()));
        assert!(!s.contains(ps[0].id()));
        // Duplicates ignored.
        assert!(!s.offer(ps[4], SimTime::ZERO));
    }

    #[test]
    fn xor_metric_also_samples_minimum() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut s = Sampler::new(3, DistanceMetric::Xor, true, &mut rng);
        let refs: Vec<u128> = s.slots.iter().map(|sl| sl.reference).collect();
        let mut svc = PseudonymService::new(10);
        let offered: Vec<Pseudonym> = (0..100).map(|i| svc.mint(i, SimTime::ZERO, None)).collect();
        for &p in &offered {
            s.offer(p, SimTime::ZERO);
        }
        for (slot, &r) in s.slots.iter().zip(&refs) {
            let kept = slot.entry.unwrap();
            let min = offered.iter().map(|p| p.bits() ^ r).min().unwrap();
            assert_eq!(kept.bits() ^ r, min);
        }
    }

    #[test]
    fn refcount_tracks_multi_slot_occupancy() {
        // A pseudonym filling all slots then displaced from one still links.
        let mut s = sampler(3, 11);
        let mut svc = PseudonymService::new(11);
        let first = svc.mint(0, SimTime::ZERO, None);
        s.offer(first, SimTime::ZERO);
        assert_eq!(s.link_count(), 1);
        // Offer many more; first may lose some slots but the link set is
        // consistent: every slot entry appears in links().
        for i in 1..50 {
            s.offer(svc.mint(i, SimTime::ZERO, None), SimTime::ZERO);
        }
        let links = s.links();
        assert_eq!(links.len(), s.link_count());
        for slot in &s.slots {
            let p = slot.entry.unwrap();
            assert!(links.iter().any(|l| l.id() == p.id()));
        }
        assert_eq!(s.additions() - s.removals(), s.link_count() as u64);
    }
}
