//! Lowering: deterministic translation of a validated [`Scenario`] onto
//! the machinery that already exists — [`ExperimentParams`] carrying an
//! [`OverlayConfig`](crate::config::OverlayConfig) whose link layer holds
//! the [`FaultEpisode`] script derived from the phases.
//!
//! Lowering adds nothing the hand-built path cannot express: a scenario
//! run is *byte-identical* to a run built by writing the same structs by
//! hand (the conformance suite pins this). The rules:
//!
//! | phase          | lowers to                                              |
//! |----------------|--------------------------------------------------------|
//! | flash-crowd    | one `Blackout` over `[0, at)` (offline until the join) |
//! | blackout       | one `Blackout` over `[start, start + duration)`        |
//! | partition      | one `Partition` at `round(fraction·n)`                 |
//! | crash          | one `Crash` over `[start, start + duration)`           |
//! | churn-waves    | `waves` Blackouts, one per period, `duty·period` long  |
//! | creeping-loss  | `steps` Crashes over equal sub-intervals, region grows |
//! | eclipse        | one `Partition` at `round(victims·n)`                  |
//!
//! Node regions are `[round(from·n), round(from·n) + round(fraction·n))`,
//! clamped to the population. Episodes appear in phase declaration order,
//! which is why validation insists phases be declared in start order —
//! the hand-built equivalent must only mirror the declaration to get the
//! same bytes.

use super::schema::{GraphModel, LatencyKind, Phase, Scenario};
use super::ScenarioError;
use crate::config::{HealthConfig, LinkLayerConfig, OverlayConfig, RemedyConfig};
use crate::experiment::{ExperimentParams, SourceModel};
use veil_sim::fault::{EpisodeEffect, FaultConfig, FaultEpisode, LatencyDist};

/// A scenario lowered onto the existing experiment machinery. Feed
/// `params` to [`build_trust_graph`](crate::experiment::build_trust_graph)
/// and [`build_simulation`](crate::experiment::build_simulation) with
/// `alpha`, then run to `horizon` — exactly what a hand-written
/// experiment does.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// Graph + overlay + seed parameterization.
    pub params: ExperimentParams,
    /// Node availability for the churn model.
    pub alpha: f64,
    /// Run length in shuffle periods.
    pub horizon: f64,
}

/// Node region `[first, first + count)` for a `(from, fraction)` pair.
fn region(from: f64, fraction: f64, nodes: usize) -> (u32, u32) {
    let n = nodes as f64;
    let first = (from * n).round().min(n) as u32;
    let count = (fraction * n).round() as u32;
    let count = count.min(nodes as u32 - first);
    (first, count)
}

/// Boundary index splitting off the first `fraction` of nodes.
fn boundary(fraction: f64, nodes: usize) -> u32 {
    ((fraction * nodes as f64).round() as u32).min(nodes as u32)
}

/// The fault episodes a single phase lowers to, in schedule order. Pure
/// and total for validated phases; validation calls it too (to detect
/// overlapping blackout regions), so it must not assume validity beyond
/// finite numbers.
pub fn phase_episodes(phase: &Phase, nodes: usize) -> Vec<FaultEpisode> {
    match *phase {
        Phase::FlashCrowd { at, fraction, from } => {
            let (first, count) = region(from, fraction, nodes);
            vec![FaultEpisode {
                start: 0.0,
                end: at,
                effect: EpisodeEffect::Blackout { first, count },
            }]
        }
        Phase::Blackout {
            start,
            duration,
            fraction,
            from,
        } => {
            let (first, count) = region(from, fraction, nodes);
            vec![FaultEpisode {
                start,
                end: start + duration,
                effect: EpisodeEffect::Blackout { first, count },
            }]
        }
        Phase::Partition {
            start,
            duration,
            fraction,
        } => vec![FaultEpisode {
            start,
            end: start + duration,
            effect: EpisodeEffect::Partition {
                boundary: boundary(fraction, nodes),
            },
        }],
        Phase::Crash {
            start,
            duration,
            fraction,
            from,
        } => {
            let (first, count) = region(from, fraction, nodes);
            vec![FaultEpisode {
                start,
                end: start + duration,
                effect: EpisodeEffect::Crash { first, count },
            }]
        }
        Phase::ChurnWaves {
            start,
            period,
            duty,
            fraction,
            waves,
        } => {
            let (first, count) = region(0.0, fraction, nodes);
            (0..waves)
                .map(|k| {
                    let wave_start = start + k as f64 * period;
                    FaultEpisode {
                        start: wave_start,
                        end: wave_start + duty * period,
                        effect: EpisodeEffect::Blackout { first, count },
                    }
                })
                .collect()
        }
        Phase::CreepingLoss {
            start,
            end,
            steps,
            max_fraction,
        } => {
            let dt = (end - start) / steps as f64;
            (0..steps)
                .map(|i| {
                    let fraction = max_fraction * (i + 1) as f64 / steps as f64;
                    let (first, count) = region(0.0, fraction, nodes);
                    FaultEpisode {
                        start: start + i as f64 * dt,
                        end: start + (i + 1) as f64 * dt,
                        effect: EpisodeEffect::Crash { first, count },
                    }
                })
                .collect()
        }
        Phase::Eclipse {
            start,
            duration,
            victims,
        } => vec![FaultEpisode {
            start,
            end: start + duration,
            effect: EpisodeEffect::Partition {
                boundary: boundary(victims, nodes),
            },
        }],
    }
}

/// The `(first start, last end)` envelope of the scenario's
/// blackout-effect episodes that begin after t = 0, or `None` when there
/// are none. This is the outage the `recovery_time_at_most` assertion
/// measures against: a baseline is sampled before the first start, and
/// recovery probing begins at the last end. Flash crowds (blackouts from
/// t = 0) are excluded — no pre-outage baseline exists for them.
pub fn recovery_interval(s: &Scenario) -> Option<(f64, f64)> {
    let mut envelope: Option<(f64, f64)> = None;
    for phase in &s.phases {
        for ep in phase_episodes(phase, s.nodes) {
            if let EpisodeEffect::Blackout { .. } = ep.effect {
                if ep.start > 0.0 {
                    envelope = Some(match envelope {
                        None => (ep.start, ep.end),
                        Some((a, b)) => (a.min(ep.start), b.max(ep.end)),
                    });
                }
            }
        }
    }
    envelope
}

/// Lowers the link spec + phases into a link-layer config. Trivial fault
/// configs collapse to `Ideal`, keeping the fast path for fault-free
/// scenarios.
fn lower_link(s: &Scenario) -> LinkLayerConfig {
    let latency = if s.link.latency.mean <= 0.0 {
        LatencyDist::Constant { value: 0.0 }
    } else {
        match s.link.latency.dist {
            LatencyKind::Constant => LatencyDist::Constant {
                value: s.link.latency.mean,
            },
            LatencyKind::Exponential => LatencyDist::Exponential {
                mean: s.link.latency.mean,
            },
            LatencyKind::Pareto => LatencyDist::Pareto {
                shape: s.link.latency.shape,
                mean: s.link.latency.mean,
            },
        }
    };
    let fault = FaultConfig {
        drop_probability: s.link.loss,
        latency,
        episodes: s
            .phases
            .iter()
            .flat_map(|p| phase_episodes(p, s.nodes))
            .collect(),
    };
    if fault.is_trivial() {
        LinkLayerConfig::Ideal
    } else {
        LinkLayerConfig::Faulty(fault)
    }
}

/// Lowers a validated scenario. Call [`validate`](super::validate) first;
/// lowering re-checks nothing and a malformed scenario may produce a
/// config that `OverlayConfig::validate` rejects.
///
/// # Errors
///
/// Currently infallible for validated input; the `Result` keeps room for
/// lowering rules that can fail (and mirrors the rest of the pipeline).
pub fn lower(s: &Scenario) -> Result<Lowered, ScenarioError> {
    let overlay = OverlayConfig {
        cache_size: s.overlay.cache_size,
        shuffle_length: s.overlay.shuffle_length,
        target_links: s.overlay.target_links,
        shuffle_timeout: s.overlay.shuffle_timeout,
        shuffle_retry_budget: s.overlay.shuffle_retries,
        link: lower_link(s),
        health: HealthConfig {
            enabled: s.health.enabled,
            window: s.health.window,
            ..HealthConfig::default()
        },
        remedy: RemedyConfig {
            enabled: s.remediation.enabled,
            backoff_on_eviction_storm: s.remediation.backoff,
            rebootstrap_starved: s.remediation.rebootstrap,
            throttle_indegree_skew: s.remediation.throttle,
            backoff_shuffles: s.remediation.backoff_shuffles,
            rebootstrap_max_offers: s.remediation.rebootstrap_max_offers,
            rebootstrap_cooldown: s.remediation.rebootstrap_cooldown,
            throttle_periods: s.remediation.throttle_periods,
        },
        ..OverlayConfig::default()
    };
    let source = match s.graph.model {
        GraphModel::HolmeKim { attach, triad } => SourceModel::HolmeKim { attach, triad },
        GraphModel::DegreeMatched { avg_degree, triad } => {
            SourceModel::DegreeMatched { avg_degree, triad }
        }
    };
    let params = ExperimentParams {
        nodes: s.nodes,
        trust_f: s.graph.trust_f,
        mean_offline: s.mean_offline,
        lifetime_ratio: s.overlay.lifetime_ratio,
        warmup: s.horizon,
        seed: s.seed,
        overlay,
        source_multiplier: s.graph.source_multiplier,
        source,
    };
    Ok(Lowered {
        params,
        alpha: s.availability,
        horizon: s.horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Scenario {
        Scenario {
            nodes: 200,
            horizon: 50.0,
            ..Scenario::default()
        }
    }

    #[test]
    fn ideal_scenario_lowers_to_ideal_link() {
        let lowered = lower(&base()).unwrap();
        assert_eq!(lowered.params.overlay.link, LinkLayerConfig::Ideal);
        assert_eq!(lowered.params.warmup, 50.0);
        assert_eq!(lowered.alpha, 0.9);
        lowered.params.overlay.validate().unwrap();
    }

    #[test]
    fn blackout_phase_lowers_to_one_episode() {
        let mut s = base();
        s.phases.push(Phase::Blackout {
            start: 20.0,
            duration: 10.0,
            fraction: 0.5,
            from: 0.25,
        });
        let lowered = lower(&s).unwrap();
        let LinkLayerConfig::Faulty(fault) = &lowered.params.overlay.link else {
            panic!("expected faulty link");
        };
        assert_eq!(
            fault.episodes,
            vec![FaultEpisode {
                start: 20.0,
                end: 30.0,
                effect: EpisodeEffect::Blackout {
                    first: 50,
                    count: 100
                },
            }]
        );
    }

    #[test]
    fn flash_crowd_is_offline_from_zero() {
        let eps = phase_episodes(
            &Phase::FlashCrowd {
                at: 15.0,
                fraction: 0.25,
                from: 0.0,
            },
            200,
        );
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].start, 0.0);
        assert_eq!(eps[0].end, 15.0);
        assert_eq!(
            eps[0].effect,
            EpisodeEffect::Blackout {
                first: 0,
                count: 50
            }
        );
    }

    #[test]
    fn churn_waves_repeat_the_same_region() {
        let eps = phase_episodes(
            &Phase::ChurnWaves {
                start: 10.0,
                period: 8.0,
                duty: 0.5,
                fraction: 0.3,
                waves: 3,
            },
            100,
        );
        assert_eq!(eps.len(), 3);
        assert_eq!(eps[0].start, 10.0);
        assert_eq!(eps[0].end, 14.0);
        assert_eq!(eps[2].start, 26.0);
        for ep in &eps {
            assert_eq!(
                ep.effect,
                EpisodeEffect::Blackout {
                    first: 0,
                    count: 30
                }
            );
        }
    }

    #[test]
    fn creeping_loss_grows_the_region() {
        let eps = phase_episodes(
            &Phase::CreepingLoss {
                start: 10.0,
                end: 30.0,
                steps: 4,
                max_fraction: 0.4,
            },
            100,
        );
        assert_eq!(eps.len(), 4);
        let counts: Vec<u32> = eps
            .iter()
            .map(|ep| match ep.effect {
                EpisodeEffect::Crash { count, .. } => count,
                _ => panic!("expected crash"),
            })
            .collect();
        assert_eq!(counts, vec![10, 20, 30, 40]);
        assert_eq!(eps[0].start, 10.0);
        assert_eq!(eps[3].end, 30.0);
    }

    #[test]
    fn eclipse_lowers_to_partition() {
        let eps = phase_episodes(
            &Phase::Eclipse {
                start: 5.0,
                duration: 10.0,
                victims: 0.1,
            },
            200,
        );
        assert_eq!(eps[0].effect, EpisodeEffect::Partition { boundary: 20 });
    }

    #[test]
    fn remediation_lowers_onto_remedy_config() {
        let mut s = base();
        s.health.enabled = true;
        s.remediation.enabled = true;
        s.remediation.backoff = false;
        s.remediation.rebootstrap_max_offers = 4;
        let lowered = lower(&s).unwrap();
        let remedy = &lowered.params.overlay.remedy;
        assert!(remedy.enabled);
        assert!(!remedy.backoff_on_eviction_storm);
        assert!(remedy.rebootstrap_starved);
        assert_eq!(remedy.rebootstrap_max_offers, 4);
        lowered.params.overlay.validate().unwrap();

        // Defaults lower to the default config — off stays byte-identical.
        let lowered = lower(&base()).unwrap();
        assert!(lowered.params.overlay.remedy.is_default());
    }

    #[test]
    fn recovery_interval_spans_blackout_envelope() {
        let mut s = base();
        assert_eq!(recovery_interval(&s), None);
        // A flash crowd alone gives no envelope (its blackout starts at 0).
        s.phases.push(Phase::FlashCrowd {
            at: 10.0,
            fraction: 0.2,
            from: 0.5,
        });
        assert_eq!(recovery_interval(&s), None);
        s.phases.push(Phase::ChurnWaves {
            start: 15.0,
            period: 10.0,
            duty: 0.5,
            fraction: 0.3,
            waves: 2,
        });
        assert_eq!(recovery_interval(&s), Some((15.0, 30.0)));
    }

    #[test]
    fn lowered_config_passes_validation_with_phases() {
        let mut s = base();
        s.link.loss = 0.05;
        s.phases.push(Phase::Crash {
            start: 10.0,
            duration: 5.0,
            fraction: 0.2,
            from: 0.0,
        });
        let lowered = lower(&s).unwrap();
        lowered.params.overlay.validate().unwrap();
    }
}
