//! Declarative scenarios: parse → validate → lower → run.
//!
//! A scenario file (TOML subset, or JSON with the same shape) names a
//! complete chaos/load experiment: graph, overlay overrides, ambient link
//! faults, a sequence of workload *phases* (flash crowds, blackouts,
//! churn waves, creeping loss, partitions, eclipse pressure), an optional
//! observer-attack audit, and pass/fail assertions over the run's health
//! alerts, coverage, and trace report.
//!
//! The pipeline is strictly layered so each stage is testable alone:
//!
//! 1. [`parser`] — spanned TOML-subset / JSON front-end producing a value
//!    tree where every key and value remembers its line and column.
//! 2. [`schema`] — typed [`Scenario`](schema::Scenario) built from that
//!    tree; unknown keys, wrong types, unknown phase kinds and detector
//!    names are rejected here with precise spans.
//! 3. [`validate`] — semantic checks spanning fields (phase ordering,
//!    overlapping blackout regions, ranges, assertion/attack coherence).
//! 4. [`lower`] — deterministic translation onto the existing machinery:
//!    `ExperimentParams` + `OverlayConfig` + `FaultEpisode` scripts. A
//!    scenario run is byte-identical to the equivalent hand-built config.
//! 5. [`runner`] — executes a lowered scenario (optionally overriding
//!    seed/shards), evaluates assertions, and sweeps campaigns in
//!    parallel via `veil-par`.

pub mod lower;
pub mod parser;
pub mod runner;
pub mod schema;
pub mod validate;

pub use lower::{lower, Lowered};
pub use runner::{
    canonical_trace_jsonl, run_campaign, run_scenario, run_scenario_with, with_global_recorder,
    AttackEval, AttackFindings, CampaignReport, CampaignSpec, RunOverrides, ScenarioOutcome,
    ScenarioRun,
};
pub use schema::{Assertions, AttackSpec, GraphModel, Phase, RemedySpec, Scenario};
pub use validate::validate;

use std::fmt;
use std::path::Path;

/// A 1-based line/column position in a scenario source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based source line; 0 for synthetic nodes (JSON input,
    /// programmatically built scenarios).
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Span {
    /// The synthetic span (no source location).
    pub const NONE: Span = Span { line: 0, col: 0 };

    /// A concrete source position.
    pub const fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }

    /// Whether this span points at real source text.
    pub fn is_real(self) -> bool {
        self.line > 0
    }
}

/// A scenario-pipeline error: a message plus, when it came from source
/// text, the position it points at. Render with [`render_error`] for the
/// full caret diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError {
    /// Human-readable description of what is wrong.
    pub message: String,
    /// Source position, when the error maps to one.
    pub span: Option<Span>,
}

impl ScenarioError {
    /// An error with no source position.
    pub fn new(message: impl Into<String>) -> Self {
        ScenarioError {
            message: message.into(),
            span: None,
        }
    }

    /// An error pointing at `span` (synthetic spans degrade to no
    /// position).
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        ScenarioError {
            message: message.into(),
            span: span.is_real().then_some(span),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(
                f,
                "{} (line {}, column {})",
                self.message, span.line, span.col
            ),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Renders `err` as a rustc-style diagnostic against `source`:
///
/// ```text
/// error: unknown key `cache_siz` in [overlay] (did you mean `cache_size`?)
///   --> scenarios/demo.toml:7:1
///    |
///  7 | cache_siz = 80
///    | ^
/// ```
///
/// Falls back to `error: {message}` when the error has no span or the
/// span's line is out of range. This exact text is pinned by the golden
/// tests, so diagnostics cannot silently regress.
pub fn render_error(err: &ScenarioError, file_label: &str, source: &str) -> String {
    let mut out = format!("error: {}\n", err.message);
    let Some(span) = err.span else {
        return out;
    };
    let Some(line_text) = source.lines().nth(span.line as usize - 1) else {
        return out;
    };
    let num = span.line.to_string();
    let gutter = " ".repeat(num.len());
    out.push_str(&format!("  --> {file_label}:{}:{}\n", span.line, span.col));
    out.push_str(&format!("{gutter} |\n"));
    out.push_str(&format!("{num} | {line_text}\n"));
    let caret_pad = " ".repeat(span.col.saturating_sub(1) as usize);
    out.push_str(&format!("{gutter} | {caret_pad}^\n"));
    out
}

/// The on-disk encodings a scenario file may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// The TOML subset documented in DESIGN.md §11.
    Toml,
    /// JSON with the identical shape (phases under a `"phase"` array).
    Json,
}

/// Parses and structurally checks scenario text. Semantic validation is a
/// separate step ([`validate`]) so callers can distinguish "unreadable"
/// from "readable but inconsistent".
///
/// # Errors
///
/// Syntax errors, unknown keys, and type mismatches, with spans for TOML
/// input (JSON input yields spanless errors).
pub fn parse_scenario_str(
    text: &str,
    format: Format,
    default_name: &str,
) -> Result<(Scenario, schema::ScenarioSpans), ScenarioError> {
    let doc = match format {
        Format::Toml => parser::parse_document(text)?,
        Format::Json => {
            let value: serde_json::Value = serde_json::from_str(text)
                .map_err(|e| ScenarioError::new(format!("invalid JSON: {e}")))?;
            let spanned = parser::from_json(&value)?;
            match spanned.value {
                parser::Value::Table(t) => t,
                other => {
                    return Err(ScenarioError::new(format!(
                        "scenario JSON must be an object, got {}",
                        other.type_name()
                    )))
                }
            }
        }
    };
    schema::build_scenario(&doc, default_name)
}

/// Loads a scenario from `path`, choosing the format by extension
/// (`.json` → JSON, anything else → TOML) and defaulting the scenario
/// name to the file stem. Runs structural checks only, like
/// [`parse_scenario_str`].
///
/// # Errors
///
/// I/O failures and everything [`parse_scenario_str`] rejects.
pub fn parse_scenario_path(
    path: &Path,
) -> Result<(Scenario, schema::ScenarioSpans), ScenarioError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::new(format!("cannot read {}: {e}", path.display())))?;
    let format = match path.extension().and_then(|e| e.to_str()) {
        Some("json") => Format::Json,
        _ => Format::Toml,
    };
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unnamed");
    parse_scenario_str(&text, format, stem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_error_points_at_source() {
        let src = "nodes = 100\ncache_siz = 80\n";
        let err = ScenarioError::at(Span::new(2, 1), "unknown key `cache_siz`");
        let text = render_error(&err, "demo.toml", src);
        assert!(text.contains("error: unknown key `cache_siz`"), "{text}");
        assert!(text.contains("--> demo.toml:2:1"), "{text}");
        assert!(text.contains("2 | cache_siz = 80"), "{text}");
        let caret_line = text.lines().last().unwrap();
        assert_eq!(caret_line, "  | ^");
    }

    #[test]
    fn render_error_without_span_is_plain() {
        let err = ScenarioError::new("boom");
        assert_eq!(render_error(&err, "x.toml", ""), "error: boom\n");
    }

    #[test]
    fn json_and_toml_parse_to_equal_scenarios() {
        let toml = "nodes = 120\nseed = 7\n[overlay]\ncache_size = 64\n";
        let json = r#"{"nodes": 120, "seed": 7, "overlay": {"cache_size": 64}}"#;
        let (a, _) = parse_scenario_str(toml, Format::Toml, "x").unwrap();
        let (b, _) = parse_scenario_str(json, Format::Json, "x").unwrap();
        assert_eq!(a, b);
    }
}
