//! Spanned TOML-subset parser for scenario files.
//!
//! The workspace vendors no TOML crate, so scenarios are parsed by this
//! deliberately small, line-oriented reader. It covers the subset the
//! scenario format needs — bare and quoted keys, `[table]` / `[[array]]`
//! headers (dotted paths allowed), strings, integers, floats (including
//! `inf`), booleans, single-line arrays and inline tables, `#` comments —
//! and attaches a [`Span`] (line and column, both 1-based) to every key and
//! value so diagnostics can point at the offending character, rustc-style.
//!
//! JSON scenarios share the same downstream schema builder: [`from_json`]
//! converts a `serde_json::Value` into the identical spanned tree (with
//! null spans, since the vendored JSON parser does not track positions).

use super::{ScenarioError, Span};

/// A value together with the source position it was parsed from.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned<T> {
    /// The parsed value.
    pub value: T,
    /// Where it came from (line/col are 0 for synthesized values).
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Wraps `value` with `span`.
    pub fn new(value: T, span: Span) -> Self {
        Self { value, span }
    }

    /// Wraps a value that has no source position (JSON input, defaults).
    pub fn synthetic(value: T) -> Self {
        Self {
            value,
            span: Span::NONE,
        }
    }
}

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal (also produced by `inf` / `-inf`).
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-line `[a, b, c]` array.
    Array(Vec<Spanned<Value>>),
    /// A `[header]`, `[[header]]` element or `{ inline = "table" }`.
    Table(Table),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// An insertion-ordered table of `key = value` entries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    entries: Vec<(Spanned<String>, Spanned<Value>)>,
}

impl Table {
    /// The entries in file order.
    pub fn entries(&self) -> &[(Spanned<String>, Spanned<Value>)] {
        &self.entries
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Spanned<Value>> {
        self.entries
            .iter()
            .find(|(k, _)| k.value == key)
            .map(|(_, v)| v)
    }

    /// The span of a key, if present.
    pub fn key_span(&self, key: &str) -> Option<Span> {
        self.entries
            .iter()
            .find(|(k, _)| k.value == key)
            .map(|(k, _)| k.span)
    }

    /// Inserts an entry, rejecting duplicates.
    fn insert(&mut self, key: Spanned<String>, value: Spanned<Value>) -> Result<(), ScenarioError> {
        if self.get(&key.value).is_some() {
            return Err(ScenarioError::at(
                key.span,
                format!("duplicate key `{}`", key.value),
            ));
        }
        self.entries.push((key, value));
        Ok(())
    }
}

/// Parses a TOML-subset document into its root table.
///
/// # Errors
///
/// Returns a [`ScenarioError`] with the line/column of the first offending
/// character.
pub fn parse_document(text: &str) -> Result<Table, ScenarioError> {
    let mut root = Table::default();
    // Path of the table currently receiving `key = value` lines.
    let mut current: Vec<String> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw_line);
        let trimmed = line.trim_end();
        let first = match trimmed.find(|c: char| !c.is_whitespace()) {
            None => continue,
            Some(i) => i,
        };
        let span = Span::new(line_no, first as u32 + 1);
        let body = &trimmed[first..];
        if let Some(header) = body.strip_prefix("[[") {
            let inner = header.strip_suffix("]]").ok_or_else(|| {
                ScenarioError::at(span, "array-of-tables header is missing `]]`".to_string())
            })?;
            let path = parse_header_path(inner, span)?;
            open_array_of_tables(&mut root, &path, span)?;
            current = path;
        } else if let Some(header) = body.strip_prefix('[') {
            let inner = header.strip_suffix(']').ok_or_else(|| {
                ScenarioError::at(span, "table header is missing `]`".to_string())
            })?;
            let path = parse_header_path(inner, span)?;
            open_table(&mut root, &path, span, true)?;
            current = path;
        } else {
            let (key, value) = parse_key_value(trimmed, first, line_no)?;
            let table = navigate(&mut root, &current, span)?;
            table.insert(key, value)?;
        }
    }
    Ok(root)
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits a dotted header path (`link.latency`) into segments.
fn parse_header_path(inner: &str, span: Span) -> Result<Vec<String>, ScenarioError> {
    let mut path = Vec::new();
    for segment in inner.split('.') {
        let segment = segment.trim();
        if segment.is_empty() || !segment.chars().all(is_bare_key_char) {
            return Err(ScenarioError::at(
                span,
                format!("invalid table header segment `{segment}`"),
            ));
        }
        path.push(segment.to_string());
    }
    Ok(path)
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Walks `path` from `root`, descending into the last element of any
/// array-of-tables along the way, creating missing tables.
fn navigate<'a>(
    root: &'a mut Table,
    path: &[String],
    span: Span,
) -> Result<&'a mut Table, ScenarioError> {
    let mut table = root;
    for segment in path {
        let idx = match table.entries.iter().position(|(k, _)| k.value == *segment) {
            Some(i) => i,
            None => {
                table.entries.push((
                    Spanned::new(segment.clone(), span),
                    Spanned::new(Value::Table(Table::default()), span),
                ));
                table.entries.len() - 1
            }
        };
        table = match &mut table.entries[idx].1.value {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut() {
                Some(Spanned {
                    value: Value::Table(t),
                    ..
                }) => t,
                _ => {
                    return Err(ScenarioError::at(
                        span,
                        format!("`{segment}` is not a table"),
                    ))
                }
            },
            _ => {
                return Err(ScenarioError::at(
                    span,
                    format!("`{segment}` is already defined as a value, not a table"),
                ))
            }
        };
    }
    Ok(table)
}

/// Handles a `[path]` header. `explicit` headers may not redefine a table
/// that was already opened with its own header.
fn open_table(
    root: &mut Table,
    path: &[String],
    span: Span,
    explicit: bool,
) -> Result<(), ScenarioError> {
    let (parent, last) = path.split_at(path.len() - 1);
    let table = navigate(root, parent, span)?;
    let last = &last[0];
    match table.entries.iter().position(|(k, _)| k.value == *last) {
        None => {
            table.entries.push((
                Spanned::new(last.clone(), span),
                Spanned::new(Value::Table(Table::default()), span),
            ));
            Ok(())
        }
        Some(i) => match &table.entries[i].1.value {
            // Re-opening is only legal for tables created implicitly by a
            // dotted child header; an explicit duplicate is an error.
            Value::Table(_) if explicit && table.entries[i].0.span != span => Err(
                ScenarioError::at(span, format!("table `{last}` is defined twice")),
            ),
            Value::Table(_) => Ok(()),
            other => Err(ScenarioError::at(
                span,
                format!("`{last}` is already a {}", other.type_name()),
            )),
        },
    }
}

/// Handles a `[[path]]` header: appends a fresh table to the array at
/// `path`, creating the array on first use.
fn open_array_of_tables(
    root: &mut Table,
    path: &[String],
    span: Span,
) -> Result<(), ScenarioError> {
    let (parent, last) = path.split_at(path.len() - 1);
    let table = navigate(root, parent, span)?;
    let last = &last[0];
    match table.entries.iter().position(|(k, _)| k.value == *last) {
        None => {
            table.entries.push((
                Spanned::new(last.clone(), span),
                Spanned::new(
                    Value::Array(vec![Spanned::new(Value::Table(Table::default()), span)]),
                    span,
                ),
            ));
            Ok(())
        }
        Some(i) => match &mut table.entries[i].1.value {
            Value::Array(items) => {
                items.push(Spanned::new(Value::Table(Table::default()), span));
                Ok(())
            }
            other => Err(ScenarioError::at(
                span,
                format!("`{last}` is already a {}", other.type_name()),
            )),
        },
    }
}

/// Parses one `key = value` line (offset `first` into the line).
fn parse_key_value(
    line: &str,
    first: usize,
    line_no: u32,
) -> Result<(Spanned<String>, Spanned<Value>), ScenarioError> {
    let mut cur = Cursor::new(line, line_no);
    cur.i = first;
    let key = cur.parse_key()?;
    cur.skip_ws();
    if !cur.eat('=') {
        return Err(ScenarioError::at(
            cur.span(),
            "expected `=` after key".to_string(),
        ));
    }
    cur.skip_ws();
    if cur.at_end() {
        return Err(ScenarioError::at(
            cur.span(),
            format!("key `{}` has no value", key.value),
        ));
    }
    let value = cur.parse_value()?;
    cur.skip_ws();
    if !cur.at_end() {
        return Err(ScenarioError::at(
            cur.span(),
            format!("unexpected trailing characters `{}`", cur.rest()),
        ));
    }
    Ok((key, value))
}

/// Character cursor over one line.
struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
}

impl Cursor {
    fn new(raw: &str, line: u32) -> Self {
        Self {
            chars: raw.chars().collect(),
            i: 0,
            line,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.i as u32 + 1)
    }

    fn at_end(&self) -> bool {
        self.i >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.i += 1;
        }
    }

    fn rest(&self) -> String {
        self.chars[self.i..].iter().collect()
    }

    fn parse_key(&mut self) -> Result<Spanned<String>, ScenarioError> {
        let span = self.span();
        if self.peek() == Some('"') {
            let value = self.parse_string()?;
            return Ok(Spanned::new(value, span));
        }
        let start = self.i;
        while matches!(self.peek(), Some(c) if is_bare_key_char(c)) {
            self.i += 1;
        }
        if self.i == start {
            return Err(ScenarioError::at(span, "expected a key".to_string()));
        }
        let key: String = self.chars[start..self.i].iter().collect();
        if self.peek() == Some('.') {
            return Err(ScenarioError::at(
                span,
                format!("dotted key `{key}.…` is not supported; use a [table] header"),
            ));
        }
        Ok(Spanned::new(key, span))
    }

    fn parse_string(&mut self) -> Result<String, ScenarioError> {
        let span = self.span();
        debug_assert_eq!(self.peek(), Some('"'));
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(ScenarioError::at(span, "unterminated string".to_string()));
                }
                Some('"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.i += 1;
                    let escaped = self.peek().ok_or_else(|| {
                        ScenarioError::at(span, "unterminated string".to_string())
                    })?;
                    out.push(match escaped {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '"' => '"',
                        '\\' => '\\',
                        other => {
                            return Err(ScenarioError::at(
                                self.span(),
                                format!("unsupported escape `\\{other}`"),
                            ))
                        }
                    });
                    self.i += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Spanned<Value>, ScenarioError> {
        let span = self.span();
        match self.peek() {
            Some('"') => {
                let s = self.parse_string()?;
                Ok(Spanned::new(Value::Str(s), span))
            }
            Some('[') => {
                self.i += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.eat(']') {
                        break;
                    }
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    if self.eat(',') {
                        continue;
                    }
                    if self.eat(']') {
                        break;
                    }
                    return Err(ScenarioError::at(
                        self.span(),
                        "expected `,` or `]` in array".to_string(),
                    ));
                }
                Ok(Spanned::new(Value::Array(items), span))
            }
            Some('{') => {
                self.i += 1;
                let mut table = Table::default();
                loop {
                    self.skip_ws();
                    if self.eat('}') {
                        break;
                    }
                    let key = self.parse_key()?;
                    self.skip_ws();
                    if !self.eat('=') {
                        return Err(ScenarioError::at(
                            self.span(),
                            "expected `=` in inline table".to_string(),
                        ));
                    }
                    self.skip_ws();
                    let value = self.parse_value()?;
                    table.insert(key, value)?;
                    self.skip_ws();
                    if self.eat(',') {
                        continue;
                    }
                    if self.eat('}') {
                        break;
                    }
                    return Err(ScenarioError::at(
                        self.span(),
                        "expected `,` or `}` in inline table".to_string(),
                    ));
                }
                Ok(Spanned::new(Value::Table(table), span))
            }
            Some(_) => self.parse_scalar(span),
            None => Err(ScenarioError::at(span, "expected a value".to_string())),
        }
    }

    fn parse_scalar(&mut self, span: Span) -> Result<Spanned<Value>, ScenarioError> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if !c.is_whitespace() && !matches!(c, ',' | ']' | '}'))
        {
            self.i += 1;
        }
        let word: String = self.chars[start..self.i].iter().collect();
        let value = match word.as_str() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            "inf" | "+inf" => Value::Float(f64::INFINITY),
            "-inf" => Value::Float(f64::NEG_INFINITY),
            _ => {
                let digits: String = word.chars().filter(|&c| c != '_').collect();
                if digits.contains(['.', 'e', 'E'])
                    || (digits.starts_with(['+', '-']) && digits[1..].contains(['.', 'e', 'E']))
                {
                    match digits.parse::<f64>() {
                        Ok(f) => Value::Float(f),
                        Err(_) => {
                            return Err(ScenarioError::at(span, format!("invalid value `{word}`")))
                        }
                    }
                } else {
                    match digits.parse::<i64>() {
                        Ok(n) => Value::Int(n),
                        Err(_) => {
                            return Err(ScenarioError::at(span, format!("invalid value `{word}`")))
                        }
                    }
                }
            }
        };
        Ok(Spanned::new(value, span))
    }
}

/// Converts a parsed JSON document into the same spanned tree the TOML
/// parser produces (spans are all [`Span::NONE`]). JSON and TOML scenarios
/// therefore share one schema builder and produce identical [`super::Scenario`]
/// values.
///
/// # Errors
///
/// Returns an error for JSON nulls or mixed scalar/table arrays, which have
/// no TOML counterpart.
pub fn from_json(value: &serde_json::Value) -> Result<Spanned<Value>, ScenarioError> {
    use serde_json::Value as J;
    let converted = match value {
        J::Null => {
            return Err(ScenarioError::new(
                "JSON null has no scenario counterpart; omit the key instead".to_string(),
            ))
        }
        J::Bool(b) => Value::Bool(*b),
        J::U64(n) => {
            let n = i64::try_from(*n)
                .map_err(|_| ScenarioError::new(format!("integer {n} is out of range")))?;
            Value::Int(n)
        }
        J::I64(n) => Value::Int(*n),
        J::U128(n) => {
            let n = i64::try_from(*n)
                .map_err(|_| ScenarioError::new(format!("integer {n} is out of range")))?;
            Value::Int(n)
        }
        J::F64(f) => Value::Float(*f),
        J::Str(s) => Value::Str(s.clone()),
        J::Seq(items) => {
            let items: Result<Vec<_>, _> = items.iter().map(from_json).collect();
            Value::Array(items?)
        }
        J::Map(entries) => {
            let mut table = Table::default();
            for (k, v) in entries {
                table.insert(Spanned::synthetic(k.clone()), from_json(v)?)?;
            }
            Value::Table(table)
        }
    };
    Ok(Spanned::synthetic(converted))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Table {
        parse_document(text).unwrap()
    }

    #[test]
    fn scalars_and_comments() {
        let t = parse(
            "name = \"demo # not a comment\" # trailing\nseed = 42\nfrac = 0.5\nflag = true\nneg = -3\nbig = 1_000\ninfty = inf\n",
        );
        assert_eq!(
            t.get("name").unwrap().value,
            Value::Str("demo # not a comment".into())
        );
        assert_eq!(t.get("seed").unwrap().value, Value::Int(42));
        assert_eq!(t.get("frac").unwrap().value, Value::Float(0.5));
        assert_eq!(t.get("flag").unwrap().value, Value::Bool(true));
        assert_eq!(t.get("neg").unwrap().value, Value::Int(-3));
        assert_eq!(t.get("big").unwrap().value, Value::Int(1000));
        assert_eq!(t.get("infty").unwrap().value, Value::Float(f64::INFINITY));
    }

    #[test]
    fn spans_are_one_based() {
        let t = parse("a = 1\n  b = 2\n");
        assert_eq!(t.key_span("a").unwrap(), Span::new(1, 1));
        assert_eq!(t.key_span("b").unwrap(), Span::new(2, 3));
        assert_eq!(t.get("b").unwrap().span, Span::new(2, 7));
    }

    #[test]
    fn tables_and_dotted_headers() {
        let t = parse("[link]\nloss = 0.1\n[link.latency]\ndist = \"exponential\"\nmean = 0.3\n");
        let link = match &t.get("link").unwrap().value {
            Value::Table(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(link.get("loss").unwrap().value, Value::Float(0.1));
        let latency = match &link.get("latency").unwrap().value {
            Value::Table(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            latency.get("dist").unwrap().value,
            Value::Str("exponential".into())
        );
    }

    #[test]
    fn array_of_tables_preserves_order() {
        let t = parse("[[phase]]\nkind = \"a\"\n[[phase]]\nkind = \"b\"\n");
        let phases = match &t.get("phase").unwrap().value {
            Value::Array(items) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(phases.len(), 2);
        let kind = |i: usize| match &phases[i].value {
            Value::Table(t) => t.get("kind").unwrap().value.clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(kind(0), Value::Str("a".into()));
        assert_eq!(kind(1), Value::Str("b".into()));
    }

    #[test]
    fn arrays_and_inline_tables() {
        let t = parse("detectors = [\"a\", \"b\"]\nlatency = { dist = \"pareto\", shape = 2.5, mean = 0.4 }\nempty = []\n");
        match &t.get("detectors").unwrap().value {
            Value::Array(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].value, Value::Str("b".into()));
            }
            other => panic!("{other:?}"),
        }
        match &t.get("latency").unwrap().value {
            Value::Table(inline) => {
                assert_eq!(inline.get("shape").unwrap().value, Value::Float(2.5));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.get("empty").unwrap().value, Value::Array(Vec::new()));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_document("a = 1\nb 2\n").unwrap_err();
        assert_eq!(err.span, Some(Span::new(2, 3)));
        assert!(err.message.contains("expected `=`"), "{}", err.message);

        let err = parse_document("a = \"unterminated\n").unwrap_err();
        assert!(err.message.contains("unterminated"), "{}", err.message);

        let err = parse_document("a = 1\na = 2\n").unwrap_err();
        assert!(err.message.contains("duplicate key `a`"), "{}", err.message);
        assert_eq!(err.span, Some(Span::new(2, 1)));

        let err = parse_document("[t]\nx = 1\n[t]\n").unwrap_err();
        assert!(err.message.contains("defined twice"), "{}", err.message);

        let err = parse_document("a = 1 trailing\n").unwrap_err();
        assert!(err.message.contains("trailing"), "{}", err.message);
    }

    #[test]
    fn json_converts_to_same_tree() {
        let json: serde_json::Value = serde_json::from_str(
            "{\"seed\": 7, \"frac\": 0.5, \"tags\": [\"x\"], \"link\": {\"loss\": 0.1}}",
        )
        .unwrap();
        let spanned = from_json(&json).unwrap();
        let table = match spanned.value {
            Value::Table(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(table.get("seed").unwrap().value, Value::Int(7));
        assert_eq!(table.get("frac").unwrap().value, Value::Float(0.5));
        match &table.get("link").unwrap().value {
            Value::Table(link) => assert_eq!(link.get("loss").unwrap().value, Value::Float(0.1)),
            other => panic!("{other:?}"),
        }
    }
}
