//! Scenario execution: validate → lower → simulate → assert, plus the
//! seed/shard campaign sweeper.
//!
//! A run records a full observability trace, takes the final overlay
//! snapshot, floods from the best-connected online node for coverage,
//! optionally audits an observer attack (via an injected evaluator —
//! `veil-core` cannot depend on `veil-privacy`, which depends on it), and
//! grades every assertion. Everything in a [`ScenarioOutcome`] is a pure
//! function of (scenario, seed, shards): no wall-clock, no machine
//! identity — campaign reports are byte-identical across serial and
//! parallel sweeps, which the conformance suite pins.

use super::lower::{lower, recovery_interval};
use super::schema::{AttackSpec, Scenario};
use super::ScenarioError;
use crate::dissemination::flood_current_overlay;
use crate::experiment::{
    build_simulation, build_trust_graph, pseudonym_coverage, RECOVERY_FRACTION,
};
use crate::metrics::{snapshot, OverlaySnapshot};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Mutex;
use veil_graph::Graph;
use veil_obs::{analyze_trace, Recorder, TraceEvent};

/// Per-run overrides a campaign (or `--seed`/`--shards` on the CLI)
/// applies on top of the scenario file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOverrides {
    /// Replaces the scenario's master seed.
    pub seed: Option<u64>,
    /// Runs the sharded executor with this many shards (`None` keeps the
    /// scenario's sequential path).
    pub shards: Option<usize>,
}

/// What an observer-attack audit found; produced by the injected
/// evaluator (see [`run_scenario_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AttackFindings {
    /// Fraction of trust-graph nodes the observers know.
    pub node_fraction: f64,
    /// Fraction of trust-graph edges the observers know.
    pub edge_fraction: f64,
    /// Whether the observer set is a vertex cut of the trust graph.
    pub is_vertex_cut: bool,
}

/// Evaluator for the `[attack]` section: given the trust graph and the
/// attack spec, report what the observers learn. `veil-privacy` provides
/// the canonical implementation (`veil_privacy::evaluate_attack`); the
/// indirection exists because the dependency points the other way.
pub type AttackEval = dyn Fn(&Graph, &AttackSpec) -> AttackFindings + Sync;

/// One graded assertion.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AssertionOutcome {
    /// Assertion key as written in the scenario file.
    pub key: String,
    /// `observed vs bound`, human-readable.
    pub detail: String,
    /// Whether the assertion held.
    pub passed: bool,
}

/// The deterministic verdict of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Seed the run used (after overrides).
    pub seed: u64,
    /// Shard count the run used (`None` = sequential executor).
    pub shards: Option<usize>,
    /// Final overlay snapshot at the horizon.
    pub snapshot: OverlaySnapshot,
    /// Coverage of a final flood from the highest-trust-degree online
    /// node (0 when nobody is online).
    pub coverage: f64,
    /// Trace-wide shuffle success rate.
    pub shuffle_success_rate: f64,
    /// Total health alerts in the trace.
    pub alerts_total: u64,
    /// Critical-severity health alerts.
    pub critical_alerts: u64,
    /// Sorted, deduplicated names of detectors that fired.
    pub detectors: Vec<String>,
    /// Observer-audit findings, when the scenario has an `[attack]`
    /// section.
    pub attack: Option<AttackFindings>,
    /// Self-healing reactions by kind, from the trace. Empty (and skipped
    /// in serialized reports, so pre-remediation outcomes keep their
    /// bytes) unless the remediation engine ran.
    #[serde(skip_serializing_if = "BTreeMap::is_empty")]
    pub reaction_counts: BTreeMap<String, u64>,
    /// Periods from the last blackout's end until pseudonym-overlay flood
    /// coverage regained 90% of its pre-blackout mean. Measured only when
    /// the scenario asserts `recovery_time_at_most` (absent otherwise);
    /// the inner `None` means the overlay never recovered by the horizon.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub recovery_time: Option<Option<f64>>,
    /// Every assertion, graded.
    pub checks: Vec<AssertionOutcome>,
    /// Whether all assertions held.
    pub passed: bool,
}

/// A completed run: the verdict plus the raw trace it was graded on.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The graded verdict.
    pub outcome: ScenarioOutcome,
    /// JSONL observability trace (feed to `veil obs analyze` / `diff`).
    pub trace_jsonl: String,
}

/// `install_global` swaps a process-wide recorder; campaigns run
/// scenarios in parallel, so the install → build → restore window must be
/// exclusive or concurrent runs would cross-wire their traces.
static OBS_GATE: Mutex<()> = Mutex::new(());

/// Runs `f` with `recorder` installed as the process-global observability
/// sink, holding the same gate scenario runs hold. Hand-built comparison
/// runs (the conformance suite's byte-identity checks) must use this
/// instead of calling `veil_obs::install_global` directly, or a
/// concurrent scenario run could cross-wire traces.
pub fn with_global_recorder<T>(recorder: &Recorder, f: impl FnOnce() -> T) -> T {
    let _gate = OBS_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let prev = veil_obs::install_global(recorder.clone());
    let out = f();
    veil_obs::install_global(prev);
    out
}

/// Serializes the recorder's events as canonical JSONL: a trace header
/// followed by events sorted by `(t, node, kind)` with the capture
/// metadata (`tid`, per-thread `seq`) rewritten to `(0, position)`.
///
/// Raw [`Recorder::events_jsonl`] output orders events by `(t, tid,
/// seq)`, and `tid` depends on the thread layout — the sharded executor
/// assigns it per worker — so raw bytes differ across shard counts and
/// even across runs at the same shard count. The canonical form is
/// byte-identical for every shard count (the event *content* is the
/// executor's invariant; see `sharded_traces_are_shard_count_invariant`
/// in the obs equivalence suite) and still replays through
/// [`analyze_trace`], which re-sorts by the rewritten `(t, tid, seq)`.
pub fn canonical_trace_jsonl(recorder: &Recorder) -> String {
    let mut events: Vec<(u64, Option<u32>, String, TraceEvent)> = recorder
        .events()
        .into_iter()
        .map(|e| {
            let kind = serde_json::to_string(&e.kind).expect("event kind serializes");
            (e.t.to_bits(), e.node, kind, e)
        })
        .collect();
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut out = veil_obs::trace_header();
    out.push('\n');
    for (i, (_, _, _, mut ev)) in events.into_iter().enumerate() {
        ev.tid = 0;
        ev.seq = i as u64;
        out.push_str(&serde_json::to_string(&ev).expect("event serializes"));
        out.push('\n');
    }
    out
}

/// Runs `scenario` with the default overrides and no attack evaluator.
///
/// # Errors
///
/// See [`run_scenario_with`].
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioRun, ScenarioError> {
    run_scenario_with(scenario, RunOverrides::default(), None)
}

/// Validates, lowers, and runs `scenario`, then grades its assertions.
///
/// `attack_eval` must be supplied when the scenario has an `[attack]`
/// section (the CLI passes `veil_privacy::evaluate_attack`).
///
/// # Errors
///
/// Validation failures, simulation construction errors, trace analysis
/// failures, and a missing attack evaluator.
pub fn run_scenario_with(
    scenario: &Scenario,
    overrides: RunOverrides,
    attack_eval: Option<&AttackEval>,
) -> Result<ScenarioRun, ScenarioError> {
    scenario.validate()?;
    let lowered = lower(scenario)?;
    let mut params = lowered.params;
    if let Some(seed) = overrides.seed {
        params.seed = seed;
    }
    if let Some(shards) = overrides.shards {
        params.overlay.shards = Some(shards);
    }
    let trust = build_trust_graph(&params)
        .map_err(|e| ScenarioError::new(format!("building trust graph: {e}")))?;

    let recorder = Recorder::full();
    let mut sim = with_global_recorder(&recorder, || {
        build_simulation(trust.clone(), &params, lowered.alpha)
    })
    .map_err(|e| ScenarioError::new(format!("building simulation: {e}")))?;
    sim.set_recorder(recorder.clone());

    // With a `recovery_time_at_most` assertion the run is stepped: a
    // pre-outage coverage baseline, then one-period probes after the last
    // blackout ends until coverage regains 90% of that baseline. Probes
    // are read-only floods and `run_until` is stepping-invariant, so the
    // trace stays byte-identical to an unstepped run; the probe grid is
    // fixed, so the measurement is shard-layout-invariant too.
    let recovery_time = match scenario
        .assertions
        .recovery_time_at_most
        .and_then(|_| recovery_interval(scenario))
    {
        Some((outage_start, outage_end)) => {
            let snaps = (outage_start.floor() as usize).clamp(1, 10);
            let mut baseline = 0.0;
            for i in (0..snaps).rev() {
                sim.run_until(outage_start - i as f64);
                baseline += pseudonym_coverage(&sim, &trust);
            }
            baseline /= snaps as f64;
            let target = RECOVERY_FRACTION * baseline;
            sim.run_until(outage_end);
            let mut t = outage_end;
            let mut recovered = None;
            while t < lowered.horizon {
                t = (t + 1.0).min(lowered.horizon);
                sim.run_until(t);
                if pseudonym_coverage(&sim, &trust) >= target {
                    recovered = Some(t - outage_end);
                    break;
                }
            }
            sim.run_until(lowered.horizon);
            Some(recovered)
        }
        None => {
            sim.run_until(lowered.horizon);
            None
        }
    };

    let snap = snapshot(&sim);
    let online = sim.online_mask();
    let source = (0..sim.node_count())
        .filter(|&v| online[v])
        .max_by_key(|&v| trust.degree(v));
    let coverage = match source {
        Some(source) => flood_current_overlay(&sim, source).coverage(),
        None => 0.0,
    };

    let trace_jsonl = canonical_trace_jsonl(&recorder);
    let report = analyze_trace(&trace_jsonl)
        .map_err(|e| ScenarioError::new(format!("analyzing trace: {e}")))?;

    let attack = match &scenario.attack {
        Some(spec) => match attack_eval {
            Some(eval) => Some(eval(&trust, spec)),
            None => {
                return Err(ScenarioError::new(
                    "scenario has an [attack] section but no attack evaluator was supplied \
                     (run it through the veil CLI, or pass veil_privacy::evaluate_attack)",
                ))
            }
        },
        None => None,
    };

    let alerts_total = report.alerts.len() as u64;
    let critical_alerts = report
        .alerts
        .iter()
        .filter(|a| a.severity == "critical")
        .count() as u64;
    let detectors: Vec<String> = report
        .alerts
        .iter()
        .map(|a| a.detector.clone())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    let mut outcome = ScenarioOutcome {
        scenario: scenario.name.clone(),
        seed: params.seed,
        shards: params.overlay.shards,
        snapshot: snap,
        coverage,
        shuffle_success_rate: report.shuffle_success_rate,
        alerts_total,
        critical_alerts,
        detectors,
        attack,
        reaction_counts: report.reaction_counts,
        recovery_time,
        checks: Vec::new(),
        passed: true,
    };
    grade(scenario, &mut outcome);
    Ok(ScenarioRun {
        outcome,
        trace_jsonl,
    })
}

/// Grades every assertion in the scenario against the measured outcome,
/// filling `outcome.checks` and `outcome.passed`.
fn grade(scenario: &Scenario, outcome: &mut ScenarioOutcome) {
    let a = &scenario.assertions;
    let mut checks = Vec::new();
    let mut push = |key: &str, detail: String, passed: bool| {
        checks.push(AssertionOutcome {
            key: key.to_string(),
            detail,
            passed,
        });
    };
    if let Some(bound) = a.max_disconnected {
        let v = outcome.snapshot.fraction_disconnected;
        push(
            "max_disconnected",
            format!("disconnected {v:.4} vs max {bound}"),
            v <= bound,
        );
    }
    if let Some(bound) = a.min_coverage {
        let v = outcome.coverage;
        push(
            "min_coverage",
            format!("coverage {v:.4} vs min {bound}"),
            v >= bound,
        );
    }
    if let Some(bound) = a.max_alerts {
        let v = outcome.alerts_total;
        push(
            "max_alerts",
            format!("{v} alerts vs max {bound}"),
            v <= bound,
        );
    }
    if let Some(bound) = a.min_alerts {
        let v = outcome.alerts_total;
        push(
            "min_alerts",
            format!("{v} alerts vs min {bound}"),
            v >= bound,
        );
    }
    if let Some(bound) = a.max_critical_alerts {
        let v = outcome.critical_alerts;
        push(
            "max_critical_alerts",
            format!("{v} critical vs max {bound}"),
            v <= bound,
        );
    }
    if let Some(bound) = a.min_shuffle_success_rate {
        let v = outcome.shuffle_success_rate;
        push(
            "min_shuffle_success_rate",
            format!("success rate {v:.4} vs min {bound}"),
            v >= bound,
        );
    }
    if let Some(bound) = a.max_shuffle_failures {
        let v = outcome.snapshot.shuffle_failures;
        push(
            "max_shuffle_failures",
            format!("{v} failures vs max {bound}"),
            v <= bound,
        );
    }
    for name in &a.require_detectors {
        let fired = outcome.detectors.iter().any(|d| d == name);
        push(
            "require_detectors",
            format!("`{name}` {}", if fired { "fired" } else { "never fired" }),
            fired,
        );
    }
    for name in &a.forbid_detectors {
        let fired = outcome.detectors.iter().any(|d| d == name);
        push(
            "forbid_detectors",
            format!("`{name}` {}", if fired { "fired" } else { "stayed quiet" }),
            !fired,
        );
    }
    if let Some(bound) = a.recovery_time_at_most {
        match outcome.recovery_time {
            Some(Some(t)) => push(
                "recovery_time_at_most",
                format!("recovered {t} period(s) after the outage vs max {bound}"),
                t <= bound,
            ),
            Some(None) => push(
                "recovery_time_at_most",
                format!("never recovered by the horizon vs max {bound}"),
                false,
            ),
            // Unmeasured: validation rejects the assertion without a
            // blackout phase, so this arm is unreachable for validated
            // scenarios — grade it as a failure rather than silence.
            None => push(
                "recovery_time_at_most",
                "no blackout outage was measured".to_string(),
                false,
            ),
        }
    }
    for name in &a.reaction_fired {
        let count = outcome.reaction_counts.get(name).copied().unwrap_or(0);
        push(
            "reaction_fired",
            format!(
                "`{name}` {}",
                if count > 0 {
                    format!("fired {count} time(s)")
                } else {
                    "never fired".to_string()
                }
            ),
            count > 0,
        );
    }
    if let Some(attack) = &outcome.attack {
        if let Some(bound) = a.max_observed_node_fraction {
            let v = attack.node_fraction;
            push(
                "max_observed_node_fraction",
                format!("observers know {v:.4} of nodes vs max {bound}"),
                v <= bound,
            );
        }
        if let Some(bound) = a.max_observed_edge_fraction {
            let v = attack.edge_fraction;
            push(
                "max_observed_edge_fraction",
                format!("observers know {v:.4} of edges vs max {bound}"),
                v <= bound,
            );
        }
        if a.forbid_vertex_cut {
            push(
                "forbid_vertex_cut",
                format!(
                    "observer set {} a vertex cut",
                    if attack.is_vertex_cut { "IS" } else { "is not" }
                ),
                !attack.is_vertex_cut,
            );
        }
    }
    outcome.passed = checks.iter().all(|c| c.passed);
    outcome.checks = checks;
}

/// What a campaign sweeps: the cartesian product of seeds and shard
/// counts, run in parallel via `veil-par`.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Seeds to run (the CLI defaults to `scenario.seed .. + N`).
    pub seeds: Vec<u64>,
    /// Shard counts; `None` entries run the sequential executor.
    pub shard_counts: Vec<Option<usize>>,
    /// Worker threads for the sweep (`None` = all available cores).
    pub parallelism: Option<usize>,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            seeds: Vec::new(),
            shard_counts: vec![None],
            parallelism: None,
        }
    }
}

/// All verdicts of a campaign sweep, in grid order (seeds outer, shard
/// counts inner).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Scenario name.
    pub scenario: String,
    /// One verdict per (seed, shards) grid point.
    pub runs: Vec<ScenarioOutcome>,
}

impl CampaignReport {
    /// Whether every run passed every assertion.
    pub fn all_passed(&self) -> bool {
        self.runs.iter().all(|r| r.passed)
    }

    /// Number of passing runs.
    pub fn passed_count(&self) -> usize {
        self.runs.iter().filter(|r| r.passed).count()
    }

    /// JSONL report: one line per run (a serialized [`ScenarioOutcome`])
    /// followed by a summary line. Deterministic — serial and parallel
    /// sweeps emit identical bytes.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for run in &self.runs {
            let line = serde_json::to_string(run).expect("outcome serializes");
            let _ = writeln!(out, "{line}");
        }
        let summary = format!(
            "{{\"campaign\":\"{}\",\"runs\":{},\"passed\":{},\"failed\":{},\"ok\":{}}}",
            self.scenario,
            self.runs.len(),
            self.passed_count(),
            self.runs.len() - self.passed_count(),
            self.all_passed(),
        );
        let _ = writeln!(out, "{summary}");
        out
    }
}

/// Sweeps `scenario` over the campaign grid in parallel, preserving grid
/// order in the report.
///
/// # Errors
///
/// An empty seed list, plus everything [`run_scenario_with`] can return
/// (the first failing grid point wins; assertion *failures* are verdicts,
/// not errors).
pub fn run_campaign(
    scenario: &Scenario,
    spec: &CampaignSpec,
    attack_eval: Option<&AttackEval>,
) -> Result<CampaignReport, ScenarioError> {
    if spec.seeds.is_empty() {
        return Err(ScenarioError::new("campaign needs at least one seed"));
    }
    let shard_counts = if spec.shard_counts.is_empty() {
        vec![None]
    } else {
        spec.shard_counts.clone()
    };
    let mut grid: Vec<RunOverrides> = Vec::new();
    for &seed in &spec.seeds {
        for &shards in &shard_counts {
            grid.push(RunOverrides {
                seed: Some(seed),
                shards,
            });
        }
    }
    let results = veil_par::map(&grid, spec.parallelism, |&overrides| {
        run_scenario_with(scenario, overrides, attack_eval).map(|run| run.outcome)
    });
    let mut runs = Vec::with_capacity(results.len());
    for result in results {
        runs.push(result?);
    }
    Ok(CampaignReport {
        scenario: scenario.name.clone(),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::super::schema::Phase;
    use super::*;

    fn quick() -> Scenario {
        Scenario {
            name: "quick".into(),
            nodes: 60,
            horizon: 12.0,
            seed: 7,
            ..Scenario::default()
        }
    }

    #[test]
    fn run_is_deterministic() {
        let s = quick();
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&s).unwrap();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.trace_jsonl, b.trace_jsonl);
    }

    #[test]
    fn assertions_grade_pass_and_fail() {
        let mut s = quick();
        s.assertions.min_coverage = Some(0.5);
        s.assertions.max_disconnected = Some(1.0);
        let run = run_scenario(&s).unwrap();
        assert_eq!(run.outcome.checks.len(), 2);
        assert!(run.outcome.checks.iter().any(|c| c.key == "min_coverage"));

        s.assertions.min_coverage = Some(1.1);
        // 1.1 fails range validation; bypass validate by setting an
        // impossible-but-valid bound instead.
        s.assertions.min_coverage = Some(1.0);
        s.assertions.max_disconnected = Some(0.0);
        let run = run_scenario(&s).unwrap();
        // Not asserting failure of a specific check (outcomes depend on
        // dynamics), only that grading fills in a verdict consistently.
        assert_eq!(
            run.outcome.passed,
            run.outcome.checks.iter().all(|c| c.passed)
        );
    }

    #[test]
    fn recovery_assertion_measures_and_grades() {
        let mut s = quick();
        s.horizon = 30.0;
        s.phases.push(Phase::Blackout {
            start: 12.0,
            duration: 6.0,
            fraction: 0.4,
            from: 0.0,
        });
        s.assertions.recovery_time_at_most = Some(30.0);
        let run = run_scenario(&s).unwrap();
        let measured = run.outcome.recovery_time.expect("recovery was measured");
        let check = run
            .outcome
            .checks
            .iter()
            .find(|c| c.key == "recovery_time_at_most")
            .expect("recovery check graded");
        match measured {
            Some(t) => {
                assert!(t > 0.0 && t <= 30.0, "recovery time {t} out of range");
                assert!(check.passed, "{}", check.detail);
            }
            None => assert!(!check.passed, "{}", check.detail),
        }
        // Measurement itself is deterministic.
        assert_eq!(run_scenario(&s).unwrap().outcome, run.outcome);
    }

    #[test]
    fn recovery_probing_never_perturbs_the_trace() {
        // The stepped run (baseline snapshots + probes) must emit the
        // exact bytes of the unstepped run: probing is read-only.
        let mut s = quick();
        s.horizon = 30.0;
        s.phases.push(Phase::Blackout {
            start: 12.0,
            duration: 6.0,
            fraction: 0.4,
            from: 0.0,
        });
        let plain = run_scenario(&s).unwrap();
        s.assertions.recovery_time_at_most = Some(30.0);
        let probed = run_scenario(&s).unwrap();
        assert_eq!(plain.trace_jsonl, probed.trace_jsonl);
        assert_eq!(plain.outcome.snapshot, probed.outcome.snapshot);
        assert_eq!(plain.outcome.coverage, probed.outcome.coverage);
    }

    #[test]
    fn reaction_fired_grades_from_the_trace() {
        // No remediation: the reaction can't fire and the check fails.
        // (Validation would reject this scenario; grade() is exercised
        // directly through the unvalidated field to pin the failure path.)
        let mut s = quick();
        s.health.enabled = true;
        s.assertions.reaction_fired = vec!["rebootstrap".into()];
        let run = run_scenario_with(&s, RunOverrides::default(), None);
        // `run_scenario_with` validates first — remediation off with a
        // reaction_fired assertion is rejected up front.
        assert!(run.is_err());

        s.remediation.enabled = true;
        let run = run_scenario(&s).unwrap();
        let check = run
            .outcome
            .checks
            .iter()
            .find(|c| c.key == "reaction_fired")
            .expect("reaction check graded");
        assert_eq!(
            check.passed,
            run.outcome
                .reaction_counts
                .get("rebootstrap")
                .copied()
                .unwrap_or(0)
                > 0,
            "{}",
            check.detail
        );
    }

    #[test]
    fn attack_without_evaluator_errors() {
        let mut s = quick();
        s.attack = Some(AttackSpec { observers: 3 });
        let err = run_scenario(&s).unwrap_err();
        assert!(err.message.contains("attack evaluator"), "{}", err.message);
    }

    #[test]
    fn campaign_serial_and_parallel_reports_match() {
        let mut s = quick();
        s.phases.push(Phase::Blackout {
            start: 4.0,
            duration: 3.0,
            fraction: 0.3,
            from: 0.0,
        });
        let spec_serial = CampaignSpec {
            seeds: vec![7, 8],
            shard_counts: vec![None, Some(2)],
            parallelism: Some(1),
        };
        let spec_par = CampaignSpec {
            parallelism: Some(4),
            ..spec_serial.clone()
        };
        let serial = run_campaign(&s, &spec_serial, None).unwrap();
        let parallel = run_campaign(&s, &spec_par, None).unwrap();
        assert_eq!(serial.jsonl(), parallel.jsonl());
        assert_eq!(serial.runs.len(), 4);
    }

    #[test]
    fn empty_seed_list_is_an_error() {
        let err = run_campaign(&quick(), &CampaignSpec::default(), None).unwrap_err();
        assert!(err.message.contains("seed"), "{}", err.message);
    }
}
