//! Scenario schema: the typed description a scenario file parses into,
//! plus the canonical TOML serializer (`Scenario::to_toml`) used by
//! round-trip tests and `veil scenario list`.
//!
//! Building from the spanned value tree happens here so every "unknown
//! key" / "wrong type" diagnostic can point at the offending character.
//! Semantic rules that involve more than one field (phase ordering,
//! overlapping blackouts, assertion/attack consistency) live in
//! [`super::validate`].

use super::parser::{Spanned, Table, Value};
use super::{ScenarioError, Span};
use std::fmt::Write as _;

/// Names of the health detectors a scenario may require or forbid
/// (mirrors `crate::health`; validated at parse time so a typo cannot
/// silently never match).
pub const DETECTOR_NAMES: [&str; 6] = [
    "shuffle_failure_burst",
    "eviction_storm",
    "pseudonym_expiry_stampede",
    "starved_nodes",
    "isolated_nodes",
    "indegree_skew",
];

/// Names of the self-healing reactions a scenario may assert on
/// (mirrors the `reaction` field of `RemedyAction` trace events).
pub const REACTION_NAMES: [&str; 3] = ["backoff", "rebootstrap", "throttle"];

/// A complete declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (defaults to the file stem when omitted).
    pub name: String,
    /// Free-text description shown by `veil scenario list`.
    pub description: String,
    /// Master seed (campaigns sweep seeds starting here).
    pub seed: u64,
    /// Trust-graph size.
    pub nodes: usize,
    /// Run length in shuffle periods.
    pub horizon: f64,
    /// Node availability `alpha` of the churn model.
    pub availability: f64,
    /// Mean offline time `Toff` in shuffle periods.
    pub mean_offline: f64,
    /// Source social graph and sampling parameters.
    pub graph: GraphSpec,
    /// Overlay protocol overrides.
    pub overlay: OverlaySpec,
    /// Link-layer fault model (ambient loss/latency; episodes come from
    /// phases).
    pub link: LinkSpec,
    /// Online health monitoring.
    pub health: HealthSpec,
    /// Self-healing remediation (requires `[health]` enabled).
    pub remediation: RemedySpec,
    /// Workload phases, in start order.
    pub phases: Vec<Phase>,
    /// Optional observer-attack audit (evaluated by `veil-privacy`).
    pub attack: Option<AttackSpec>,
    /// Pass/fail assertions over the run.
    pub assertions: Assertions,
}

/// Synthetic source-graph model and invitation-sampling parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    /// The generator standing in for the Facebook crawl.
    pub model: GraphModel,
    /// Invitation-model sampling parameter `f`.
    pub trust_f: f64,
    /// Source graph has `source_multiplier × nodes` vertices.
    pub source_multiplier: usize,
}

/// Scenario counterpart of `experiment::SourceModel` (the community model
/// is intentionally not exposed: it needs far larger node counts than
/// scenario runs use).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphModel {
    /// Holme–Kim preferential attachment with triad closure.
    HolmeKim {
        /// Edges added per new node.
        attach: usize,
        /// Triangle-closure probability.
        triad: f64,
    },
    /// Holme–Kim-style attachment tuned to a fractional average degree.
    DegreeMatched {
        /// Target average degree of the source graph.
        avg_degree: f64,
        /// Triangle-closure probability.
        triad: f64,
    },
}

/// Overlay-protocol overrides; every field has a scenario-scale default.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlaySpec {
    /// Pseudonym cache capacity.
    pub cache_size: usize,
    /// Pseudonyms exchanged per shuffle (the paper's ℓ).
    pub shuffle_length: usize,
    /// Target overlay links per node.
    pub target_links: usize,
    /// Pseudonym lifetime as a ratio of `mean_offline`; `None` = never
    /// expires (`lifetime_ratio = "inf"` in the file).
    pub lifetime_ratio: Option<f64>,
    /// Shuffle exchange timeout in shuffle periods (faulty link layer).
    pub shuffle_timeout: f64,
    /// Retransmissions before a shuffle is abandoned.
    pub shuffle_retries: u32,
}

/// Ambient link-layer faults. Scripted episodes are derived from phases,
/// not declared here.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Independent per-message drop probability.
    pub loss: f64,
    /// One-way delivery latency.
    pub latency: LatencySpec,
}

/// Scenario counterpart of `veil_sim::fault::LatencyDist`.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySpec {
    /// Distribution family.
    pub dist: LatencyKind,
    /// Mean one-way latency in shuffle periods (0 = instant).
    pub mean: f64,
    /// Pareto shape parameter (ignored by the other families).
    pub shape: f64,
}

/// Latency distribution family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyKind {
    /// Every message takes exactly `mean` periods.
    Constant,
    /// Exponentially distributed.
    Exponential,
    /// Pareto (heavy tail).
    Pareto,
}

impl LatencyKind {
    fn as_str(self) -> &'static str {
        match self {
            LatencyKind::Constant => "constant",
            LatencyKind::Exponential => "exponential",
            LatencyKind::Pareto => "pareto",
        }
    }
}

/// Online health monitoring switch and window.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSpec {
    /// Whether the rolling-window detectors run (any alert assertion
    /// needs this).
    pub enabled: bool,
    /// Detector window length in shuffle periods.
    pub window: f64,
}

/// Self-healing remediation switchboard (`[remediation]`); the scenario
/// counterpart of `config::RemedyConfig`. The engine consumes the health
/// monitor's window alerts, so enabling it requires `[health]` enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct RemedySpec {
    /// Master switch for the remediation engine.
    pub enabled: bool,
    /// React to eviction storms with a shuffle-rate backoff.
    pub backoff: bool,
    /// React to starved/isolated nodes with a targeted re-bootstrap from
    /// trusted neighbors.
    pub rebootstrap: bool,
    /// React to in-degree skew by throttling the hub's own pseudonym.
    pub throttle: bool,
    /// Shuffle initiations skipped per backoff (decays one per skip).
    pub backoff_shuffles: u32,
    /// Maximum trusted-neighbor pseudonyms offered per re-bootstrap.
    pub rebootstrap_max_offers: usize,
    /// Minimum periods between two re-bootstraps of the same node.
    pub rebootstrap_cooldown: f64,
    /// Periods a throttled node withholds its own pseudonym.
    pub throttle_periods: f64,
}

/// One workload phase. All node regions are expressed as fractions of the
/// population; `from` offsets the start of the affected region (also a
/// fraction), defaulting to 0.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// The region `[from, from + fraction)` is offline from t = 0 and
    /// joins simultaneously at `at` — a flash crowd.
    FlashCrowd {
        /// Join time.
        at: f64,
        /// Fraction of nodes joining.
        fraction: f64,
        /// Region offset.
        from: f64,
    },
    /// Regional blackout: the region loses power over
    /// `[start, start + duration)` and reconnects together.
    Blackout {
        /// Outage start.
        start: f64,
        /// Outage length.
        duration: f64,
        /// Fraction of nodes affected.
        fraction: f64,
        /// Region offset.
        from: f64,
    },
    /// Network partition along node-index order: the first `fraction` of
    /// nodes cannot exchange messages with the rest while active.
    Partition {
        /// Partition start.
        start: f64,
        /// Partition length.
        duration: f64,
        /// Fraction of nodes on the small side.
        fraction: f64,
    },
    /// Silent crashes: the region neither initiates nor answers shuffles,
    /// with no failure signal — only timeouts reveal it.
    Crash {
        /// Crash start.
        start: f64,
        /// Crash length.
        duration: f64,
        /// Fraction of nodes crashed.
        fraction: f64,
        /// Region offset.
        from: f64,
    },
    /// Diurnal churn: the same "night side" region goes dark for
    /// `duty × period` at the start of each of `waves` periods.
    ChurnWaves {
        /// First wave start.
        start: f64,
        /// Wave period.
        period: f64,
        /// Fraction of each period spent dark.
        duty: f64,
        /// Fraction of nodes in the night-side region.
        fraction: f64,
        /// Number of waves.
        waves: usize,
    },
    /// Creeping loss: a crash region that grows linearly from
    /// `max_fraction / steps` to `max_fraction` over `steps` equal
    /// sub-intervals of `[start, end)`, then recovers.
    CreepingLoss {
        /// Ladder start.
        start: f64,
        /// Ladder end (all nodes recover here).
        end: f64,
        /// Number of growth steps.
        steps: usize,
        /// Crashed fraction during the final step.
        max_fraction: f64,
    },
    /// Eclipse pressure: the victim region (first `victims` fraction of
    /// nodes) is cut off from the honest remainder while active — the
    /// message-omission model of an eclipse on the overlay.
    Eclipse {
        /// Eclipse start.
        start: f64,
        /// Eclipse length.
        duration: f64,
        /// Fraction of nodes eclipsed.
        victims: f64,
    },
}

impl Phase {
    /// Stable lower-case phase name (the `kind` key in files).
    pub fn kind_str(&self) -> &'static str {
        match self {
            Phase::FlashCrowd { .. } => "flash-crowd",
            Phase::Blackout { .. } => "blackout",
            Phase::Partition { .. } => "partition",
            Phase::Crash { .. } => "crash",
            Phase::ChurnWaves { .. } => "churn-waves",
            Phase::CreepingLoss { .. } => "creeping-loss",
            Phase::Eclipse { .. } => "eclipse",
        }
    }

    /// The time the phase's first effect begins, used for ordering
    /// validation. A flash crowd's blackout starts at t = 0, but the
    /// phase is *about* the join at `at`, so that is its ordering key.
    pub fn start_key(&self) -> f64 {
        match *self {
            Phase::FlashCrowd { at, .. } => at,
            Phase::Blackout { start, .. }
            | Phase::Partition { start, .. }
            | Phase::Crash { start, .. }
            | Phase::ChurnWaves { start, .. }
            | Phase::CreepingLoss { start, .. }
            | Phase::Eclipse { start, .. } => start,
        }
    }
}

/// Observer-attack audit: the first `observers` nodes collude.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSpec {
    /// Number of colluding internal observers (node ids `0..observers`).
    pub observers: usize,
}

/// Pass/fail assertions evaluated after the run. Every field is optional;
/// an empty table asserts nothing (the run still reports its outcome).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Assertions {
    /// Final fraction of disconnected online overlay nodes must not
    /// exceed this.
    pub max_disconnected: Option<f64>,
    /// Broadcast coverage of a final flood from the highest-degree online
    /// node must reach this.
    pub min_coverage: Option<f64>,
    /// Total health alerts must not exceed this.
    pub max_alerts: Option<u64>,
    /// Total health alerts must reach this (for scenarios that *expect*
    /// degradation to be detected).
    pub min_alerts: Option<u64>,
    /// Critical-severity health alerts must not exceed this.
    pub max_critical_alerts: Option<u64>,
    /// Trace-wide shuffle success rate (completes / starts) must reach
    /// this.
    pub min_shuffle_success_rate: Option<f64>,
    /// Cumulative abandoned shuffles must not exceed this.
    pub max_shuffle_failures: Option<u64>,
    /// Each named detector must fire at least once.
    pub require_detectors: Vec<String>,
    /// None of the named detectors may fire.
    pub forbid_detectors: Vec<String>,
    /// Observer knowledge: fraction of nodes known must not exceed this
    /// (needs `[attack]`).
    pub max_observed_node_fraction: Option<f64>,
    /// Observer knowledge: fraction of edges known must not exceed this
    /// (needs `[attack]`).
    pub max_observed_edge_fraction: Option<f64>,
    /// The observer set must not be a vertex cut of the trust graph
    /// (needs `[attack]`).
    pub forbid_vertex_cut: bool,
    /// Pseudonym-overlay flood coverage must regain 90% of its
    /// pre-blackout mean within this many periods of the last blackout's
    /// end (needs a blackout-style phase that starts after t = 0).
    pub recovery_time_at_most: Option<f64>,
    /// Each named self-healing reaction must fire at least once (needs
    /// `[remediation]` enabled with that reaction on).
    pub reaction_fired: Vec<String>,
}

impl Assertions {
    /// Whether any assertion needs health alerts (and therefore the
    /// monitor enabled).
    pub fn needs_health(&self) -> bool {
        self.max_alerts.is_some()
            || self.min_alerts.is_some()
            || self.max_critical_alerts.is_some()
            || !self.require_detectors.is_empty()
            || !self.forbid_detectors.is_empty()
    }

    /// Whether any assertion needs the `[attack]` audit.
    pub fn needs_attack(&self) -> bool {
        self.max_observed_node_fraction.is_some()
            || self.max_observed_edge_fraction.is_some()
            || self.forbid_vertex_cut
    }
}

impl Default for GraphSpec {
    fn default() -> Self {
        Self {
            // The scaled-down Holme–Kim parameterization used by every
            // smoke-scale experiment in this repo.
            model: GraphModel::HolmeKim {
                attach: 4,
                triad: 0.6,
            },
            trust_f: 0.5,
            source_multiplier: 5,
        }
    }
}

impl Default for OverlaySpec {
    fn default() -> Self {
        Self {
            cache_size: 100,
            shuffle_length: 12,
            target_links: 16,
            lifetime_ratio: Some(3.0),
            shuffle_timeout: 3.0,
            shuffle_retries: 2,
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self {
            loss: 0.0,
            latency: LatencySpec::default(),
        }
    }
}

impl Default for LatencySpec {
    fn default() -> Self {
        Self {
            dist: LatencyKind::Constant,
            mean: 0.0,
            shape: 2.5,
        }
    }
}

impl Default for HealthSpec {
    fn default() -> Self {
        Self {
            enabled: false,
            window: 5.0,
        }
    }
}

impl Default for RemedySpec {
    // Mirrors `RemedyConfig::default()`: engine off, every reaction armed.
    fn default() -> Self {
        Self {
            enabled: false,
            backoff: true,
            rebootstrap: true,
            throttle: true,
            backoff_shuffles: 2,
            rebootstrap_max_offers: 8,
            rebootstrap_cooldown: 10.0,
            throttle_periods: 10.0,
        }
    }
}

impl Default for Scenario {
    fn default() -> Self {
        Self {
            name: "unnamed".to_string(),
            description: String::new(),
            seed: 42,
            nodes: 150,
            horizon: 60.0,
            availability: 0.9,
            mean_offline: 30.0,
            graph: GraphSpec::default(),
            overlay: OverlaySpec::default(),
            link: LinkSpec::default(),
            health: HealthSpec::default(),
            remediation: RemedySpec::default(),
            phases: Vec::new(),
            attack: None,
            assertions: Assertions::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Building from the spanned value tree
// ---------------------------------------------------------------------------

fn err_at(span: Span, message: String) -> ScenarioError {
    ScenarioError::at(span, message)
}

fn as_str<'a>(v: &'a Spanned<Value>, what: &str) -> Result<&'a str, ScenarioError> {
    match &v.value {
        Value::Str(s) => Ok(s),
        other => Err(err_at(
            v.span,
            format!("{what}: expected a string, got {}", other.type_name()),
        )),
    }
}

fn as_f64(v: &Spanned<Value>, what: &str) -> Result<f64, ScenarioError> {
    match v.value {
        Value::Float(f) => Ok(f),
        Value::Int(n) => Ok(n as f64),
        ref other => Err(err_at(
            v.span,
            format!("{what}: expected a number, got {}", other.type_name()),
        )),
    }
}

fn as_usize(v: &Spanned<Value>, what: &str) -> Result<usize, ScenarioError> {
    match v.value {
        Value::Int(n) if n >= 0 => Ok(n as usize),
        Value::Int(n) => Err(err_at(
            v.span,
            format!("{what}: must be non-negative, got {n}"),
        )),
        ref other => Err(err_at(
            v.span,
            format!("{what}: expected an integer, got {}", other.type_name()),
        )),
    }
}

fn as_u64(v: &Spanned<Value>, what: &str) -> Result<u64, ScenarioError> {
    as_usize(v, what).map(|n| n as u64)
}

fn as_bool(v: &Spanned<Value>, what: &str) -> Result<bool, ScenarioError> {
    match v.value {
        Value::Bool(b) => Ok(b),
        ref other => Err(err_at(
            v.span,
            format!("{what}: expected true or false, got {}", other.type_name()),
        )),
    }
}

fn as_table<'a>(v: &'a Spanned<Value>, what: &str) -> Result<&'a Table, ScenarioError> {
    match &v.value {
        Value::Table(t) => Ok(t),
        other => Err(err_at(
            v.span,
            format!("{what}: expected a table, got {}", other.type_name()),
        )),
    }
}

/// Rejects keys outside `allowed`, pointing at the first offender and
/// suggesting the closest allowed key when one is plausibly a typo.
fn check_keys(table: &Table, section: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    for (key, _) in table.entries() {
        if !allowed.contains(&key.value.as_str()) {
            let mut message = format!("unknown key `{}` in {section}", key.value);
            if let Some(suggestion) = closest(&key.value, allowed) {
                let _ = write!(message, " (did you mean `{suggestion}`?)");
            }
            return Err(err_at(key.span, message));
        }
    }
    Ok(())
}

/// The allowed key within edit distance 2, if any.
fn closest<'a>(key: &str, allowed: &[&'a str]) -> Option<&'a str> {
    allowed
        .iter()
        .map(|&a| (edit_distance(key, a), a))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, a)| a)
}

/// Levenshtein distance (small strings only).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// Spans recorded while building, so semantic validation (which runs on
/// the plain [`Scenario`]) can still point diagnostics at the file.
#[derive(Debug, Clone, Default)]
pub struct ScenarioSpans {
    /// Span of each `[[phase]]` header, parallel to `Scenario::phases`.
    pub phases: Vec<Span>,
    /// Span of the `[assertions]` header, when present.
    pub assertions: Option<Span>,
}

/// Builds a [`Scenario`] from a parsed document. `default_name` seeds the
/// scenario name when the file omits one (callers pass the file stem).
///
/// # Errors
///
/// Returns the first structural error (unknown key, wrong type, unknown
/// phase kind or detector) with its source span.
pub fn build_scenario(
    doc: &Table,
    default_name: &str,
) -> Result<(Scenario, ScenarioSpans), ScenarioError> {
    check_keys(
        doc,
        "the scenario",
        &[
            "name",
            "description",
            "seed",
            "nodes",
            "horizon",
            "availability",
            "mean_offline",
            "graph",
            "overlay",
            "link",
            "health",
            "remediation",
            "phase",
            "attack",
            "assertions",
        ],
    )?;
    let mut s = Scenario {
        name: default_name.to_string(),
        ..Scenario::default()
    };
    let mut spans = ScenarioSpans::default();
    if let Some(v) = doc.get("name") {
        s.name = as_str(v, "name")?.to_string();
    }
    if let Some(v) = doc.get("description") {
        s.description = as_str(v, "description")?.to_string();
    }
    if let Some(v) = doc.get("seed") {
        s.seed = as_u64(v, "seed")?;
    }
    if let Some(v) = doc.get("nodes") {
        s.nodes = as_usize(v, "nodes")?;
    }
    if let Some(v) = doc.get("horizon") {
        s.horizon = as_f64(v, "horizon")?;
    }
    if let Some(v) = doc.get("availability") {
        s.availability = as_f64(v, "availability")?;
    }
    if let Some(v) = doc.get("mean_offline") {
        s.mean_offline = as_f64(v, "mean_offline")?;
    }
    if let Some(v) = doc.get("graph") {
        s.graph = build_graph(as_table(v, "[graph]")?)?;
    }
    if let Some(v) = doc.get("overlay") {
        s.overlay = build_overlay(as_table(v, "[overlay]")?)?;
    }
    if let Some(v) = doc.get("link") {
        s.link = build_link(as_table(v, "[link]")?)?;
    }
    if let Some(v) = doc.get("health") {
        s.health = build_health(as_table(v, "[health]")?)?;
    }
    if let Some(v) = doc.get("remediation") {
        s.remediation = build_remediation(as_table(v, "[remediation]")?)?;
    }
    if let Some(v) = doc.get("phase") {
        let items = match &v.value {
            Value::Array(items) => items,
            other => {
                return Err(err_at(
                    v.span,
                    format!(
                        "phase: expected [[phase]] entries, got {}",
                        other.type_name()
                    ),
                ))
            }
        };
        for item in items {
            let table = as_table(item, "[[phase]]")?;
            s.phases.push(build_phase(table, item.span)?);
            spans.phases.push(item.span);
        }
    }
    if let Some(v) = doc.get("attack") {
        s.attack = Some(build_attack(as_table(v, "[attack]")?)?);
    }
    if let Some(v) = doc.get("assertions") {
        s.assertions = build_assertions(as_table(v, "[assertions]")?)?;
        spans.assertions = Some(v.span);
    }
    Ok((s, spans))
}

fn build_graph(t: &Table) -> Result<GraphSpec, ScenarioError> {
    check_keys(
        t,
        "[graph]",
        &[
            "model",
            "attach",
            "triad",
            "avg_degree",
            "trust_f",
            "source_multiplier",
        ],
    )?;
    let mut g = GraphSpec::default();
    let model = match t.get("model") {
        None => "holme-kim".to_string(),
        Some(v) => as_str(v, "model")?.to_string(),
    };
    g.model = match model.as_str() {
        "holme-kim" | "hk" => {
            let mut attach = 4;
            let mut triad = 0.6;
            if let Some(v) = t.get("attach") {
                attach = as_usize(v, "attach")?;
            }
            if let Some(v) = t.get("triad") {
                triad = as_f64(v, "triad")?;
            }
            GraphModel::HolmeKim { attach, triad }
        }
        "degree-matched" | "dm" => {
            let mut avg_degree = 8.0;
            let mut triad = 0.6;
            if let Some(v) = t.get("avg_degree") {
                avg_degree = as_f64(v, "avg_degree")?;
            }
            if let Some(v) = t.get("triad") {
                triad = as_f64(v, "triad")?;
            }
            GraphModel::DegreeMatched { avg_degree, triad }
        }
        other => {
            let span = t.get("model").map(|v| v.span).unwrap_or(Span::NONE);
            return Err(err_at(
                span,
                format!("model: expected \"holme-kim\" or \"degree-matched\", got \"{other}\""),
            ));
        }
    };
    if let Some(v) = t.get("trust_f") {
        g.trust_f = as_f64(v, "trust_f")?;
    }
    if let Some(v) = t.get("source_multiplier") {
        g.source_multiplier = as_usize(v, "source_multiplier")?;
    }
    Ok(g)
}

fn build_overlay(t: &Table) -> Result<OverlaySpec, ScenarioError> {
    check_keys(
        t,
        "[overlay]",
        &[
            "cache_size",
            "shuffle_length",
            "target_links",
            "lifetime_ratio",
            "shuffle_timeout",
            "shuffle_retries",
        ],
    )?;
    let mut o = OverlaySpec::default();
    if let Some(v) = t.get("cache_size") {
        o.cache_size = as_usize(v, "cache_size")?;
    }
    if let Some(v) = t.get("shuffle_length") {
        o.shuffle_length = as_usize(v, "shuffle_length")?;
    }
    if let Some(v) = t.get("target_links") {
        o.target_links = as_usize(v, "target_links")?;
    }
    if let Some(v) = t.get("lifetime_ratio") {
        o.lifetime_ratio = match &v.value {
            Value::Str(s) if s == "inf" => None,
            Value::Str(s) => {
                return Err(err_at(
                    v.span,
                    format!("lifetime_ratio: expected a number or \"inf\", got \"{s}\""),
                ))
            }
            _ => Some(as_f64(v, "lifetime_ratio")?),
        };
    }
    if let Some(v) = t.get("shuffle_timeout") {
        o.shuffle_timeout = as_f64(v, "shuffle_timeout")?;
    }
    if let Some(v) = t.get("shuffle_retries") {
        o.shuffle_retries = as_usize(v, "shuffle_retries")? as u32;
    }
    Ok(o)
}

fn build_link(t: &Table) -> Result<LinkSpec, ScenarioError> {
    check_keys(t, "[link]", &["loss", "latency"])?;
    let mut l = LinkSpec::default();
    if let Some(v) = t.get("loss") {
        l.loss = as_f64(v, "loss")?;
    }
    if let Some(v) = t.get("latency") {
        let latency = as_table(v, "[link.latency]")?;
        check_keys(latency, "[link.latency]", &["dist", "mean", "shape"])?;
        if let Some(d) = latency.get("dist") {
            l.latency.dist = match as_str(d, "dist")? {
                "constant" => LatencyKind::Constant,
                "exponential" | "exp" => LatencyKind::Exponential,
                "pareto" => LatencyKind::Pareto,
                other => {
                    return Err(err_at(
                        d.span,
                        format!(
                            "dist: expected \"constant\", \"exponential\" or \"pareto\", \
                             got \"{other}\""
                        ),
                    ))
                }
            };
        }
        if let Some(m) = latency.get("mean") {
            l.latency.mean = as_f64(m, "mean")?;
        }
        if let Some(sh) = latency.get("shape") {
            l.latency.shape = as_f64(sh, "shape")?;
        }
    }
    Ok(l)
}

fn build_health(t: &Table) -> Result<HealthSpec, ScenarioError> {
    check_keys(t, "[health]", &["enabled", "window"])?;
    let mut h = HealthSpec::default();
    if let Some(v) = t.get("enabled") {
        h.enabled = as_bool(v, "enabled")?;
    }
    if let Some(v) = t.get("window") {
        h.window = as_f64(v, "window")?;
    }
    Ok(h)
}

fn build_remediation(t: &Table) -> Result<RemedySpec, ScenarioError> {
    check_keys(
        t,
        "[remediation]",
        &[
            "enabled",
            "backoff",
            "rebootstrap",
            "throttle",
            "backoff_shuffles",
            "rebootstrap_max_offers",
            "rebootstrap_cooldown",
            "throttle_periods",
        ],
    )?;
    let mut r = RemedySpec::default();
    if let Some(v) = t.get("enabled") {
        r.enabled = as_bool(v, "enabled")?;
    }
    if let Some(v) = t.get("backoff") {
        r.backoff = as_bool(v, "backoff")?;
    }
    if let Some(v) = t.get("rebootstrap") {
        r.rebootstrap = as_bool(v, "rebootstrap")?;
    }
    if let Some(v) = t.get("throttle") {
        r.throttle = as_bool(v, "throttle")?;
    }
    if let Some(v) = t.get("backoff_shuffles") {
        r.backoff_shuffles = as_usize(v, "backoff_shuffles")? as u32;
    }
    if let Some(v) = t.get("rebootstrap_max_offers") {
        r.rebootstrap_max_offers = as_usize(v, "rebootstrap_max_offers")?;
    }
    if let Some(v) = t.get("rebootstrap_cooldown") {
        r.rebootstrap_cooldown = as_f64(v, "rebootstrap_cooldown")?;
    }
    if let Some(v) = t.get("throttle_periods") {
        r.throttle_periods = as_f64(v, "throttle_periods")?;
    }
    Ok(r)
}

fn build_phase(t: &Table, span: Span) -> Result<Phase, ScenarioError> {
    let kind = match t.get("kind") {
        Some(v) => as_str(v, "kind")?.to_string(),
        None => return Err(err_at(span, "phase is missing its `kind`".to_string())),
    };
    let kind_span = t.key_span("kind").unwrap_or(span);
    let f = |key: &str, default: f64| -> Result<f64, ScenarioError> {
        match t.get(key) {
            Some(v) => as_f64(v, key),
            None => Ok(default),
        }
    };
    let required = |key: &'static str| -> Result<f64, ScenarioError> {
        match t.get(key) {
            Some(v) => as_f64(v, key),
            None => Err(err_at(span, format!("{kind} phase is missing `{key}`"))),
        }
    };
    let phase = match kind.as_str() {
        "flash-crowd" => {
            check_keys(
                t,
                "[[phase]] flash-crowd",
                &["kind", "at", "fraction", "from"],
            )?;
            Phase::FlashCrowd {
                at: required("at")?,
                fraction: required("fraction")?,
                from: f("from", 0.0)?,
            }
        }
        "blackout" => {
            check_keys(
                t,
                "[[phase]] blackout",
                &["kind", "start", "duration", "fraction", "from"],
            )?;
            Phase::Blackout {
                start: required("start")?,
                duration: required("duration")?,
                fraction: required("fraction")?,
                from: f("from", 0.0)?,
            }
        }
        "partition" => {
            check_keys(
                t,
                "[[phase]] partition",
                &["kind", "start", "duration", "fraction"],
            )?;
            Phase::Partition {
                start: required("start")?,
                duration: required("duration")?,
                fraction: required("fraction")?,
            }
        }
        "crash" => {
            check_keys(
                t,
                "[[phase]] crash",
                &["kind", "start", "duration", "fraction", "from"],
            )?;
            Phase::Crash {
                start: required("start")?,
                duration: required("duration")?,
                fraction: required("fraction")?,
                from: f("from", 0.0)?,
            }
        }
        "churn-waves" => {
            check_keys(
                t,
                "[[phase]] churn-waves",
                &["kind", "start", "period", "duty", "fraction", "waves"],
            )?;
            let waves = match t.get("waves") {
                Some(v) => as_usize(v, "waves")?,
                None => return Err(err_at(span, "churn-waves phase is missing `waves`".into())),
            };
            Phase::ChurnWaves {
                start: required("start")?,
                period: required("period")?,
                duty: f("duty", 0.5)?,
                fraction: required("fraction")?,
                waves,
            }
        }
        "creeping-loss" => {
            check_keys(
                t,
                "[[phase]] creeping-loss",
                &["kind", "start", "end", "steps", "max_fraction"],
            )?;
            let steps = match t.get("steps") {
                Some(v) => as_usize(v, "steps")?,
                None => 4,
            };
            Phase::CreepingLoss {
                start: required("start")?,
                end: required("end")?,
                steps,
                max_fraction: required("max_fraction")?,
            }
        }
        "eclipse" => {
            check_keys(
                t,
                "[[phase]] eclipse",
                &["kind", "start", "duration", "victims"],
            )?;
            Phase::Eclipse {
                start: required("start")?,
                duration: required("duration")?,
                victims: required("victims")?,
            }
        }
        other => {
            let mut message = format!("unknown phase kind \"{other}\"");
            let kinds = [
                "flash-crowd",
                "blackout",
                "partition",
                "crash",
                "churn-waves",
                "creeping-loss",
                "eclipse",
            ];
            if let Some(suggestion) = closest(other, &kinds) {
                let _ = write!(message, " (did you mean \"{suggestion}\"?)");
            }
            return Err(err_at(kind_span, message));
        }
    };
    Ok(phase)
}

fn build_attack(t: &Table) -> Result<AttackSpec, ScenarioError> {
    check_keys(t, "[attack]", &["observers"])?;
    let observers = match t.get("observers") {
        Some(v) => as_usize(v, "observers")?,
        None => 1,
    };
    Ok(AttackSpec { observers })
}

fn build_assertions(t: &Table) -> Result<Assertions, ScenarioError> {
    check_keys(
        t,
        "[assertions]",
        &[
            "max_disconnected",
            "min_coverage",
            "max_alerts",
            "min_alerts",
            "max_critical_alerts",
            "min_shuffle_success_rate",
            "max_shuffle_failures",
            "require_detectors",
            "forbid_detectors",
            "max_observed_node_fraction",
            "max_observed_edge_fraction",
            "forbid_vertex_cut",
            "recovery_time_at_most",
            "reaction_fired",
        ],
    )?;
    let mut a = Assertions::default();
    if let Some(v) = t.get("max_disconnected") {
        a.max_disconnected = Some(as_f64(v, "max_disconnected")?);
    }
    if let Some(v) = t.get("min_coverage") {
        a.min_coverage = Some(as_f64(v, "min_coverage")?);
    }
    if let Some(v) = t.get("max_alerts") {
        a.max_alerts = Some(as_u64(v, "max_alerts")?);
    }
    if let Some(v) = t.get("min_alerts") {
        a.min_alerts = Some(as_u64(v, "min_alerts")?);
    }
    if let Some(v) = t.get("max_critical_alerts") {
        a.max_critical_alerts = Some(as_u64(v, "max_critical_alerts")?);
    }
    if let Some(v) = t.get("min_shuffle_success_rate") {
        a.min_shuffle_success_rate = Some(as_f64(v, "min_shuffle_success_rate")?);
    }
    if let Some(v) = t.get("max_shuffle_failures") {
        a.max_shuffle_failures = Some(as_u64(v, "max_shuffle_failures")?);
    }
    for (key, target) in [
        ("require_detectors", &mut a.require_detectors),
        ("forbid_detectors", &mut a.forbid_detectors),
    ] {
        if let Some(v) = t.get(key) {
            let items = match &v.value {
                Value::Array(items) => items,
                other => {
                    return Err(err_at(
                        v.span,
                        format!(
                            "{key}: expected an array of detector names, got {}",
                            other.type_name()
                        ),
                    ))
                }
            };
            for item in items {
                let name = as_str(item, key)?;
                if !DETECTOR_NAMES.contains(&name) {
                    let mut message = format!("unknown detector `{name}`");
                    if let Some(suggestion) = closest(name, &DETECTOR_NAMES) {
                        let _ = write!(message, " (did you mean `{suggestion}`?)");
                    }
                    return Err(err_at(item.span, message));
                }
                target.push(name.to_string());
            }
        }
    }
    if let Some(v) = t.get("max_observed_node_fraction") {
        a.max_observed_node_fraction = Some(as_f64(v, "max_observed_node_fraction")?);
    }
    if let Some(v) = t.get("max_observed_edge_fraction") {
        a.max_observed_edge_fraction = Some(as_f64(v, "max_observed_edge_fraction")?);
    }
    if let Some(v) = t.get("forbid_vertex_cut") {
        a.forbid_vertex_cut = as_bool(v, "forbid_vertex_cut")?;
    }
    if let Some(v) = t.get("recovery_time_at_most") {
        a.recovery_time_at_most = Some(as_f64(v, "recovery_time_at_most")?);
    }
    if let Some(v) = t.get("reaction_fired") {
        let items = match &v.value {
            Value::Array(items) => items,
            other => {
                return Err(err_at(
                    v.span,
                    format!(
                        "reaction_fired: expected an array of reaction names, got {}",
                        other.type_name()
                    ),
                ))
            }
        };
        for item in items {
            let name = as_str(item, "reaction_fired")?;
            if !REACTION_NAMES.contains(&name) {
                let mut message = format!("unknown reaction `{name}`");
                if let Some(suggestion) = closest(name, &REACTION_NAMES) {
                    let _ = write!(message, " (did you mean `{suggestion}`?)");
                }
                return Err(err_at(item.span, message));
            }
            a.reaction_fired.push(name.to_string());
        }
    }
    Ok(a)
}

// ---------------------------------------------------------------------------
// Canonical TOML serialization
// ---------------------------------------------------------------------------

/// Formats a float so it round-trips through the parser as a float
/// (`10.0`, not `10`), using Rust's shortest-representation `{:?}`.
fn toml_f64(x: f64) -> String {
    if x.is_infinite() {
        if x > 0.0 {
            "inf".into()
        } else {
            "-inf".into()
        }
    } else {
        format!("{x:?}")
    }
}

fn toml_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

impl Scenario {
    /// Serializes the scenario as canonical TOML: every field is written
    /// explicitly (defaults included), so `parse(to_toml(s)) == s` holds
    /// for any scenario — the round-trip property the conformance and
    /// property tests pin.
    pub fn to_toml(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "name = {}", toml_str(&self.name));
        let _ = writeln!(o, "description = {}", toml_str(&self.description));
        let _ = writeln!(o, "seed = {}", self.seed);
        let _ = writeln!(o, "nodes = {}", self.nodes);
        let _ = writeln!(o, "horizon = {}", toml_f64(self.horizon));
        let _ = writeln!(o, "availability = {}", toml_f64(self.availability));
        let _ = writeln!(o, "mean_offline = {}", toml_f64(self.mean_offline));

        let _ = writeln!(o, "\n[graph]");
        match self.graph.model {
            GraphModel::HolmeKim { attach, triad } => {
                let _ = writeln!(o, "model = \"holme-kim\"");
                let _ = writeln!(o, "attach = {attach}");
                let _ = writeln!(o, "triad = {}", toml_f64(triad));
            }
            GraphModel::DegreeMatched { avg_degree, triad } => {
                let _ = writeln!(o, "model = \"degree-matched\"");
                let _ = writeln!(o, "avg_degree = {}", toml_f64(avg_degree));
                let _ = writeln!(o, "triad = {}", toml_f64(triad));
            }
        }
        let _ = writeln!(o, "trust_f = {}", toml_f64(self.graph.trust_f));
        let _ = writeln!(o, "source_multiplier = {}", self.graph.source_multiplier);

        let _ = writeln!(o, "\n[overlay]");
        let _ = writeln!(o, "cache_size = {}", self.overlay.cache_size);
        let _ = writeln!(o, "shuffle_length = {}", self.overlay.shuffle_length);
        let _ = writeln!(o, "target_links = {}", self.overlay.target_links);
        match self.overlay.lifetime_ratio {
            Some(r) => {
                let _ = writeln!(o, "lifetime_ratio = {}", toml_f64(r));
            }
            None => {
                let _ = writeln!(o, "lifetime_ratio = \"inf\"");
            }
        }
        let _ = writeln!(
            o,
            "shuffle_timeout = {}",
            toml_f64(self.overlay.shuffle_timeout)
        );
        let _ = writeln!(o, "shuffle_retries = {}", self.overlay.shuffle_retries);

        let _ = writeln!(o, "\n[link]");
        let _ = writeln!(o, "loss = {}", toml_f64(self.link.loss));
        let _ = writeln!(o, "\n[link.latency]");
        let _ = writeln!(o, "dist = \"{}\"", self.link.latency.dist.as_str());
        let _ = writeln!(o, "mean = {}", toml_f64(self.link.latency.mean));
        let _ = writeln!(o, "shape = {}", toml_f64(self.link.latency.shape));

        let _ = writeln!(o, "\n[health]");
        let _ = writeln!(o, "enabled = {}", self.health.enabled);
        let _ = writeln!(o, "window = {}", toml_f64(self.health.window));

        let _ = writeln!(o, "\n[remediation]");
        let r = &self.remediation;
        let _ = writeln!(o, "enabled = {}", r.enabled);
        let _ = writeln!(o, "backoff = {}", r.backoff);
        let _ = writeln!(o, "rebootstrap = {}", r.rebootstrap);
        let _ = writeln!(o, "throttle = {}", r.throttle);
        let _ = writeln!(o, "backoff_shuffles = {}", r.backoff_shuffles);
        let _ = writeln!(o, "rebootstrap_max_offers = {}", r.rebootstrap_max_offers);
        let _ = writeln!(
            o,
            "rebootstrap_cooldown = {}",
            toml_f64(r.rebootstrap_cooldown)
        );
        let _ = writeln!(o, "throttle_periods = {}", toml_f64(r.throttle_periods));

        for phase in &self.phases {
            let _ = writeln!(o, "\n[[phase]]");
            let _ = writeln!(o, "kind = \"{}\"", phase.kind_str());
            match *phase {
                Phase::FlashCrowd { at, fraction, from } => {
                    let _ = writeln!(o, "at = {}", toml_f64(at));
                    let _ = writeln!(o, "fraction = {}", toml_f64(fraction));
                    let _ = writeln!(o, "from = {}", toml_f64(from));
                }
                Phase::Blackout {
                    start,
                    duration,
                    fraction,
                    from,
                } => {
                    let _ = writeln!(o, "start = {}", toml_f64(start));
                    let _ = writeln!(o, "duration = {}", toml_f64(duration));
                    let _ = writeln!(o, "fraction = {}", toml_f64(fraction));
                    let _ = writeln!(o, "from = {}", toml_f64(from));
                }
                Phase::Partition {
                    start,
                    duration,
                    fraction,
                } => {
                    let _ = writeln!(o, "start = {}", toml_f64(start));
                    let _ = writeln!(o, "duration = {}", toml_f64(duration));
                    let _ = writeln!(o, "fraction = {}", toml_f64(fraction));
                }
                Phase::Crash {
                    start,
                    duration,
                    fraction,
                    from,
                } => {
                    let _ = writeln!(o, "start = {}", toml_f64(start));
                    let _ = writeln!(o, "duration = {}", toml_f64(duration));
                    let _ = writeln!(o, "fraction = {}", toml_f64(fraction));
                    let _ = writeln!(o, "from = {}", toml_f64(from));
                }
                Phase::ChurnWaves {
                    start,
                    period,
                    duty,
                    fraction,
                    waves,
                } => {
                    let _ = writeln!(o, "start = {}", toml_f64(start));
                    let _ = writeln!(o, "period = {}", toml_f64(period));
                    let _ = writeln!(o, "duty = {}", toml_f64(duty));
                    let _ = writeln!(o, "fraction = {}", toml_f64(fraction));
                    let _ = writeln!(o, "waves = {waves}");
                }
                Phase::CreepingLoss {
                    start,
                    end,
                    steps,
                    max_fraction,
                } => {
                    let _ = writeln!(o, "start = {}", toml_f64(start));
                    let _ = writeln!(o, "end = {}", toml_f64(end));
                    let _ = writeln!(o, "steps = {steps}");
                    let _ = writeln!(o, "max_fraction = {}", toml_f64(max_fraction));
                }
                Phase::Eclipse {
                    start,
                    duration,
                    victims,
                } => {
                    let _ = writeln!(o, "start = {}", toml_f64(start));
                    let _ = writeln!(o, "duration = {}", toml_f64(duration));
                    let _ = writeln!(o, "victims = {}", toml_f64(victims));
                }
            }
        }

        if let Some(attack) = &self.attack {
            let _ = writeln!(o, "\n[attack]");
            let _ = writeln!(o, "observers = {}", attack.observers);
        }

        let _ = writeln!(o, "\n[assertions]");
        let a = &self.assertions;
        if let Some(v) = a.max_disconnected {
            let _ = writeln!(o, "max_disconnected = {}", toml_f64(v));
        }
        if let Some(v) = a.min_coverage {
            let _ = writeln!(o, "min_coverage = {}", toml_f64(v));
        }
        if let Some(v) = a.max_alerts {
            let _ = writeln!(o, "max_alerts = {v}");
        }
        if let Some(v) = a.min_alerts {
            let _ = writeln!(o, "min_alerts = {v}");
        }
        if let Some(v) = a.max_critical_alerts {
            let _ = writeln!(o, "max_critical_alerts = {v}");
        }
        if let Some(v) = a.min_shuffle_success_rate {
            let _ = writeln!(o, "min_shuffle_success_rate = {}", toml_f64(v));
        }
        if let Some(v) = a.max_shuffle_failures {
            let _ = writeln!(o, "max_shuffle_failures = {v}");
        }
        let list = |names: &[String]| {
            names
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        if !a.require_detectors.is_empty() {
            let _ = writeln!(o, "require_detectors = [{}]", list(&a.require_detectors));
        }
        if !a.forbid_detectors.is_empty() {
            let _ = writeln!(o, "forbid_detectors = [{}]", list(&a.forbid_detectors));
        }
        if let Some(v) = a.max_observed_node_fraction {
            let _ = writeln!(o, "max_observed_node_fraction = {}", toml_f64(v));
        }
        if let Some(v) = a.max_observed_edge_fraction {
            let _ = writeln!(o, "max_observed_edge_fraction = {}", toml_f64(v));
        }
        if a.forbid_vertex_cut {
            let _ = writeln!(o, "forbid_vertex_cut = true");
        }
        if let Some(v) = a.recovery_time_at_most {
            let _ = writeln!(o, "recovery_time_at_most = {}", toml_f64(v));
        }
        if !a.reaction_fired.is_empty() {
            let _ = writeln!(o, "reaction_fired = [{}]", list(&a.reaction_fired));
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_document;
    use super::*;

    #[test]
    fn defaults_fill_an_empty_document() {
        let doc = parse_document("").unwrap();
        let (s, _) = build_scenario(&doc, "empty").unwrap();
        assert_eq!(s.name, "empty");
        assert_eq!(s.nodes, 150);
        assert_eq!(s.overlay.lifetime_ratio, Some(3.0));
        assert!(s.phases.is_empty());
        assert!(s.attack.is_none());
    }

    #[test]
    fn unknown_key_suggests_closest() {
        let doc = parse_document("[assertions]\nmax_critical_alert = 3\n").unwrap();
        let err = build_scenario(&doc, "x").unwrap_err();
        assert!(
            err.message.contains("did you mean `max_critical_alerts`"),
            "{}",
            err.message
        );
        assert_eq!(err.span.unwrap().line, 2);
    }

    #[test]
    fn unknown_detector_rejected() {
        let doc =
            parse_document("[assertions]\nrequire_detectors = [\"eviction_storms\"]\n").unwrap();
        let err = build_scenario(&doc, "x").unwrap_err();
        assert!(err.message.contains("unknown detector"), "{}", err.message);
        assert!(err.message.contains("eviction_storm"), "{}", err.message);
    }

    #[test]
    fn lifetime_ratio_inf() {
        let doc = parse_document("[overlay]\nlifetime_ratio = \"inf\"\n").unwrap();
        let (s, _) = build_scenario(&doc, "x").unwrap();
        assert_eq!(s.overlay.lifetime_ratio, None);
    }

    #[test]
    fn integers_coerce_to_floats() {
        let doc = parse_document("horizon = 80\navailability = 1\n").unwrap();
        let (s, _) = build_scenario(&doc, "x").unwrap();
        assert_eq!(s.horizon, 80.0);
        assert_eq!(s.availability, 1.0);
    }

    #[test]
    fn to_toml_round_trips_defaults_and_phases() {
        let mut s = Scenario {
            name: "demo".into(),
            description: "a \"quoted\" description".into(),
            ..Scenario::default()
        };
        s.phases.push(Phase::Blackout {
            start: 40.0,
            duration: 15.0,
            fraction: 0.5,
            from: 0.0,
        });
        s.phases.push(Phase::ChurnWaves {
            start: 10.0,
            period: 20.0,
            duty: 0.35,
            fraction: 0.3,
            waves: 3,
        });
        s.attack = Some(AttackSpec { observers: 8 });
        s.assertions.min_coverage = Some(0.9);
        s.assertions.require_detectors = vec!["eviction_storm".into()];
        s.assertions.forbid_vertex_cut = true;
        s.assertions.recovery_time_at_most = Some(12.0);
        s.assertions.reaction_fired = vec!["rebootstrap".into(), "backoff".into()];
        s.health.enabled = true;
        s.remediation.enabled = true;
        s.remediation.throttle = false;
        s.remediation.rebootstrap_cooldown = 6.0;
        s.overlay.lifetime_ratio = None;
        let text = s.to_toml();
        let doc = parse_document(&text).unwrap();
        let (back, _) = build_scenario(&doc, "demo").unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn remediation_section_parses_and_suggests_on_typos() {
        let doc = parse_document(
            "[remediation]\nenabled = true\nbackoff = false\nrebootstrap_max_offers = 4\n",
        )
        .unwrap();
        let (s, _) = build_scenario(&doc, "x").unwrap();
        assert!(s.remediation.enabled);
        assert!(!s.remediation.backoff);
        assert!(s.remediation.rebootstrap);
        assert_eq!(s.remediation.rebootstrap_max_offers, 4);

        let doc = parse_document("[remediation]\nrebotstrap = true\n").unwrap();
        let err = build_scenario(&doc, "x").unwrap_err();
        assert!(
            err.message.contains("did you mean `rebootstrap`"),
            "{}",
            err.message
        );
    }

    #[test]
    fn unknown_reaction_rejected() {
        let doc = parse_document("[assertions]\nreaction_fired = [\"rebootstrp\"]\n").unwrap();
        let err = build_scenario(&doc, "x").unwrap_err();
        assert!(err.message.contains("unknown reaction"), "{}", err.message);
        assert!(
            err.message.contains("did you mean `rebootstrap`"),
            "{}",
            err.message
        );
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("", "ab"), 2);
        assert_eq!(
            closest("evictoin_storm", &DETECTOR_NAMES),
            Some("eviction_storm")
        );
        assert_eq!(closest("zzz", &DETECTOR_NAMES), None);
    }
}
