//! Semantic validation: rules that span multiple fields of an already
//! well-formed [`Scenario`] — phase ordering, overlapping blackout
//! regions, parameter ranges, and assertion/attack/health coherence.
//!
//! Validation runs on the plain scenario value (so programmatically built
//! scenarios and property tests can use it without source text); when the
//! scenario came from a file, [`validate_with_spans`] maps each issue back
//! to the `[[phase]]` or `[assertions]` header it concerns.

use super::lower::phase_episodes;
use super::schema::{GraphModel, LatencyKind, Phase, Scenario, ScenarioSpans};
use super::{ScenarioError, Span};
use veil_sim::fault::EpisodeEffect;

/// Which part of the scenario a validation issue concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Where {
    /// A top-level or sub-table field.
    Global,
    /// The `index`-th `[[phase]]` entry.
    Phase(usize),
    /// The `[assertions]` table.
    Assertions,
}

/// A single semantic problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Issue {
    /// Location category, mappable to a span via [`ScenarioSpans`].
    pub at: Where,
    /// What is wrong.
    pub message: String,
}

impl Issue {
    fn global(message: String) -> Self {
        Issue {
            at: Where::Global,
            message,
        }
    }

    fn phase(index: usize, message: String) -> Self {
        Issue {
            at: Where::Phase(index),
            message,
        }
    }

    fn assertions(message: String) -> Self {
        Issue {
            at: Where::Assertions,
            message,
        }
    }
}

/// Validates `s`, reporting the first issue found.
///
/// # Errors
///
/// The first [`Issue`], in field order: global parameters, graph, overlay,
/// link, health, phases (per-phase then cross-phase), attack, assertions.
pub fn check(s: &Scenario) -> Result<(), Issue> {
    check_globals(s)?;
    check_phases(s)?;
    check_attack_and_assertions(s)?;
    Ok(())
}

/// [`check`] with issues flattened to a spanless [`ScenarioError`].
///
/// # Errors
///
/// See [`check`].
pub fn validate(s: &Scenario) -> Result<(), ScenarioError> {
    check(s).map_err(|issue| ScenarioError::new(issue.message))
}

/// [`check`] with issues mapped back to source spans recorded at parse
/// time: phase issues point at their `[[phase]]` header, assertion issues
/// at the `[assertions]` header.
///
/// # Errors
///
/// See [`check`].
pub fn validate_with_spans(s: &Scenario, spans: &ScenarioSpans) -> Result<(), ScenarioError> {
    check(s).map_err(|issue| {
        let span = match issue.at {
            Where::Global => Span::NONE,
            Where::Phase(i) => spans.phases.get(i).copied().unwrap_or(Span::NONE),
            Where::Assertions => spans.assertions.unwrap_or(Span::NONE),
        };
        ScenarioError::at(span, issue.message)
    })
}

fn finite_positive(name: &str, v: f64) -> Result<(), Issue> {
    if v.is_finite() && v > 0.0 {
        Ok(())
    } else {
        Err(Issue::global(format!(
            "{name} must be finite and positive, got {v}"
        )))
    }
}

fn fraction_01(name: &str, v: f64, open_top: bool) -> Result<(), Issue> {
    let ok = v.is_finite() && v > 0.0 && if open_top { v < 1.0 } else { v <= 1.0 };
    if ok {
        Ok(())
    } else {
        let range = if open_top { "(0, 1)" } else { "(0, 1]" };
        Err(Issue::global(format!("{name} must be in {range}, got {v}")))
    }
}

fn check_globals(s: &Scenario) -> Result<(), Issue> {
    if s.nodes < 20 {
        return Err(Issue::global(format!(
            "nodes must be at least 20 for a meaningful overlay, got {}",
            s.nodes
        )));
    }
    finite_positive("horizon", s.horizon)?;
    fraction_01("availability", s.availability, false)?;
    finite_positive("mean_offline", s.mean_offline)?;

    fraction_01("graph.trust_f", s.graph.trust_f, false)?;
    if s.graph.source_multiplier == 0 {
        return Err(Issue::global(
            "graph.source_multiplier must be at least 1".into(),
        ));
    }
    match s.graph.model {
        GraphModel::HolmeKim { attach, triad } => {
            if attach == 0 {
                return Err(Issue::global("graph.attach must be at least 1".into()));
            }
            if !(triad.is_finite() && (0.0..=1.0).contains(&triad)) {
                return Err(Issue::global(format!(
                    "graph.triad must be in [0, 1], got {triad}"
                )));
            }
        }
        GraphModel::DegreeMatched { avg_degree, triad } => {
            finite_positive("graph.avg_degree", avg_degree)?;
            if !(triad.is_finite() && (0.0..=1.0).contains(&triad)) {
                return Err(Issue::global(format!(
                    "graph.triad must be in [0, 1], got {triad}"
                )));
            }
        }
    }

    let o = &s.overlay;
    if o.cache_size == 0 {
        return Err(Issue::global(
            "overlay.cache_size must be at least 1".into(),
        ));
    }
    if o.shuffle_length == 0 || o.shuffle_length > o.cache_size + 1 {
        return Err(Issue::global(format!(
            "overlay.shuffle_length must be in [1, cache_size + 1 = {}], got {}",
            o.cache_size + 1,
            o.shuffle_length
        )));
    }
    if o.target_links == 0 {
        return Err(Issue::global(
            "overlay.target_links must be at least 1".into(),
        ));
    }
    if let Some(r) = o.lifetime_ratio {
        finite_positive("overlay.lifetime_ratio", r)?;
    }
    finite_positive("overlay.shuffle_timeout", o.shuffle_timeout)?;

    if !(s.link.loss.is_finite() && (0.0..=1.0).contains(&s.link.loss)) {
        return Err(Issue::global(format!(
            "link.loss must be in [0, 1], got {}",
            s.link.loss
        )));
    }
    let lat = &s.link.latency;
    if !(lat.mean.is_finite() && lat.mean >= 0.0) {
        return Err(Issue::global(format!(
            "link.latency.mean must be finite and non-negative, got {}",
            lat.mean
        )));
    }
    if lat.dist == LatencyKind::Pareto
        && lat.mean > 0.0
        && !(lat.shape.is_finite() && lat.shape > 1.0)
    {
        return Err(Issue::global(format!(
            "link.latency.shape must exceed 1 for a pareto tail, got {}",
            lat.shape
        )));
    }

    finite_positive("health.window", s.health.window)?;

    let r = &s.remediation;
    if r.enabled && !s.health.enabled {
        return Err(Issue::global(
            "[remediation] requires `enabled = true` in [health] — the engine reacts to \
             health alerts and has nothing to consume without the monitor"
                .into(),
        ));
    }
    // Tuning is checked even while the engine is off, mirroring
    // `RemedyConfig::validate`: a latent bad value must not hide until
    // someone flips the switch.
    if r.backoff_shuffles == 0 {
        return Err(Issue::global(
            "remediation.backoff_shuffles must be at least 1 (zero would be a no-op \
             reaction)"
                .into(),
        ));
    }
    if r.rebootstrap_max_offers == 0 {
        return Err(Issue::global(
            "remediation.rebootstrap_max_offers must be at least 1 (zero would be a \
             no-op reaction)"
                .into(),
        ));
    }
    finite_positive("remediation.rebootstrap_cooldown", r.rebootstrap_cooldown)?;
    finite_positive("remediation.throttle_periods", r.throttle_periods)?;
    Ok(())
}

fn phase_issue(i: usize, kind: &str, msg: String) -> Issue {
    Issue::phase(i, format!("{kind} phase: {msg}"))
}

fn check_phase(i: usize, p: &Phase, nodes: usize, horizon: f64) -> Result<(), Issue> {
    let kind = p.kind_str();
    let pos = |name: &str, v: f64| -> Result<(), Issue> {
        if v.is_finite() && v > 0.0 {
            Ok(())
        } else {
            Err(phase_issue(
                i,
                kind,
                format!("{name} must be finite and positive, got {v}"),
            ))
        }
    };
    let nonneg = |name: &str, v: f64| -> Result<(), Issue> {
        if v.is_finite() && v >= 0.0 {
            Ok(())
        } else {
            Err(phase_issue(
                i,
                kind,
                format!("{name} must be finite and non-negative, got {v}"),
            ))
        }
    };
    let frac = |name: &str, v: f64, open_top: bool| -> Result<(), Issue> {
        let ok = v.is_finite() && v > 0.0 && if open_top { v < 1.0 } else { v <= 1.0 };
        if !ok {
            let range = if open_top { "(0, 1)" } else { "(0, 1]" };
            return Err(phase_issue(
                i,
                kind,
                format!("{name} must be in {range}, got {v}"),
            ));
        }
        if (v * nodes as f64).round() < 1.0 {
            return Err(phase_issue(
                i,
                kind,
                format!("{name} = {v} affects no nodes at {nodes} nodes"),
            ));
        }
        Ok(())
    };
    let region = |fraction: f64, from: f64| -> Result<(), Issue> {
        if !(from.is_finite() && (0.0..1.0).contains(&from)) {
            return Err(phase_issue(
                i,
                kind,
                format!("from must be in [0, 1), got {from}"),
            ));
        }
        if from + fraction > 1.0 + 1e-9 {
            return Err(phase_issue(
                i,
                kind,
                format!(
                    "region [from, from + fraction) = [{from}, {}) exceeds the population",
                    from + fraction
                ),
            ));
        }
        Ok(())
    };
    match *p {
        Phase::FlashCrowd { at, fraction, from } => {
            pos("at", at)?;
            frac("fraction", fraction, false)?;
            region(fraction, from)?;
            if fraction >= 1.0 - 1e-9 && from == 0.0 {
                return Err(phase_issue(
                    i,
                    kind,
                    "the whole population cannot join as a flash crowd — nobody would be \
                     online to receive them"
                        .into(),
                ));
            }
        }
        Phase::Blackout {
            start,
            duration,
            fraction,
            from,
        } => {
            nonneg("start", start)?;
            pos("duration", duration)?;
            frac("fraction", fraction, false)?;
            region(fraction, from)?;
        }
        Phase::Partition {
            start,
            duration,
            fraction,
        } => {
            nonneg("start", start)?;
            pos("duration", duration)?;
            frac("fraction", fraction, true)?;
        }
        Phase::Crash {
            start,
            duration,
            fraction,
            from,
        } => {
            nonneg("start", start)?;
            pos("duration", duration)?;
            frac("fraction", fraction, false)?;
            region(fraction, from)?;
        }
        Phase::ChurnWaves {
            start,
            period,
            duty,
            fraction,
            waves,
        } => {
            nonneg("start", start)?;
            pos("period", period)?;
            if !(duty.is_finite() && duty > 0.0 && duty < 1.0) {
                return Err(phase_issue(
                    i,
                    kind,
                    format!("duty must be in (0, 1), got {duty}"),
                ));
            }
            frac("fraction", fraction, false)?;
            if waves == 0 {
                return Err(phase_issue(i, kind, "waves must be at least 1".into()));
            }
        }
        Phase::CreepingLoss {
            start,
            end,
            steps,
            max_fraction,
        } => {
            nonneg("start", start)?;
            if !(end.is_finite() && end > start) {
                return Err(phase_issue(
                    i,
                    kind,
                    format!("end {end} must exceed start {start}"),
                ));
            }
            if steps == 0 {
                return Err(phase_issue(i, kind, "steps must be at least 1".into()));
            }
            frac("max_fraction", max_fraction, false)?;
        }
        Phase::Eclipse {
            start,
            duration,
            victims,
        } => {
            nonneg("start", start)?;
            pos("duration", duration)?;
            frac("victims", victims, true)?;
        }
    }
    if p.start_key() >= horizon {
        return Err(phase_issue(
            i,
            kind,
            format!(
                "starts at t = {} but the horizon is {horizon} — it would never run",
                p.start_key()
            ),
        ));
    }
    Ok(())
}

fn check_phases(s: &Scenario) -> Result<(), Issue> {
    for (i, p) in s.phases.iter().enumerate() {
        check_phase(i, p, s.nodes, s.horizon)?;
    }
    // Phases must be declared in start order: the declaration order is
    // also the lowered episode order, which byte-equality against
    // hand-built configs depends on.
    for i in 1..s.phases.len() {
        let prev = s.phases[i - 1].start_key();
        let cur = s.phases[i].start_key();
        if cur < prev {
            return Err(Issue::phase(
                i,
                format!(
                    "phase {} ({}) starts at t = {cur}, before phase {} ({}) at t = {prev} — \
                     declare phases in start order",
                    i + 1,
                    s.phases[i].kind_str(),
                    i,
                    s.phases[i - 1].kind_str(),
                ),
            ));
        }
    }
    // No two blackout-style episodes (from different phases) may take an
    // overlapping node region offline over an overlapping time interval —
    // the lowered schedule would double-book those nodes and recovery
    // times become ambiguous.
    let mut blackouts: Vec<(usize, f64, f64, u32, u32)> = Vec::new();
    for (i, p) in s.phases.iter().enumerate() {
        for ep in phase_episodes(p, s.nodes) {
            if let EpisodeEffect::Blackout { first, count } = ep.effect {
                blackouts.push((i, ep.start, ep.end, first, count));
            }
        }
    }
    for (a_idx, a) in blackouts.iter().enumerate() {
        for b in &blackouts[a_idx + 1..] {
            if a.0 == b.0 {
                continue; // same phase (e.g. successive churn waves)
            }
            let time_overlap = a.1 < b.2 && b.1 < a.2;
            let region_overlap = a.3 < b.3 + b.4 && b.3 < a.3 + a.4;
            if time_overlap && region_overlap {
                return Err(Issue::phase(
                    b.0,
                    format!(
                        "phase {} ({}) blacks out nodes [{}, {}) over t = [{}, {}), \
                         overlapping phase {} ({}) on nodes [{}, {}) over t = [{}, {})",
                        b.0 + 1,
                        s.phases[b.0].kind_str(),
                        b.3,
                        b.3 + b.4,
                        b.1,
                        b.2,
                        a.0 + 1,
                        s.phases[a.0].kind_str(),
                        a.3,
                        a.3 + a.4,
                        a.1,
                        a.2,
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn check_attack_and_assertions(s: &Scenario) -> Result<(), Issue> {
    if let Some(attack) = &s.attack {
        if attack.observers == 0 {
            return Err(Issue::global("attack.observers must be at least 1".into()));
        }
        if attack.observers >= s.nodes {
            return Err(Issue::global(format!(
                "attack.observers ({}) must be smaller than nodes ({})",
                attack.observers, s.nodes
            )));
        }
    }
    let a = &s.assertions;
    if a.needs_attack() && s.attack.is_none() {
        return Err(Issue::assertions(
            "observer assertions (max_observed_*, forbid_vertex_cut) require an [attack] \
             section"
                .into(),
        ));
    }
    if a.needs_health() && !s.health.enabled {
        return Err(Issue::assertions(
            "alert assertions require `enabled = true` in [health]".into(),
        ));
    }
    let unit = |name: &str, v: Option<f64>| -> Result<(), Issue> {
        if let Some(v) = v {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(Issue::assertions(format!(
                    "{name} must be in [0, 1], got {v}"
                )));
            }
        }
        Ok(())
    };
    unit("max_disconnected", a.max_disconnected)?;
    unit("min_coverage", a.min_coverage)?;
    unit("min_shuffle_success_rate", a.min_shuffle_success_rate)?;
    unit("max_observed_node_fraction", a.max_observed_node_fraction)?;
    unit("max_observed_edge_fraction", a.max_observed_edge_fraction)?;
    for d in &a.require_detectors {
        if a.forbid_detectors.contains(d) {
            return Err(Issue::assertions(format!(
                "detector `{d}` is both required and forbidden"
            )));
        }
    }
    if let (Some(min), Some(max)) = (a.min_alerts, a.max_alerts) {
        if min > max {
            return Err(Issue::assertions(format!(
                "min_alerts ({min}) exceeds max_alerts ({max})"
            )));
        }
    }
    if let Some(bound) = a.recovery_time_at_most {
        if !(bound.is_finite() && bound > 0.0) {
            return Err(Issue::assertions(format!(
                "recovery_time_at_most must be finite and positive, got {bound}"
            )));
        }
        match super::lower::recovery_interval(s) {
            None => {
                return Err(Issue::assertions(
                    "recovery_time_at_most needs a blackout-style phase starting after \
                     t = 0 — there is no outage to recover from"
                        .into(),
                ))
            }
            Some((_, end)) if end >= s.horizon => {
                return Err(Issue::assertions(format!(
                    "recovery_time_at_most: the last blackout ends at t = {end}, at or \
                     past the horizon {} — recovery could never be observed",
                    s.horizon
                )))
            }
            Some(_) => {}
        }
    }
    if !a.reaction_fired.is_empty() && !s.remediation.enabled {
        return Err(Issue::assertions(
            "reaction_fired requires `enabled = true` in [remediation]".into(),
        ));
    }
    for name in &a.reaction_fired {
        let armed = match name.as_str() {
            "backoff" => s.remediation.backoff,
            "rebootstrap" => s.remediation.rebootstrap,
            "throttle" => s.remediation.throttle,
            _ => true, // unknown names are rejected at parse time
        };
        if !armed {
            return Err(Issue::assertions(format!(
                "reaction `{name}` is asserted to fire but its [remediation] flag is off"
            )));
        }
    }
    Ok(())
}

impl Scenario {
    /// Semantic validation; see [`validate`].
    ///
    /// # Errors
    ///
    /// The first semantic issue, spanless.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        validate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::schema::Assertions;
    use super::*;

    fn base() -> Scenario {
        Scenario {
            nodes: 100,
            horizon: 50.0,
            ..Scenario::default()
        }
    }

    #[test]
    fn default_scenario_is_valid() {
        base().validate().unwrap();
    }

    #[test]
    fn out_of_order_phases_rejected() {
        let mut s = base();
        s.phases = vec![
            Phase::Blackout {
                start: 20.0,
                duration: 5.0,
                fraction: 0.3,
                from: 0.0,
            },
            Phase::Crash {
                start: 10.0,
                duration: 5.0,
                fraction: 0.2,
                from: 0.5,
            },
        ];
        let issue = check(&s).unwrap_err();
        assert_eq!(issue.at, Where::Phase(1));
        assert!(issue.message.contains("start order"), "{}", issue.message);
    }

    #[test]
    fn overlapping_blackouts_rejected() {
        let mut s = base();
        s.phases = vec![
            Phase::Blackout {
                start: 10.0,
                duration: 10.0,
                fraction: 0.5,
                from: 0.0,
            },
            Phase::Blackout {
                start: 15.0,
                duration: 10.0,
                fraction: 0.5,
                from: 0.25,
            },
        ];
        let issue = check(&s).unwrap_err();
        assert_eq!(issue.at, Where::Phase(1));
        assert!(issue.message.contains("overlapping"), "{}", issue.message);
    }

    #[test]
    fn disjoint_regions_may_overlap_in_time() {
        let mut s = base();
        s.phases = vec![
            Phase::Blackout {
                start: 10.0,
                duration: 10.0,
                fraction: 0.3,
                from: 0.0,
            },
            Phase::Blackout {
                start: 12.0,
                duration: 10.0,
                fraction: 0.3,
                from: 0.5,
            },
        ];
        check(&s).unwrap();
    }

    #[test]
    fn attack_assertions_need_attack_section() {
        let mut s = base();
        s.assertions = Assertions {
            forbid_vertex_cut: true,
            ..Assertions::default()
        };
        let issue = check(&s).unwrap_err();
        assert_eq!(issue.at, Where::Assertions);
        assert!(issue.message.contains("[attack]"), "{}", issue.message);
    }

    #[test]
    fn alert_assertions_need_health_enabled() {
        let mut s = base();
        s.assertions.max_alerts = Some(3);
        let issue = check(&s).unwrap_err();
        assert!(issue.message.contains("[health]"), "{}", issue.message);
        s.health.enabled = true;
        check(&s).unwrap();
    }

    #[test]
    fn remediation_needs_health_enabled() {
        let mut s = base();
        s.remediation.enabled = true;
        let issue = check(&s).unwrap_err();
        assert!(issue.message.contains("[health]"), "{}", issue.message);
        s.health.enabled = true;
        check(&s).unwrap();
    }

    #[test]
    fn remediation_tuning_checked_even_when_disabled() {
        let mut s = base();
        s.remediation.backoff_shuffles = 0;
        let issue = check(&s).unwrap_err();
        assert!(
            issue.message.contains("backoff_shuffles"),
            "{}",
            issue.message
        );
    }

    #[test]
    fn recovery_assertion_needs_a_blackout_phase() {
        let mut s = base();
        s.assertions.recovery_time_at_most = Some(10.0);
        let issue = check(&s).unwrap_err();
        assert_eq!(issue.at, Where::Assertions);
        assert!(issue.message.contains("blackout"), "{}", issue.message);

        s.phases = vec![Phase::Blackout {
            start: 20.0,
            duration: 40.0,
            fraction: 0.5,
            from: 0.0,
        }];
        // Ends at 60 > horizon 50: recovery unobservable.
        let issue = check(&s).unwrap_err();
        assert!(issue.message.contains("horizon"), "{}", issue.message);

        s.phases = vec![Phase::Blackout {
            start: 20.0,
            duration: 10.0,
            fraction: 0.5,
            from: 0.0,
        }];
        check(&s).unwrap();
    }

    #[test]
    fn reaction_fired_needs_remediation_and_armed_flag() {
        let mut s = base();
        s.assertions.reaction_fired = vec!["rebootstrap".into()];
        let issue = check(&s).unwrap_err();
        assert!(issue.message.contains("[remediation]"), "{}", issue.message);

        s.health.enabled = true;
        s.remediation.enabled = true;
        check(&s).unwrap();

        s.remediation.rebootstrap = false;
        let issue = check(&s).unwrap_err();
        assert!(issue.message.contains("flag is off"), "{}", issue.message);
    }

    #[test]
    fn phase_past_horizon_rejected() {
        let mut s = base();
        s.phases = vec![Phase::Blackout {
            start: 60.0,
            duration: 5.0,
            fraction: 0.3,
            from: 0.0,
        }];
        let issue = check(&s).unwrap_err();
        assert!(issue.message.contains("never run"), "{}", issue.message);
    }
}
