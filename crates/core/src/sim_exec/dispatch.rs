//! Sequential event dispatch: the original single-threaded executor.
//!
//! One global [`veil_sim::engine::Engine`] orders every event; handlers
//! take `&mut Simulation` and may touch any node directly (the zero-latency
//! shuffle even runs both endpoints synchronously). This path is
//! byte-identical to the paper's simulator and is what figure pipelines and
//! committed baselines run on. The sharded executor in
//! [`super::shard`]/[`super::executor`] replaces it only when a fault model
//! or positive link latency gives the event graph enough lookahead to
//! window.

use crate::protocol;
use crate::simulation::Simulation;
use rand::Rng;
use veil_obs::EventKind as Obs;
use veil_sim::SimTime;

use super::state::lifetime_for;
use super::{two_mut, Delivery, Event, MessageKind, MessageRecord, PendingExchange};
use crate::node::LinkTarget;
use veil_sim::fault::EpisodeEffect;

impl Simulation {
    /// Emits an observability event: feeds the health monitor's window
    /// counters, then records the event. One branch when recording is off;
    /// the payload closure is only built when it is on.
    pub(crate) fn emit(&mut self, now: SimTime, node: Option<u32>, kind: impl FnOnce() -> Obs) {
        super::record(&self.recorder, &mut self.health, now.as_f64(), node, kind);
    }

    /// Closes elapsed health-monitor windows before an event at `now` is
    /// processed. Alerts are stamped at the window-grid boundary, so the
    /// timeline is independent of which event happened to cross it. When
    /// remediation is enabled, the window's alerts are handed straight to
    /// the engine and applied before the event runs.
    pub(crate) fn health_tick(&mut self, now: SimTime) {
        let due = self.health.as_ref().is_some_and(|h| h.due(now.as_f64()));
        if !due {
            return;
        }
        let online = self.online_mask();
        let pseudonym_degrees: Vec<usize> = self
            .cells
            .iter()
            .map(|c| c.node.sampler.link_count())
            .collect();
        let degrees: Vec<usize> = pseudonym_degrees
            .iter()
            .enumerate()
            .map(|(v, p)| self.trust.neighbors(v).len() + p)
            .collect();
        let alerts = match self.health.as_mut() {
            Some(h) => h.rotate(now.as_f64(), &online, &degrees, &pseudonym_degrees),
            None => return,
        };
        if let Some(rm) = self.remedy.as_mut() {
            let decisions = rm.decide(&alerts, &online);
            rm.apply(&decisions, &mut self.cells, &self.trust, &self.recorder);
        }
    }

    pub(crate) fn log_message(&mut self, record: MessageRecord) {
        if let Some(log) = &mut self.message_log {
            log.push(record);
        }
    }

    pub(crate) fn handle(&mut self, now: SimTime, event: Event) {
        if self.health.is_some() {
            self.health_tick(now);
        }
        match event {
            Event::Shuffle(v) => self.handle_shuffle(now, v as usize),
            Event::Churn { node, generation } => self.handle_churn(now, node as usize, generation),
            Event::BlackoutEnd { node, generation } => {
                self.handle_blackout_end(now, node as usize, generation)
            }
            Event::DeliverRequest(d) => self.handle_request_delivery(now, *d),
            Event::DeliverResponse(d) => self.handle_response_delivery(now, *d),
            Event::ShuffleTimeout { exchange } => self.handle_shuffle_timeout(now, exchange),
            Event::EpisodeStart(idx) => self.handle_episode_start(now, idx as usize),
        }
    }

    fn handle_shuffle(&mut self, now: SimTime, v: usize) {
        // The timer always re-arms; offline nodes simply skip the round.
        self.engine.schedule_at(now + 1.0, Event::Shuffle(v as u32));
        if !self.cells[v].churn.is_online() {
            return;
        }
        // Lazy renewal: a node notices its own pseudonym expired at the
        // next timer tick and mints a fresh one.
        if self.cells[v].node.needs_pseudonym(now) {
            let lifetime = lifetime_for(&self.cfg, &self.cells[v]);
            self.cells[v]
                .node
                .renew_pseudonym(&mut self.svc, now, lifetime);
            self.emit(now, Some(v as u32), || Obs::PseudonymMinted { lifetime });
        }
        let purged = self.cells[v].node.purge_expired(now);
        if purged > 0 {
            self.emit(now, Some(v as u32), || Obs::PseudonymsExpired {
                count: purged as u64,
            });
        }
        // Adaptive shuffle suppression: once the link set has been stable
        // for the configured number of periods, skip initiating (responses
        // still happen, and any change re-arms the node).
        let activity =
            self.cells[v].node.sampler.additions() + self.cells[v].node.sampler.removals();
        if activity == self.cells[v].last_sampler_activity {
            self.cells[v].stable_ticks = self.cells[v].stable_ticks.saturating_add(1);
        } else {
            self.cells[v].stable_ticks = 0;
        }
        self.cells[v].last_sampler_activity = activity;
        if let Some(k) = self.cfg.stop_after_stable_periods {
            if self.cells[v].stable_ticks >= k {
                self.cells[v].node.stats.shuffles_suppressed += 1;
                return;
            }
        }
        // Remediation backoff: sit out this round and decay the counter.
        if self.cells[v].shuffle_backoff > 0 {
            self.cells[v].shuffle_backoff -= 1;
            self.cells[v].node.stats.shuffles_suppressed += 1;
            return;
        }
        if self.fault.is_some() {
            self.faulty_shuffle(now, v);
            return;
        }
        let target = if self.cfg.skip_offline_peers {
            // The ideal link layer reports deliverability, so the node
            // shuffles with a uniformly random *online* link (this is what
            // makes the paper's request/response count come out at exactly
            // two messages per period).
            let links = self.cells[v].node.links(now);
            let online: Vec<_> = links
                .into_iter()
                .filter(|l| self.cells[l.resolve() as usize].churn.is_online())
                .collect();
            if online.is_empty() {
                None
            } else {
                let rng = &mut self.cells[v].proto_rng;
                Some(online[rng.gen_range(0..online.len())])
            }
        } else {
            let cell = &mut self.cells[v];
            cell.node.pick_link(now, &mut cell.proto_rng)
        };
        let Some(target) = target else {
            return;
        };
        let dest = target.resolve() as usize;
        debug_assert_ne!(dest, v, "nodes never link to themselves");
        let trusted_link = target.is_trusted();
        self.emit(now, Some(v as u32), || Obs::ShuffleStart {
            target: dest as u64,
            trusted: trusted_link,
        });
        if !self.cells[dest].churn.is_online() {
            // Request sent into the anonymity service but never delivered.
            self.cells[v].node.stats.requests_sent += 1;
            self.cells[v].node.stats.dropped_requests += 1;
            self.emit(now, Some(v as u32), || Obs::MessageDropped {
                exchange: 0,
                response: false,
            });
            self.log_message(MessageRecord {
                time: now,
                from: v as u32,
                to: dest as u32,
                kind: MessageKind::Dropped,
                trusted_link,
            });
            return;
        }
        if self.effective_latency > 0.0 {
            // Asynchronous exchange: build the request offer now, deliver
            // it after the link latency; the peer may churn in transit.
            let offer = {
                let cell = &mut self.cells[v];
                protocol::build_offer(
                    &mut cell.node,
                    self.cfg.shuffle_length,
                    now,
                    &mut cell.proto_rng,
                )
            };
            self.cells[v].node.stats.requests_sent += 1;
            self.log_message(MessageRecord {
                time: now,
                from: v as u32,
                to: dest as u32,
                kind: MessageKind::Request,
                trusted_link,
            });
            self.engine.schedule_in(
                self.effective_latency,
                Event::DeliverRequest(Box::new(Delivery {
                    from: v as u32,
                    to: dest as u32,
                    offer: offer.entries,
                    initiator_sent: offer.sent_from_cache,
                    trusted_link,
                    exchange: 0,
                    attempt: 0,
                })),
            );
            return;
        }
        // Zero latency: run the exchange over the ideal link synchronously.
        let mut rng = self.cells[v].proto_rng.clone();
        let (initiator, responder) = two_mut(&mut self.cells, v, dest);
        protocol::execute_shuffle(
            &mut initiator.node,
            &mut responder.node,
            self.cfg.shuffle_length,
            now,
            &mut rng,
        );
        self.cells[v].proto_rng = rng;
        self.emit(now, Some(v as u32), || Obs::ShuffleComplete { exchange: 0 });
        self.log_message(MessageRecord {
            time: now,
            from: v as u32,
            to: dest as u32,
            kind: MessageKind::Request,
            trusted_link,
        });
        self.log_message(MessageRecord {
            time: now,
            from: dest as u32,
            to: v as u32,
            kind: MessageKind::Response,
            trusted_link,
        });
    }

    /// Initiates one shuffle round over the faulty link layer: pick a link
    /// (over *all* links — a lossy layer cannot report deliverability, so
    /// there is no `skip_offline_peers` shortcut), register a pending
    /// exchange, and transmit the request guarded by a timeout.
    fn faulty_shuffle(&mut self, now: SimTime, v: usize) {
        let crashed = self
            .fault
            .as_ref()
            .is_some_and(|f| f.crashed(v as u32, now.as_f64()));
        if crashed {
            return; // a silently crashed node initiates nothing
        }
        let target = {
            let cell = &mut self.cells[v];
            cell.node.pick_link(now, &mut cell.proto_rng)
        };
        let Some(target) = target else {
            return;
        };
        let dest = target.resolve();
        debug_assert_ne!(dest as usize, v, "nodes never link to themselves");
        let target_pseudonym = match target {
            LinkTarget::Pseudonym(p) => Some(p.id()),
            LinkTarget::Trusted(_) => None,
        };
        let offer = {
            let cell = &mut self.cells[v];
            protocol::build_offer(
                &mut cell.node,
                self.cfg.shuffle_length,
                now,
                &mut cell.proto_rng,
            )
        };
        let exchange = self.next_exchange;
        self.next_exchange += 1;
        self.emit(now, Some(v as u32), || Obs::ShuffleStart {
            target: u64::from(dest),
            trusted: target.is_trusted(),
        });
        self.pending.insert(
            exchange,
            PendingExchange {
                initiator: v as u32,
                dest,
                target_pseudonym,
                trusted_link: target.is_trusted(),
                offer: offer.entries,
                sent_from_cache: offer.sent_from_cache,
                attempt: 0,
            },
        );
        self.transmit_request(now, exchange);
    }

    /// Sends (or resends) the request of a pending exchange through the
    /// fault model, and arms the exchange's timeout with exponential
    /// backoff.
    fn transmit_request(&mut self, now: SimTime, exchange: u64) {
        let (initiator, dest, trusted_link, attempt) = {
            let p = &self.pending[&exchange];
            (p.initiator, p.dest, p.trusted_link, p.attempt)
        };
        let v = initiator as usize;
        let dropped = self.fault.as_ref().expect("faulty path").is_dropped(
            initiator,
            dest,
            now.as_f64(),
            &mut self.fault_rng,
        );
        self.cells[v].node.stats.requests_sent += 1;
        if dropped {
            self.cells[v].node.stats.dropped_requests += 1;
            self.emit(now, Some(initiator), || Obs::MessageDropped {
                exchange,
                response: false,
            });
        }
        self.log_message(MessageRecord {
            time: now,
            from: initiator,
            to: dest,
            kind: if dropped {
                MessageKind::Dropped
            } else {
                MessageKind::Request
            },
            trusted_link,
        });
        if !dropped {
            let latency = self
                .fault
                .as_ref()
                .expect("faulty path")
                .sample_latency(&mut self.fault_rng);
            let (offer, sent_from_cache) = {
                let p = &self.pending[&exchange];
                (p.offer.clone(), p.sent_from_cache.clone())
            };
            self.engine.schedule_in(
                latency,
                Event::DeliverRequest(Box::new(Delivery {
                    from: initiator,
                    to: dest,
                    offer,
                    initiator_sent: sent_from_cache,
                    trusted_link,
                    exchange,
                    attempt,
                })),
            );
        }
        // Exponential backoff: timeout doubles with every retransmission.
        let backoff = self.cfg.shuffle_timeout * f64::from(1u32 << attempt.min(16));
        self.engine
            .schedule_in(backoff, Event::ShuffleTimeout { exchange });
    }

    /// The timeout of a faulty-link exchange fired. If the response already
    /// arrived this is a no-op; otherwise retry within budget, then give up
    /// and apply Cyclon-style recovery.
    fn handle_shuffle_timeout(&mut self, now: SimTime, exchange: u64) {
        let (initiator, attempt) = match self.pending.get(&exchange) {
            Some(p) => (p.initiator, p.attempt),
            None => return, // completed: the response arrived in time
        };
        let v = initiator as usize;
        let crashed = self
            .fault
            .as_ref()
            .is_some_and(|f| f.crashed(initiator, now.as_f64()));
        if !self.cells[v].churn.is_online() || crashed {
            // The initiator itself is gone; nobody is waiting any more.
            self.pending.remove(&exchange);
            return;
        }
        self.emit(now, Some(initiator), || Obs::ShuffleTimeout {
            exchange,
            attempt: u64::from(attempt),
        });
        if attempt < self.cfg.shuffle_retry_budget {
            self.pending
                .get_mut(&exchange)
                .expect("checked above")
                .attempt += 1;
            self.cells[v].node.stats.shuffle_retries += 1;
            self.emit(now, Some(initiator), || Obs::ShuffleRetry {
                exchange,
                attempt: u64::from(attempt) + 1,
            });
            self.transmit_request(now, exchange);
            return;
        }
        // Budget exhausted: count the failure and evict the unresponsive
        // pseudonym so the sampler can replace it (trusted links are part
        // of the social graph and are never evicted).
        let p = self.pending.remove(&exchange).expect("checked above");
        self.cells[v].node.stats.shuffle_failures += 1;
        self.emit(now, Some(initiator), || Obs::ShuffleFailure { exchange });
        if let Some(id) = p.target_pseudonym {
            self.cells[v].node.cache.remove(id);
            self.cells[v].node.sampler.evict(id);
            self.emit(now, Some(initiator), || Obs::PeerEvicted {
                pseudonym: id.0,
            });
        }
    }

    /// A scripted episode with a simulation-side effect begins. Blackout
    /// episodes reuse [`Simulation::inject_blackout`], so they compose with
    /// natural churn and manual injections.
    fn handle_episode_start(&mut self, now: SimTime, idx: usize) {
        let Some(ep) = self
            .fault
            .as_ref()
            .and_then(|f| f.episodes.get(idx))
            .copied()
        else {
            return;
        };
        self.emit(now, None, || Obs::EpisodeStart {
            index: idx as u64,
            kind: ep.effect.kind_str().to_string(),
        });
        if let EpisodeEffect::Blackout { first, count } = ep.effect {
            let n = self.cells.len();
            let lo = (first as usize).min(n);
            let hi = (first as usize).saturating_add(count as usize).min(n);
            let victims: Vec<usize> = (lo..hi).collect();
            let duration = ep.end - ep.start;
            if !victims.is_empty() && duration > 0.0 && duration.is_finite() {
                self.inject_blackout_at(now, &victims, duration);
            }
        }
    }

    /// A delayed shuffle request reaches the responder.
    fn handle_request_delivery(&mut self, now: SimTime, delivery: Delivery) {
        let responder = delivery.to as usize;
        let crashed = self
            .fault
            .as_ref()
            .is_some_and(|f| f.crashed(delivery.to, now.as_f64()));
        if !self.cells[responder].churn.is_online() || crashed {
            // Lost in transit: the responder churned out (or sits silently
            // crashed). The initiator's request produces no response; on
            // the faulty path the exchange timeout will recover.
            self.cells[delivery.from as usize]
                .node
                .stats
                .dropped_requests += 1;
            self.emit(now, Some(delivery.from), || Obs::MessageDropped {
                exchange: delivery.exchange,
                response: false,
            });
            return;
        }
        // Mirror the synchronous order: build the response offer before
        // absorbing the request (Cyclon semantics).
        let response = {
            let cell = &mut self.cells[responder];
            protocol::build_offer(
                &mut cell.node,
                self.cfg.shuffle_length,
                now,
                &mut cell.proto_rng,
            )
        };
        {
            let cell = &mut self.cells[responder];
            protocol::receive_offer(
                &mut cell.node,
                &delivery.offer,
                &response.sent_from_cache,
                now,
                &mut cell.proto_rng,
            );
        }
        self.cells[responder].node.stats.responses_sent += 1;
        if self.fault.is_some() {
            // The response is itself subject to loss and sampled latency;
            // a dropped response is recovered by the initiator's timeout.
            let dropped = self.fault.as_ref().expect("faulty path").is_dropped(
                delivery.to,
                delivery.from,
                now.as_f64(),
                &mut self.fault_rng,
            );
            self.log_message(MessageRecord {
                time: now,
                from: delivery.to,
                to: delivery.from,
                kind: if dropped {
                    MessageKind::Dropped
                } else {
                    MessageKind::Response
                },
                trusted_link: delivery.trusted_link,
            });
            if dropped {
                self.cells[responder].node.stats.dropped_requests += 1;
                self.emit(now, Some(delivery.to), || Obs::MessageDropped {
                    exchange: delivery.exchange,
                    response: true,
                });
                return;
            }
            let latency = self
                .fault
                .as_ref()
                .expect("faulty path")
                .sample_latency(&mut self.fault_rng);
            self.engine.schedule_in(
                latency,
                Event::DeliverResponse(Box::new(Delivery {
                    from: delivery.to,
                    to: delivery.from,
                    offer: response.entries,
                    initiator_sent: delivery.initiator_sent,
                    trusted_link: delivery.trusted_link,
                    exchange: delivery.exchange,
                    attempt: delivery.attempt,
                })),
            );
            return;
        }
        self.log_message(MessageRecord {
            time: now,
            from: delivery.to,
            to: delivery.from,
            kind: MessageKind::Response,
            trusted_link: delivery.trusted_link,
        });
        self.engine.schedule_in(
            self.effective_latency,
            Event::DeliverResponse(Box::new(Delivery {
                from: delivery.to,
                to: delivery.from,
                offer: response.entries,
                initiator_sent: delivery.initiator_sent,
                trusted_link: delivery.trusted_link,
                exchange: 0,
                attempt: 0,
            })),
        );
    }

    /// A delayed shuffle response reaches the original initiator.
    fn handle_response_delivery(&mut self, now: SimTime, delivery: Delivery) {
        if self.fault.is_some() && self.pending.remove(&delivery.exchange).is_none() {
            // A duplicate answer to a retransmitted request whose exchange
            // already completed or failed; ignore it.
            return;
        }
        let initiator = delivery.to as usize;
        let crashed = self
            .fault
            .as_ref()
            .is_some_and(|f| f.crashed(delivery.to, now.as_f64()));
        if !self.cells[initiator].churn.is_online() || crashed {
            return; // response lost; the initiator churned out
        }
        let cell = &mut self.cells[initiator];
        protocol::receive_offer(
            &mut cell.node,
            &delivery.offer,
            &delivery.initiator_sent,
            now,
            &mut cell.proto_rng,
        );
        self.emit(now, Some(delivery.to), || Obs::ShuffleComplete {
            exchange: delivery.exchange,
        });
    }
}
