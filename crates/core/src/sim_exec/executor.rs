//! The sharded runtime: window loop, fork/join dispatch and the barrier.
//!
//! Nodes are partitioned into `S` contiguous ranges; each [`Shard`] owns
//! its range's cells, engine, pending exchanges and pseudonym minter.
//! Execution advances in bounded windows on the global grid
//! (`mailbox::WINDOW`): every shard drains its own events strictly before
//! the window cap on a `veil-par` worker, then the coordinator runs the
//! barrier single-threaded:
//!
//! 1. merge all outboxes in the canonical `(deliver_at, src, seq)` order
//!    and inject each message into its destination's owner shard,
//! 2. apply deferred cross-shard stat credits,
//! 3. merge the per-shard message logs in canonical record order,
//! 4. replay buffered health observations (sorted by time, rotations
//!    interleaved where due) into the coordinator-owned monitor.
//!
//! Every barrier step is a pure function of set-of-shard-outputs, so the
//! post-barrier state — and therefore the whole run — is invariant in the
//! shard count.

use veil_sim::SimTime;

use super::mailbox::{sort_canonical, sort_records, HealthObs, OutMsg, WINDOW};
use super::shard::{Shard, WindowCtx};
use super::state::{owner_of, shard_starts, NodeCell};
use crate::simulation::Simulation;

/// Runtime state of the sharded executor (present only when the
/// simulation was constructed with `shards: Some(_)` and the event graph
/// has lookahead — a fault model or positive link latency).
pub(crate) struct ShardedRuntime {
    pub(crate) shards: Vec<Shard>,
    /// `shards.len() + 1` range boundaries; shard `i` owns
    /// `starts[i]..starts[i + 1]`.
    pub(crate) starts: Vec<usize>,
    /// Owner shard of every node.
    pub(crate) owner: Vec<u32>,
    /// Index of the next *incomplete* window; the window covers
    /// `[window_index · W, (window_index + 1) · W)`.
    pub(crate) window_index: u64,
}

impl ShardedRuntime {
    pub(crate) fn new(n: usize, s: usize, master_seed: u64) -> Self {
        let starts = shard_starts(n, s);
        let owner = owner_of(n, &starts);
        let shards = starts
            .windows(2)
            .map(|w| Shard::new(w[0], master_seed))
            .collect();
        Self {
            shards,
            starts,
            owner,
            window_index: 0,
        }
    }

    /// The shard owning node `v`.
    pub(crate) fn shard_of_mut(&mut self, v: usize) -> &mut Shard {
        let i = self.owner[v] as usize;
        &mut self.shards[i]
    }

    /// Total pseudonyms minted across all shard-local keyed minters.
    pub(crate) fn pseudonyms_minted(&self) -> u64 {
        self.shards.iter().map(|s| s.minter.minted()).sum()
    }

    /// Sum of engine event counters across shards (for metrics).
    pub(crate) fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.processed()).sum()
    }

    pub(crate) fn queue_high_water(&self) -> usize {
        self.shards.iter().map(|s| s.engine.high_water_mark()).sum()
    }

    pub(crate) fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.engine.pending()).sum()
    }
}

/// One shard's slice of work for a window: the shard plus the cells it
/// owns, bundled so `veil-par` can hand each worker exclusive `&mut`s.
struct WorkItem<'a> {
    shard: &'a mut Shard,
    cells: &'a mut [NodeCell],
}

impl Simulation {
    /// Advances the sharded executor to `horizon` window by window.
    pub(crate) fn run_until_sharded(&mut self, horizon: SimTime) {
        loop {
            let window_index = self.sharded.as_ref().expect("sharded").window_index;
            let boundary = SimTime::new((window_index + 1) as f64 * WINDOW);
            let cap = boundary.min(horizon);
            self.run_one_window(cap);
            if cap == boundary {
                self.sharded.as_mut().expect("sharded").window_index += 1;
            }
            if boundary >= horizon {
                break;
            }
        }
        self.current_time = horizon;
    }

    /// Runs one (possibly partial) window: fork shards, join, barrier.
    fn run_one_window(&mut self, cap: SimTime) {
        // Deliverability oracle for the whole window: the online mask as
        // of the opening barrier. Identical for every shard count.
        let online: Vec<bool> = self.cells.iter().map(|c| c.churn.is_online()).collect();
        let log_on = self.message_log.is_some();
        let buffer_health = self.health.is_some();
        let Simulation {
            cfg,
            trust,
            cells,
            sharded,
            fault,
            effective_latency,
            master_seed,
            recorder,
            message_log,
            health,
            remedy,
            ..
        } = self;
        let rt = sharded.as_mut().expect("sharded runtime");
        let ctx = WindowCtx {
            cfg,
            fault: fault.as_ref(),
            effective_latency: *effective_latency,
            master_seed: *master_seed,
            recorder,
            online: &online,
            cap,
            log_on,
            buffer_health,
        };

        // Fork: hand every shard exclusive &muts to its own cells.
        let mut items: Vec<WorkItem<'_>> = Vec::with_capacity(rt.shards.len());
        let mut rest: &mut [NodeCell] = cells;
        for (i, shard) in rt.shards.iter_mut().enumerate() {
            let len = rt.starts[i + 1] - rt.starts[i];
            let (head, tail) = rest.split_at_mut(len);
            rest = tail;
            items.push(WorkItem { shard, cells: head });
        }
        let s = items.len();
        veil_par::fork_join_indexed(&mut items, Some(s), |i, item| {
            ctx.recorder.label_thread(|| format!("shard-{i}"));
            item.shard.run_window(item.cells, &ctx);
        });
        drop(items);

        // Barrier step 1: canonical cross-shard message merge. The sort
        // key (deliver_at, src, seq) depends only on each sender's own
        // history, and the engines pop equal-time events FIFO, so the
        // injection order — hence everything downstream — is invariant in
        // the shard layout.
        let mut batch: Vec<OutMsg> = Vec::new();
        for shard in rt.shards.iter_mut() {
            batch.append(&mut shard.outbox);
        }
        sort_canonical(&mut batch);
        for msg in batch {
            let owner = rt.owner[msg.dest as usize] as usize;
            rt.shards[owner]
                .engine
                .schedule_at(msg.deliver_at, msg.event);
        }

        // Barrier step 2: deferred foreign stat credits (responder-side
        // drops debit the initiator, who may live on another shard).
        // Increments commute, so shard iteration order does not matter.
        for shard in rt.shards.iter_mut() {
            for v in shard.credits.drain(..) {
                cells[v as usize].node.stats.dropped_requests += 1;
            }
        }

        // Barrier step 3: merge the window's message logs canonically.
        if let Some(log) = message_log {
            let mut records = Vec::new();
            for shard in rt.shards.iter_mut() {
                records.append(&mut shard.log_buf);
            }
            sort_records(&mut records);
            log.extend(records);
        } else {
            for shard in rt.shards.iter_mut() {
                shard.log_buf.clear();
            }
        }

        // Barrier step 4: replay buffered observations into the
        // coordinator-owned health monitor. `observe` is commutative among
        // equal-time events, so a stable sort by time alone fixes the
        // monitor's state; rotations interleave where they fall due, with
        // online/degree masks read from the barrier-time cells.
        //
        // Barrier step 5 (when self-healing is on): feed every alert the
        // replay fired into the remediation engine and apply its reactions
        // against the barrier-time cells. Alerts, masks and cells are all
        // pure functions of set-of-shard-outputs, so the reactions — like
        // everything else here — are invariant in the shard count.
        if let Some(h) = health.as_mut() {
            let mut obs: Vec<HealthObs> = Vec::new();
            for shard in rt.shards.iter_mut() {
                obs.append(&mut shard.health_buf);
            }
            obs.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("finite event times"));
            let online_now: Vec<bool> = cells.iter().map(|c| c.churn.is_online()).collect();
            let pdeg_now: Vec<usize> = cells.iter().map(|c| c.node.sampler.link_count()).collect();
            let degrees_now: Vec<usize> = pdeg_now
                .iter()
                .enumerate()
                .map(|(v, p)| trust.neighbors(v).len() + p)
                .collect();
            let mut alerts = Vec::new();
            for o in obs {
                if h.due(o.t) {
                    alerts.extend(h.rotate(o.t, &online_now, &degrees_now, &pdeg_now));
                }
                h.observe(o.t, o.node, &o.kind);
            }
            if h.due(cap.as_f64()) {
                alerts.extend(h.rotate(cap.as_f64(), &online_now, &degrees_now, &pdeg_now));
            }
            if let Some(rm) = remedy.as_mut() {
                let decisions = rm.decide(&alerts, &online_now);
                rm.apply(&decisions, cells, trust, recorder);
            }
        } else {
            for shard in rt.shards.iter_mut() {
                shard.health_buf.clear();
            }
        }
    }
}
