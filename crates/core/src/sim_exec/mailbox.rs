//! Cross-shard mail: the window grid and canonical merge orders.
//!
//! The sharded executor advances all shards through bounded time windows
//! `[k·W, (k+1)·W)` on a global grid. Within a window a shard only pops its
//! own events; anything one node sends to another — even a same-shard
//! neighbour — is buffered as an [`OutMsg`] and injected at the window
//! barrier. Quantizing every delivery to *at least* the next grid boundary
//! is what gives the windows their lookahead: nothing sent inside window
//! `k` can need processing before window `k + 1` begins, so shards never
//! have to peek at each other mid-window.
//!
//! Determinism across shard counts hangs on two facts:
//!
//! 1. The merge order `(deliver_at, src, seq)` is a pure function of the
//!    sending node's history — `seq` counts the node's own sends — so it
//!    does not depend on which shard ran the sender.
//! 2. [`veil_sim::engine::Engine`] pops equal-time events in insertion
//!    (FIFO) order, so injecting the sorted batch fixes the intra-window
//!    interleaving identically for every layout.

use veil_obs::EventKind as Obs;
use veil_sim::SimTime;

use super::{Event, MessageRecord};

/// Width of the execution window in shuffle periods. `0.5` is exact in
/// binary floating point, divides the shuffle period (1.0) and the default
/// health window (5.0), and keeps the quantization latency it adds to
/// cross-node messages below half a period.
pub(crate) const WINDOW: f64 = 0.5;

/// The first grid boundary strictly after `t`.
pub(crate) fn next_boundary(t: SimTime) -> SimTime {
    let k = (t.as_f64() / WINDOW).floor();
    let mut b = (k + 1.0) * WINDOW;
    if b <= t.as_f64() {
        // Guard against floor() landing on the boundary itself for values
        // like t = k·W exactly.
        b = (k + 2.0) * WINDOW;
    }
    SimTime::new(b)
}

/// One cross-node message buffered during a window, delivered at the next
/// barrier into the destination shard's engine.
#[derive(Debug)]
pub(crate) struct OutMsg {
    /// Delivery instant: `max(send_time + latency, next_boundary(send))`.
    pub deliver_at: SimTime,
    /// Sending node (part of the canonical merge key).
    pub src: u32,
    /// The sender's own send counter (part of the canonical merge key).
    pub seq: u64,
    /// Destination node; the barrier routes to its owner shard.
    pub dest: u32,
    /// The event to schedule at `deliver_at`.
    pub event: Event,
}

/// Sorts a barrier batch into the canonical `(deliver_at, src, seq)`
/// injection order.
pub(crate) fn sort_canonical(msgs: &mut [OutMsg]) {
    msgs.sort_by(|a, b| {
        a.deliver_at
            .cmp(&b.deliver_at)
            .then_with(|| a.src.cmp(&b.src))
            .then_with(|| a.seq.cmp(&b.seq))
    });
}

/// Sorts one window's worth of message-log records into a canonical order
/// (send time, then endpoints, then kind) so the merged log is invariant
/// in the shard layout.
pub(crate) fn sort_records(records: &mut [MessageRecord]) {
    records.sort_by(|a, b| {
        a.time
            .cmp(&b.time)
            .then_with(|| a.from.cmp(&b.from))
            .then_with(|| a.to.cmp(&b.to))
            .then_with(|| a.kind.rank().cmp(&b.kind.rank()))
            .then_with(|| a.trusted_link.cmp(&b.trusted_link))
    });
}

/// A health-relevant observation buffered by a shard, replayed into the
/// coordinator-owned [`crate::health::HealthMonitor`] at the barrier.
///
/// The monitor's `observe` is commutative among observations with equal
/// timestamps (it only bumps counters and assigns `last_progress[v] = t`),
/// so feeding the batch sorted by time alone — with window rotations
/// interleaved where they fall due — reproduces identical monitor state
/// for every shard count.
#[derive(Debug)]
pub(crate) struct HealthObs {
    /// Event timestamp.
    pub t: f64,
    /// Emitting node, if any.
    pub node: Option<u32>,
    /// The event payload the monitor classifies.
    pub kind: Obs,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_boundary_is_strictly_ahead_and_on_grid() {
        for &t in &[0.0, 0.1, 0.25, 0.4999, 0.5, 0.75, 1.0, 17.5, 1e6] {
            let b = next_boundary(SimTime::new(t)).as_f64();
            assert!(b > t, "boundary {b} not after {t}");
            assert_eq!(
                b / WINDOW,
                (b / WINDOW).floor(),
                "boundary {b} off the grid"
            );
            assert!(
                b - t <= WINDOW + 1e-12,
                "boundary {b} skips a window from {t}"
            );
        }
    }

    #[test]
    fn canonical_sort_orders_by_time_then_sender_then_seq() {
        let msg = |t: f64, src: u32, seq: u64| OutMsg {
            deliver_at: SimTime::new(t),
            src,
            seq,
            dest: 0,
            event: Event::Shuffle(0),
        };
        let mut batch = vec![
            msg(1.0, 2, 0),
            msg(0.5, 9, 3),
            msg(1.0, 1, 5),
            msg(1.0, 1, 2),
        ];
        sort_canonical(&mut batch);
        let keys: Vec<_> = batch
            .iter()
            .map(|m| (m.deliver_at.as_f64(), m.src, m.seq))
            .collect();
        assert_eq!(
            keys,
            vec![(0.5, 9, 3), (1.0, 1, 2), (1.0, 1, 5), (1.0, 2, 0)]
        );
    }
}
