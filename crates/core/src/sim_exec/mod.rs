//! The discrete-event execution core behind [`crate::simulation`].
//!
//! [`crate::simulation::Simulation`] is a thin facade; the machinery lives
//! here, split along the executor's fault lines:
//!
//! - [`state`] — the per-node state cell ([`state::NodeCell`]) and the
//!   node-lifecycle handlers (churn, rejoin/depart, blackouts) plus the
//!   contiguous node-range partitioning used by the sharded executor.
//! - [`dispatch`] — the **sequential** event handlers: one engine, direct
//!   `&mut` access across nodes, byte-identical to the original
//!   single-threaded simulator (this is the paper's ideal-link regime).
//! - [`mailbox`] — the cross-shard mail primitives: the window grid, the
//!   canonical `(deliver_at, src, seq)` merge order, and the buffered
//!   health observations.
//! - [`shard`] — one shard of the **sharded** executor: a per-shard
//!   [`veil_sim::engine::Engine`] over a contiguous slice of node cells,
//!   with message-passing-pure handlers (no cross-shard `&mut`).
//! - [`executor`] — the sharded runtime: partitions nodes over S shards,
//!   runs them on `veil-par` worker threads in bounded time windows, and
//!   merges cross-shard traffic at a deterministic barrier.
//!
//! The two regimes coexist deliberately. The sequential path preserves the
//! exact event interleaving (and therefore byte-identical artifacts) of
//! the original simulator; the sharded path trades that global ordering
//! for a window-quantized delivery schedule that is invariant in the
//! *shard count*: any `S` — including `S = 1` — produces identical
//! results, which is what makes multi-threaded runs trustworthy.

pub(crate) mod dispatch;
pub(crate) mod executor;
pub(crate) mod mailbox;
pub(crate) mod shard;
pub(crate) mod shard_lifecycle;
pub(crate) mod state;
#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_faults;
#[cfg(test)]
mod tests_shard;

use crate::health::HealthMonitor;
use crate::pseudonym::PseudonymId;
use serde::{Deserialize, Serialize};
use veil_obs::{EventKind as Obs, Recorder};
use veil_sim::SimTime;

/// Events driving the overlay simulation (both executors).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Event {
    /// A node's shuffle timer fired.
    Shuffle(u32),
    /// A node's churn process transitions (online ↔ offline). Stale
    /// generations (superseded by failure injection) are ignored.
    Churn {
        /// The transitioning node.
        node: u32,
        /// Generation stamp; must match the node's current generation.
        generation: u32,
    },
    /// An injected blackout ends and the node reconnects.
    BlackoutEnd {
        /// The recovering node.
        node: u32,
        /// Generation stamp of the blackout.
        generation: u32,
    },
    /// A shuffle request arrives after the configured link latency.
    DeliverRequest(Box<Delivery>),
    /// A shuffle response arrives after the configured link latency.
    DeliverResponse(Box<Delivery>),
    /// A faulty-link shuffle exchange hit its timeout without a response.
    ShuffleTimeout {
        /// The exchange the timeout guards.
        exchange: u64,
    },
    /// A scripted fault episode with a simulation-side effect begins.
    EpisodeStart(u32),
}

/// An in-flight shuffle message (used whenever delivery is not synchronous).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Delivery {
    pub(crate) from: u32,
    pub(crate) to: u32,
    pub(crate) offer: Vec<crate::pseudonym::Pseudonym>,
    /// Cache entries the *initiator* offered — carried through the round
    /// trip so the Cyclon eviction preference applies when the response
    /// finally arrives.
    pub(crate) initiator_sent: Vec<crate::pseudonym::PseudonymId>,
    pub(crate) trusted_link: bool,
    /// Faulty-link exchange id matching a [`PendingExchange`]; `0` on the
    /// ideal path (which never consults it).
    pub(crate) exchange: u64,
    /// Which transmission attempt carried this message. The sequential
    /// executor never reads it; the sharded executor keys the responder's
    /// per-message RNG on it so duplicate answers to retransmitted
    /// requests draw independent, layout-invariant randomness.
    pub(crate) attempt: u32,
}

/// Initiator-side state of an in-flight faulty-link shuffle exchange, kept
/// until the response arrives or the retry budget runs out.
#[derive(Debug, Clone)]
pub(crate) struct PendingExchange {
    pub(crate) initiator: u32,
    pub(crate) dest: u32,
    /// The pseudonym behind the chosen link, for Cyclon-style eviction on
    /// failure; `None` for trusted links (never evicted).
    pub(crate) target_pseudonym: Option<PseudonymId>,
    pub(crate) trusted_link: bool,
    /// The request offer, retransmitted verbatim on retry.
    pub(crate) offer: Vec<crate::pseudonym::Pseudonym>,
    pub(crate) sent_from_cache: Vec<PseudonymId>,
    pub(crate) attempt: u32,
}

/// Classification of a logged protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageKind {
    /// A shuffle request from the initiator.
    Request,
    /// The matching shuffle response.
    Response,
    /// A message that was never delivered: the peer was offline (only
    /// occurs with `skip_offline_peers = false`), or the fault-injecting
    /// link layer dropped it.
    Dropped,
}

impl MessageKind {
    /// Stable rank used by the sharded executor's canonical log order.
    pub(crate) fn rank(self) -> u8 {
        match self {
            MessageKind::Request => 0,
            MessageKind::Response => 1,
            MessageKind::Dropped => 2,
        }
    }
}

/// One protocol message, as an external observer positioned on the
/// communication infrastructure would record it (endpoints and timing; the
/// payload is encrypted). Used by the traffic-analysis experiments in
/// `veil-privacy`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageRecord {
    /// Send instant.
    pub time: SimTime,
    /// Sending node.
    pub from: u32,
    /// Receiving node (the pseudonym service's resolution; an observer sees
    /// only the anonymity-service entry point, but ground truth is logged
    /// for evaluating inference attacks).
    pub to: u32,
    /// Request or response.
    pub kind: MessageKind,
    /// Whether the message travelled over a trusted link.
    pub trusted_link: bool,
}

/// Shared emission funnel for the sequential executor and construction-time
/// events (before `Simulation` exists): builds the payload once, feeds the
/// health monitor, then records. The monitor observes even when recording
/// is off — untraced runs must monitor (and heal) exactly like traced
/// ones; with neither consumer present this stays a single branch.
pub(crate) fn record(
    recorder: &Recorder,
    health: &mut Option<HealthMonitor>,
    t: f64,
    node: Option<u32>,
    kind: impl FnOnce() -> Obs,
) {
    if health.is_none() && !recorder.is_enabled() {
        return;
    }
    let kind = kind();
    if let Some(h) = health {
        h.observe(t, node, &kind);
    }
    recorder.event(t, node, move || kind);
}

/// Mutable references to two distinct slice elements.
pub(crate) fn two_mut<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b, "indices must differ");
    if a < b {
        let (left, right) = v.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = v.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}
