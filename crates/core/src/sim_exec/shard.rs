//! One shard of the sharded executor.
//!
//! A shard owns a contiguous range of node cells and its own
//! [`veil_sim::engine::Engine`]. During a window it pops only its own
//! events; every cross-node interaction — request, response, even to a
//! same-shard neighbour — goes through the outbox and is injected at the
//! barrier, so a node's behaviour cannot depend on which shard runs it.
//!
//! The handlers here mirror [`super::dispatch`] but are message-passing
//! pure. The places where the sequential code reaches across nodes are
//! replaced by layout-invariant mechanisms:
//!
//! - **Deliverability checks** (`skip_offline_peers`, the ideal path's
//!   destination-offline drop) read the barrier-snapshot online mask in
//!   [`WindowCtx`] instead of live churn state.
//! - **Fault randomness** comes from a stateless per-message RNG
//!   ([`veil_sim::rng::derive_message_rng`]) keyed by `(exchange, attempt,
//!   direction)` instead of the sequential executor's single shared
//!   `fault_rng` stream.
//! - **Pseudonym ids** come from a per-shard *keyed*
//!   [`PseudonymService`], a pure function of `(owner, per-owner count)`.
//! - **Exchange ids** are `((initiator + 1) << 32) | per-node counter`.
//! - **Foreign stat credit** (the initiator's `dropped_requests` bump when
//!   a responder is found offline) is deferred to the barrier.

use std::collections::HashMap;

use crate::config::OverlayConfig;
use crate::node::LinkTarget;
use crate::protocol;
use crate::pseudonym::PseudonymService;
use rand::Rng;
use veil_obs::{EventKind as Obs, Recorder};
use veil_sim::engine::Engine;
use veil_sim::fault::FaultConfig;
use veil_sim::rng::derive_message_rng;
use veil_sim::SimTime;

use super::mailbox::{next_boundary, HealthObs, OutMsg};
use super::state::{lifetime_for, NodeCell};
use super::{Delivery, Event, MessageKind, MessageRecord, PendingExchange};

/// Read-only context shared by every shard during one window.
pub(crate) struct WindowCtx<'a> {
    pub cfg: &'a OverlayConfig,
    pub fault: Option<&'a FaultConfig>,
    /// One-way latency of the ideal path (positive in this regime unless a
    /// fault model is active).
    pub effective_latency: f64,
    pub master_seed: u64,
    pub recorder: &'a Recorder,
    /// Online mask snapshotted at the window's opening barrier: the
    /// deliverability oracle for `skip_offline_peers` filtering and the
    /// ideal path's destination-offline check. A shard must not read live
    /// churn state of nodes it does not own; the snapshot is refreshed
    /// every window boundary and is identical for every shard count.
    pub online: &'a [bool],
    /// Events strictly before `cap` run in this window.
    pub cap: SimTime,
    /// Whether protocol messages are logged this run.
    pub log_on: bool,
    /// Whether to buffer health observations for the coordinator.
    pub buffer_health: bool,
}

/// A contiguous slice of the simulation: engine, pending exchanges and
/// pseudonym minter for the nodes `start..start + len`.
pub(crate) struct Shard {
    /// First node index this shard owns.
    pub start: usize,
    pub engine: Engine<Event>,
    /// In-flight faulty-link exchanges initiated by this shard's nodes.
    pub pending: HashMap<u64, PendingExchange>,
    /// Keyed pseudonym minter (ids are pure functions of the owner's mint
    /// count, so per-shard services agree with any other layout).
    pub minter: PseudonymService,
    /// Cross-node messages buffered for the barrier merge.
    pub outbox: Vec<OutMsg>,
    /// Protocol messages logged this window (merged canonically at the
    /// barrier).
    pub log_buf: Vec<MessageRecord>,
    /// Health observations buffered for the coordinator's monitor.
    pub health_buf: Vec<HealthObs>,
    /// Nodes to credit one `dropped_requests` each at the barrier: a
    /// responder-side drop debits the (possibly foreign) initiator.
    pub credits: Vec<u32>,
}

impl Shard {
    pub(crate) fn new(start: usize, master_seed: u64) -> Self {
        Self {
            start,
            engine: Engine::new(),
            pending: HashMap::new(),
            minter: PseudonymService::new_keyed(master_seed),
            outbox: Vec::new(),
            log_buf: Vec::new(),
            health_buf: Vec::new(),
            credits: Vec::new(),
        }
    }

    /// Drains this shard's events strictly before `ctx.cap`.
    pub(crate) fn run_window(&mut self, cells: &mut [NodeCell], ctx: &WindowCtx<'_>) {
        while let Some((now, event)) = self.engine.pop_before(ctx.cap) {
            self.handle(now, event, cells, ctx);
        }
    }

    fn handle(&mut self, now: SimTime, event: Event, cells: &mut [NodeCell], ctx: &WindowCtx<'_>) {
        match event {
            Event::Shuffle(v) => self.handle_shuffle(now, v as usize, cells, ctx),
            Event::Churn { node, generation } => {
                self.handle_churn(now, node as usize, generation, cells, ctx)
            }
            Event::BlackoutEnd { node, generation } => {
                self.handle_blackout_end(now, node as usize, generation, cells, ctx)
            }
            Event::DeliverRequest(d) => self.handle_request_delivery(now, *d, cells, ctx),
            Event::DeliverResponse(d) => self.handle_response_delivery(now, *d, cells, ctx),
            Event::ShuffleTimeout { exchange } => {
                self.handle_shuffle_timeout(now, exchange, cells, ctx)
            }
            Event::EpisodeStart(idx) => self.handle_episode_start(now, idx as usize, cells, ctx),
        }
    }

    /// Records an observability event and mirrors it into the health
    /// buffer for the coordinator's deterministic barrier replay. The
    /// buffer fills whenever a monitor exists, recorder or not — untraced
    /// runs must monitor (and heal) exactly like traced ones.
    pub(super) fn emit(
        &mut self,
        ctx: &WindowCtx<'_>,
        now: SimTime,
        node: Option<u32>,
        kind: impl FnOnce() -> Obs,
    ) {
        if !ctx.buffer_health && !ctx.recorder.is_enabled() {
            return;
        }
        let kind = kind();
        if ctx.buffer_health {
            self.health_buf.push(HealthObs {
                t: now.as_f64(),
                node,
                kind: kind.clone(),
            });
        }
        ctx.recorder.event(now.as_f64(), node, move || kind);
    }

    fn log(&mut self, ctx: &WindowCtx<'_>, record: MessageRecord) {
        if ctx.log_on {
            self.log_buf.push(record);
        }
    }

    /// Buffers a cross-node message: delivery is quantized to at least the
    /// next window boundary so the receiving shard sees it only after the
    /// barrier, whatever the layout.
    fn send(
        &mut self,
        cell: &mut NodeCell,
        src: u32,
        now: SimTime,
        latency: f64,
        dest: u32,
        event: Event,
    ) {
        let deliver_at = (now + latency).max(next_boundary(now));
        let seq = cell.outbox_seq;
        cell.outbox_seq += 1;
        self.outbox.push(OutMsg {
            deliver_at,
            src,
            seq,
            dest,
            event,
        });
    }

    fn handle_shuffle(
        &mut self,
        now: SimTime,
        v: usize,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        // The timer always re-arms; offline nodes simply skip the round.
        self.engine.schedule_at(now + 1.0, Event::Shuffle(v as u32));
        let local = v - self.start;
        if !cells[local].churn.is_online() {
            return;
        }
        if cells[local].node.needs_pseudonym(now) {
            let lifetime = lifetime_for(ctx.cfg, &cells[local]);
            cells[local]
                .node
                .renew_pseudonym(&mut self.minter, now, lifetime);
            self.emit(ctx, now, Some(v as u32), || Obs::PseudonymMinted {
                lifetime,
            });
        }
        let purged = cells[local].node.purge_expired(now);
        if purged > 0 {
            self.emit(ctx, now, Some(v as u32), || Obs::PseudonymsExpired {
                count: purged as u64,
            });
        }
        // Adaptive shuffle suppression, as in the sequential executor.
        let cell = &mut cells[local];
        let activity = cell.node.sampler.additions() + cell.node.sampler.removals();
        if activity == cell.last_sampler_activity {
            cell.stable_ticks = cell.stable_ticks.saturating_add(1);
        } else {
            cell.stable_ticks = 0;
        }
        cell.last_sampler_activity = activity;
        if let Some(k) = ctx.cfg.stop_after_stable_periods {
            if cell.stable_ticks >= k {
                cell.node.stats.shuffles_suppressed += 1;
                return;
            }
        }
        // Remediation backoff: sit out this round and decay the counter.
        if cell.shuffle_backoff > 0 {
            cell.shuffle_backoff -= 1;
            cell.node.stats.shuffles_suppressed += 1;
            return;
        }
        if ctx.fault.is_some() {
            self.faulty_shuffle(now, v, cells, ctx);
            return;
        }
        // Ideal link with positive latency (this regime never runs the
        // zero-latency synchronous exchange). Deliverability comes from
        // the barrier snapshot.
        let cell = &mut cells[local];
        let target = if ctx.cfg.skip_offline_peers {
            let links = cell.node.links(now);
            let online: Vec<_> = links
                .into_iter()
                .filter(|l| ctx.online[l.resolve() as usize])
                .collect();
            if online.is_empty() {
                None
            } else {
                Some(online[cell.proto_rng.gen_range(0..online.len())])
            }
        } else {
            cell.node.pick_link(now, &mut cell.proto_rng)
        };
        let Some(target) = target else {
            return;
        };
        let dest = target.resolve() as usize;
        debug_assert_ne!(dest, v, "nodes never link to themselves");
        let trusted_link = target.is_trusted();
        self.emit(ctx, now, Some(v as u32), || Obs::ShuffleStart {
            target: dest as u64,
            trusted: trusted_link,
        });
        if !ctx.online[dest] {
            // Request sent into the anonymity service but never delivered.
            let cell = &mut cells[local];
            cell.node.stats.requests_sent += 1;
            cell.node.stats.dropped_requests += 1;
            self.emit(ctx, now, Some(v as u32), || Obs::MessageDropped {
                exchange: 0,
                response: false,
            });
            self.log(
                ctx,
                MessageRecord {
                    time: now,
                    from: v as u32,
                    to: dest as u32,
                    kind: MessageKind::Dropped,
                    trusted_link,
                },
            );
            return;
        }
        let cell = &mut cells[local];
        let offer = protocol::build_offer(
            &mut cell.node,
            ctx.cfg.shuffle_length,
            now,
            &mut cell.proto_rng,
        );
        cell.node.stats.requests_sent += 1;
        self.log(
            ctx,
            MessageRecord {
                time: now,
                from: v as u32,
                to: dest as u32,
                kind: MessageKind::Request,
                trusted_link,
            },
        );
        let event = Event::DeliverRequest(Box::new(Delivery {
            from: v as u32,
            to: dest as u32,
            offer: offer.entries,
            initiator_sent: offer.sent_from_cache,
            trusted_link,
            exchange: 0,
            attempt: 0,
        }));
        self.send(
            &mut cells[local],
            v as u32,
            now,
            ctx.effective_latency,
            dest as u32,
            event,
        );
    }

    fn faulty_shuffle(
        &mut self,
        now: SimTime,
        v: usize,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        let fault = ctx.fault.expect("faulty path");
        if fault.crashed(v as u32, now.as_f64()) {
            return; // a silently crashed node initiates nothing
        }
        let local = v - self.start;
        let cell = &mut cells[local];
        let Some(target) = cell.node.pick_link(now, &mut cell.proto_rng) else {
            return;
        };
        let dest = target.resolve();
        debug_assert_ne!(dest as usize, v, "nodes never link to themselves");
        let target_pseudonym = match target {
            LinkTarget::Pseudonym(p) => Some(p.id()),
            LinkTarget::Trusted(_) => None,
        };
        let offer = protocol::build_offer(
            &mut cell.node,
            ctx.cfg.shuffle_length,
            now,
            &mut cell.proto_rng,
        );
        // Exchange ids are a pure function of the initiator's history, so
        // every shard layout assigns the same ids.
        let exchange = ((v as u64 + 1) << 32) | cell.exchange_seq;
        cell.exchange_seq += 1;
        self.emit(ctx, now, Some(v as u32), || Obs::ShuffleStart {
            target: u64::from(dest),
            trusted: target.is_trusted(),
        });
        self.pending.insert(
            exchange,
            PendingExchange {
                initiator: v as u32,
                dest,
                target_pseudonym,
                trusted_link: target.is_trusted(),
                offer: offer.entries,
                sent_from_cache: offer.sent_from_cache,
                attempt: 0,
            },
        );
        self.transmit_request(now, exchange, cells, ctx);
    }

    fn transmit_request(
        &mut self,
        now: SimTime,
        exchange: u64,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        let (initiator, dest, trusted_link, attempt) = {
            let p = &self.pending[&exchange];
            (p.initiator, p.dest, p.trusted_link, p.attempt)
        };
        let local = initiator as usize - self.start;
        let fault = ctx.fault.expect("faulty path");
        // One stateless RNG per transmission: drop decision, then latency.
        let mut mrng = derive_message_rng(ctx.master_seed, exchange, attempt, false);
        let dropped = fault.is_dropped(initiator, dest, now.as_f64(), &mut mrng);
        cells[local].node.stats.requests_sent += 1;
        if dropped {
            cells[local].node.stats.dropped_requests += 1;
            self.emit(ctx, now, Some(initiator), || Obs::MessageDropped {
                exchange,
                response: false,
            });
        }
        self.log(
            ctx,
            MessageRecord {
                time: now,
                from: initiator,
                to: dest,
                kind: if dropped {
                    MessageKind::Dropped
                } else {
                    MessageKind::Request
                },
                trusted_link,
            },
        );
        if !dropped {
            let latency = fault.sample_latency(&mut mrng);
            let (offer, sent_from_cache) = {
                let p = &self.pending[&exchange];
                (p.offer.clone(), p.sent_from_cache.clone())
            };
            let event = Event::DeliverRequest(Box::new(Delivery {
                from: initiator,
                to: dest,
                offer,
                initiator_sent: sent_from_cache,
                trusted_link,
                exchange,
                attempt,
            }));
            self.send(&mut cells[local], initiator, now, latency, dest, event);
        }
        // Exponential backoff: timeout doubles with every retransmission.
        let backoff = ctx.cfg.shuffle_timeout * f64::from(1u32 << attempt.min(16));
        self.engine
            .schedule_in(backoff, Event::ShuffleTimeout { exchange });
    }

    fn handle_shuffle_timeout(
        &mut self,
        now: SimTime,
        exchange: u64,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        let (initiator, attempt) = match self.pending.get(&exchange) {
            Some(p) => (p.initiator, p.attempt),
            None => return, // completed: the response arrived in time
        };
        let local = initiator as usize - self.start;
        let crashed = ctx
            .fault
            .is_some_and(|f| f.crashed(initiator, now.as_f64()));
        if !cells[local].churn.is_online() || crashed {
            // The initiator itself is gone; nobody is waiting any more.
            self.pending.remove(&exchange);
            return;
        }
        self.emit(ctx, now, Some(initiator), || Obs::ShuffleTimeout {
            exchange,
            attempt: u64::from(attempt),
        });
        if attempt < ctx.cfg.shuffle_retry_budget {
            self.pending
                .get_mut(&exchange)
                .expect("checked above")
                .attempt += 1;
            cells[local].node.stats.shuffle_retries += 1;
            self.emit(ctx, now, Some(initiator), || Obs::ShuffleRetry {
                exchange,
                attempt: u64::from(attempt) + 1,
            });
            self.transmit_request(now, exchange, cells, ctx);
            return;
        }
        let p = self.pending.remove(&exchange).expect("checked above");
        cells[local].node.stats.shuffle_failures += 1;
        self.emit(ctx, now, Some(initiator), || Obs::ShuffleFailure {
            exchange,
        });
        if let Some(id) = p.target_pseudonym {
            cells[local].node.cache.remove(id);
            cells[local].node.sampler.evict(id);
            self.emit(ctx, now, Some(initiator), || Obs::PeerEvicted {
                pseudonym: id.0,
            });
        }
    }

    fn handle_request_delivery(
        &mut self,
        now: SimTime,
        delivery: Delivery,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        let responder = delivery.to as usize;
        let local = responder - self.start;
        let crashed = ctx
            .fault
            .is_some_and(|f| f.crashed(delivery.to, now.as_f64()));
        if !cells[local].churn.is_online() || crashed {
            // Lost in transit. The initiator may live on another shard, so
            // its `dropped_requests` bump is credited at the barrier.
            self.credits.push(delivery.from);
            self.emit(ctx, now, Some(delivery.from), || Obs::MessageDropped {
                exchange: delivery.exchange,
                response: false,
            });
            return;
        }
        // Mirror the synchronous order: build the response offer before
        // absorbing the request (Cyclon semantics).
        let cell = &mut cells[local];
        let response = protocol::build_offer(
            &mut cell.node,
            ctx.cfg.shuffle_length,
            now,
            &mut cell.proto_rng,
        );
        protocol::receive_offer(
            &mut cell.node,
            &delivery.offer,
            &response.sent_from_cache,
            now,
            &mut cell.proto_rng,
        );
        cell.node.stats.responses_sent += 1;
        if let Some(fault) = ctx.fault {
            // Responses answering a retransmission (`attempt > 0`) draw
            // their own stream, so duplicate answers stay independent.
            let mut mrng =
                derive_message_rng(ctx.master_seed, delivery.exchange, delivery.attempt, true);
            let dropped = fault.is_dropped(delivery.to, delivery.from, now.as_f64(), &mut mrng);
            self.log(
                ctx,
                MessageRecord {
                    time: now,
                    from: delivery.to,
                    to: delivery.from,
                    kind: if dropped {
                        MessageKind::Dropped
                    } else {
                        MessageKind::Response
                    },
                    trusted_link: delivery.trusted_link,
                },
            );
            if dropped {
                cells[local].node.stats.dropped_requests += 1;
                self.emit(ctx, now, Some(delivery.to), || Obs::MessageDropped {
                    exchange: delivery.exchange,
                    response: true,
                });
                return;
            }
            let latency = fault.sample_latency(&mut mrng);
            let event = Event::DeliverResponse(Box::new(Delivery {
                from: delivery.to,
                to: delivery.from,
                offer: response.entries,
                initiator_sent: delivery.initiator_sent,
                trusted_link: delivery.trusted_link,
                exchange: delivery.exchange,
                attempt: delivery.attempt,
            }));
            self.send(
                &mut cells[local],
                delivery.to,
                now,
                latency,
                delivery.from,
                event,
            );
            return;
        }
        self.log(
            ctx,
            MessageRecord {
                time: now,
                from: delivery.to,
                to: delivery.from,
                kind: MessageKind::Response,
                trusted_link: delivery.trusted_link,
            },
        );
        let event = Event::DeliverResponse(Box::new(Delivery {
            from: delivery.to,
            to: delivery.from,
            offer: response.entries,
            initiator_sent: delivery.initiator_sent,
            trusted_link: delivery.trusted_link,
            exchange: 0,
            attempt: 0,
        }));
        self.send(
            &mut cells[local],
            delivery.to,
            now,
            ctx.effective_latency,
            delivery.from,
            event,
        );
    }

    fn handle_response_delivery(
        &mut self,
        now: SimTime,
        delivery: Delivery,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        if ctx.fault.is_some() && self.pending.remove(&delivery.exchange).is_none() {
            // A duplicate answer to a retransmitted request whose exchange
            // already completed or failed; ignore it.
            return;
        }
        let local = delivery.to as usize - self.start;
        let crashed = ctx
            .fault
            .is_some_and(|f| f.crashed(delivery.to, now.as_f64()));
        if !cells[local].churn.is_online() || crashed {
            return; // response lost; the initiator churned out
        }
        let cell = &mut cells[local];
        protocol::receive_offer(
            &mut cell.node,
            &delivery.offer,
            &delivery.initiator_sent,
            now,
            &mut cell.proto_rng,
        );
        self.emit(ctx, now, Some(delivery.to), || Obs::ShuffleComplete {
            exchange: delivery.exchange,
        });
    }
}
