//! Churn, blackout and fault-episode handlers for [`Shard`].
//!
//! These mirror the coordinator-side lifecycle code in [`super::state`]
//! but operate on the shard's own cells only: every victim of an episode
//! is handled by the shard that owns it, and exactly one shard (the owner
//! of the episode's anchor node) emits the network-level observation.

use veil_obs::EventKind as Obs;
use veil_sim::fault::EpisodeEffect;
use veil_sim::SimTime;

use super::shard::{Shard, WindowCtx};
use super::state::{lifetime_for, NodeCell};
use super::Event;

impl Shard {
    pub(super) fn handle_churn(
        &mut self,
        now: SimTime,
        v: usize,
        generation: u32,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        let local = v - self.start;
        if generation != cells[local].churn_generation {
            return; // superseded by failure injection
        }
        let cell = &mut cells[local];
        let next = cell.churn.transition(&mut cell.churn_rng);
        if let Some(delay) = next {
            self.engine.schedule_at(
                now + delay,
                Event::Churn {
                    node: v as u32,
                    generation,
                },
            );
        }
        if cells[local].churn.is_online() {
            self.rejoin(now, v, cells, ctx);
        } else {
            self.depart(now, v, cells, ctx);
        }
    }

    pub(super) fn rejoin(
        &mut self,
        now: SimTime,
        v: usize,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        let local = v - self.start;
        self.emit(ctx, now, Some(v as u32), || Obs::NodeOnline);
        cells[local].online_since = Some(now);
        if let Some(since) = cells[local].offline_since.take() {
            let duration = now.since(since);
            cells[local].ewma_offline = Some(match cells[local].ewma_offline {
                Some(prev) => 0.8 * prev + 0.2 * duration,
                None => duration,
            });
        }
        cells[local].stable_ticks = 0;
        let purged = cells[local].node.purge_expired(now);
        if purged > 0 {
            self.emit(ctx, now, Some(v as u32), || Obs::PseudonymsExpired {
                count: purged as u64,
            });
        }
        if cells[local].node.needs_pseudonym(now) {
            let lifetime = lifetime_for(ctx.cfg, &cells[local]);
            cells[local]
                .node
                .renew_pseudonym(&mut self.minter, now, lifetime);
            self.emit(ctx, now, Some(v as u32), || Obs::PseudonymMinted {
                lifetime,
            });
        }
    }

    pub(super) fn depart(
        &mut self,
        now: SimTime,
        v: usize,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        let local = v - self.start;
        self.emit(ctx, now, Some(v as u32), || Obs::NodeOffline);
        cells[local].offline_since = Some(now);
        if let Some(since) = cells[local].online_since.take() {
            cells[local].node.stats.online_time += now.since(since);
        }
    }

    pub(super) fn handle_blackout_end(
        &mut self,
        now: SimTime,
        v: usize,
        generation: u32,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        let local = v - self.start;
        if generation != cells[local].churn_generation {
            return; // a newer blackout supersedes this recovery
        }
        cells[local].blackout_until = None;
        self.emit(ctx, now, Some(v as u32), || Obs::BlackoutEnd);
        let cell = &mut cells[local];
        let next = cell
            .churn
            .force_state(veil_sim::churn::NodeState::Online, &mut cell.churn_rng);
        if let Some(delay) = next {
            self.engine.schedule_at(
                now + delay,
                Event::Churn {
                    node: v as u32,
                    generation,
                },
            );
        }
        self.rejoin(now, v, cells, ctx);
    }

    pub(super) fn handle_episode_start(
        &mut self,
        now: SimTime,
        idx: usize,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        let Some(ep) = ctx.fault.and_then(|f| f.episodes.get(idx)).copied() else {
            return;
        };
        // The EpisodeStart event sits in every shard's engine (each shard
        // handles its own victims); exactly one shard — the owner of the
        // episode's anchor node — emits the network-level observation.
        let n_total = ctx.online.len();
        let anchor = match ep.effect {
            EpisodeEffect::Blackout { first, .. } => (first as usize).min(n_total - 1),
            _ => 0,
        };
        if anchor >= self.start && anchor < self.start + cells.len() {
            self.emit(ctx, now, None, || Obs::EpisodeStart {
                index: idx as u64,
                kind: ep.effect.kind_str().to_string(),
            });
        }
        if let EpisodeEffect::Blackout { first, count } = ep.effect {
            let lo = (first as usize).clamp(self.start, self.start + cells.len());
            let hi = (first as usize)
                .saturating_add(count as usize)
                .clamp(self.start, self.start + cells.len());
            let duration = ep.end - ep.start;
            if lo < hi && duration > 0.0 && duration.is_finite() {
                self.apply_blackout(now, lo..hi, duration, cells, ctx);
            }
        }
    }

    /// Blackout injection for this shard's own victims; mirrors the
    /// coordinator-side `Simulation::inject_blackout_at`.
    fn apply_blackout(
        &mut self,
        now: SimTime,
        victims: std::ops::Range<usize>,
        duration: f64,
        cells: &mut [NodeCell],
        ctx: &WindowCtx<'_>,
    ) {
        for v in victims {
            let local = v - self.start;
            let until = now + duration;
            if let Some(existing) = cells[local].blackout_until {
                if existing >= until {
                    continue;
                }
            }
            cells[local].blackout_until = Some(until);
            self.emit(ctx, now, Some(v as u32), || Obs::BlackoutStart {
                until: until.as_f64(),
            });
            cells[local].churn_generation = cells[local].churn_generation.wrapping_add(1);
            if cells[local].churn.is_online() {
                self.depart(now, v, cells, ctx);
            }
            let cell = &mut cells[local];
            let _ = cell
                .churn
                .force_state(veil_sim::churn::NodeState::Offline, &mut cell.churn_rng);
            self.engine.schedule_at(
                until,
                Event::BlackoutEnd {
                    node: v as u32,
                    generation: cells[local].churn_generation,
                },
            );
        }
    }
}
