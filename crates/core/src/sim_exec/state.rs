//! Per-node state cells, shard partitioning, and node-lifecycle handlers.
//!
//! All per-node simulation state lives in one [`NodeCell`] so the sharded
//! executor can hand each shard a contiguous `&mut [NodeCell]` slice with a
//! single `split_at_mut` chain. The sequential executor indexes the same
//! cells directly; the grouping changes data layout only, never the order
//! of any RNG draw or event, so sequential results stay byte-identical to
//! the pre-cell simulator.

use crate::config::{LifetimePolicy, OverlayConfig};
use crate::node::Node;
use crate::simulation::Simulation;
use rand::rngs::StdRng;
use veil_obs::EventKind as Obs;
use veil_sim::churn::ChurnProcess;
use veil_sim::SimTime;

use super::Event;

/// Everything the simulation tracks about one node, grouped so a shard can
/// own a contiguous slice of nodes exclusively.
pub(crate) struct NodeCell {
    /// Protocol state (cache, sampler, own pseudonyms, stats).
    pub node: Node,
    /// The node's churn process.
    pub churn: ChurnProcess,
    /// Start of the current online session, if online.
    pub online_since: Option<SimTime>,
    /// Start of the current offline period, if offline.
    pub offline_since: Option<SimTime>,
    /// Generation stamp invalidating superseded churn/blackout events.
    pub churn_generation: u32,
    /// EWMA of observed offline durations (adaptive lifetime policy).
    pub ewma_offline: Option<f64>,
    /// Consecutive shuffle ticks without sampler activity.
    pub stable_ticks: u32,
    /// Sampler activity counter at the last shuffle tick.
    pub last_sampler_activity: u64,
    /// Protocol randomness (offer building, link picking).
    pub proto_rng: StdRng,
    /// Churn residence-time randomness.
    pub churn_rng: StdRng,
    /// Until when the node is held dark by an injected blackout.
    pub blackout_until: Option<SimTime>,
    /// Remaining shuffle initiations to skip (the remediation engine's
    /// eviction-storm backoff); decays by one per skipped shuffle.
    pub shuffle_backoff: u32,
    /// Sharded executor: per-source sequence number of outbox messages;
    /// part of the canonical `(deliver_at, src, seq)` merge key.
    pub outbox_seq: u64,
    /// Sharded executor: per-initiator exchange counter; the exchange id
    /// `((v + 1) << 32) | seq` is a pure function of the node's own
    /// history, hence invariant in the shard layout.
    pub exchange_seq: u64,
}

impl NodeCell {
    /// A fresh cell for a node whose churn process starts in `churn`'s
    /// initial state at time zero.
    pub(crate) fn new(
        node: Node,
        churn: ChurnProcess,
        proto_rng: StdRng,
        churn_rng: StdRng,
    ) -> Self {
        let online = churn.is_online();
        Self {
            node,
            churn,
            online_since: online.then_some(SimTime::ZERO),
            offline_since: (!online).then_some(SimTime::ZERO),
            churn_generation: 0,
            ewma_offline: None,
            stable_ticks: 0,
            last_sampler_activity: 0,
            proto_rng,
            churn_rng,
            blackout_until: None,
            shuffle_backoff: 0,
            outbox_seq: 0,
            exchange_seq: 0,
        }
    }
}

/// Boundaries of `s` contiguous, balanced node ranges over `n` nodes:
/// shard `i` owns `[starts[i], starts[i + 1])`. The returned vector has
/// `s + 1` entries with `starts[0] == 0` and `starts[s] == n`.
pub(crate) fn shard_starts(n: usize, s: usize) -> Vec<usize> {
    assert!(s >= 1 && s <= n, "shard count must be in 1..=n");
    (0..=s).map(|i| i * n / s).collect()
}

/// Owner shard of every node under [`shard_starts`] partitioning.
pub(crate) fn owner_of(n: usize, starts: &[usize]) -> Vec<u32> {
    let mut owner = vec![0u32; n];
    for (i, w) in starts.windows(2).enumerate() {
        for o in &mut owner[w[0]..w[1]] {
            *o = i as u32;
        }
    }
    owner
}

/// The lifetime node `cell` would give a pseudonym minted right now, per
/// the configured [`LifetimePolicy`]. Reads only the node's own state, so
/// both executors share it.
pub(crate) fn lifetime_for(cfg: &OverlayConfig, cell: &NodeCell) -> Option<f64> {
    match cfg.lifetime_policy {
        LifetimePolicy::Global => cfg.pseudonym_lifetime,
        LifetimePolicy::Adaptive { multiplier, floor } => match cell.ewma_offline {
            Some(mean) => Some((multiplier * mean).max(floor)),
            None => cfg.pseudonym_lifetime,
        },
    }
}

impl Simulation {
    pub(crate) fn handle_churn(&mut self, now: SimTime, v: usize, generation: u32) {
        if generation != self.cells[v].churn_generation {
            return; // superseded by failure injection
        }
        let cell = &mut self.cells[v];
        let next = cell.churn.transition(&mut cell.churn_rng);
        if let Some(delay) = next {
            self.engine.schedule_at(
                now + delay,
                Event::Churn {
                    node: v as u32,
                    generation,
                },
            );
        }
        if self.cells[v].churn.is_online() {
            self.rejoin(now, v);
        } else {
            self.depart(now, v);
        }
    }

    /// Bookkeeping for a node coming online: session tracking, adaptive
    /// lifetime observation, expired-state purge and pseudonym renewal.
    pub(crate) fn rejoin(&mut self, now: SimTime, v: usize) {
        self.emit(now, Some(v as u32), || Obs::NodeOnline);
        self.cells[v].online_since = Some(now);
        if let Some(since) = self.cells[v].offline_since.take() {
            // Feed the adaptive lifetime policy with the node's own
            // observed offline duration (EWMA, weight 0.2 on the new
            // observation).
            let duration = now.since(since);
            self.cells[v].ewma_offline = Some(match self.cells[v].ewma_offline {
                Some(prev) => 0.8 * prev + 0.2 * duration,
                None => duration,
            });
        }
        // Rejoining is a state change: re-arm suppressed shuffling.
        self.cells[v].stable_ticks = 0;
        let purged = self.cells[v].node.purge_expired(now);
        if purged > 0 {
            self.emit(now, Some(v as u32), || Obs::PseudonymsExpired {
                count: purged as u64,
            });
        }
        if self.cells[v].node.needs_pseudonym(now) {
            let lifetime = lifetime_for(&self.cfg, &self.cells[v]);
            self.cells[v]
                .node
                .renew_pseudonym(&mut self.svc, now, lifetime);
            self.emit(now, Some(v as u32), || Obs::PseudonymMinted { lifetime });
        }
    }

    /// Bookkeeping for a node going offline: close the online session.
    pub(crate) fn depart(&mut self, now: SimTime, v: usize) {
        self.emit(now, Some(v as u32), || Obs::NodeOffline);
        self.cells[v].offline_since = Some(now);
        if let Some(since) = self.cells[v].online_since.take() {
            self.cells[v].node.stats.online_time += now.since(since);
        }
    }

    pub(crate) fn inject_blackout_at(&mut self, now: SimTime, nodes: &[usize], duration: f64) {
        assert!(duration > 0.0, "blackout duration must be positive");
        for &v in nodes {
            assert!(v < self.cells.len(), "node {v} out of range");
            let until = now + duration;
            if let Some(existing) = self.cells[v].blackout_until {
                if existing >= until {
                    // Already dark at least that long: the pending wake
                    // event stands; re-forcing would duplicate it.
                    continue;
                }
            }
            self.cells[v].blackout_until = Some(until);
            self.emit(now, Some(v as u32), || Obs::BlackoutStart {
                until: until.as_f64(),
            });
            self.cells[v].churn_generation = self.cells[v].churn_generation.wrapping_add(1);
            if self.cells[v].churn.is_online() {
                self.depart(now, v);
            }
            // Residence sample is discarded: the blackout end is forced.
            let cell = &mut self.cells[v];
            let _ = cell
                .churn
                .force_state(veil_sim::churn::NodeState::Offline, &mut cell.churn_rng);
            let wake = Event::BlackoutEnd {
                node: v as u32,
                generation: self.cells[v].churn_generation,
            };
            match &mut self.sharded {
                Some(rt) => rt.shard_of_mut(v).engine.schedule_at(until, wake),
                None => self.engine.schedule_at(until, wake),
            }
        }
    }

    pub(crate) fn handle_blackout_end(&mut self, now: SimTime, v: usize, generation: u32) {
        if generation != self.cells[v].churn_generation {
            return; // a newer blackout supersedes this recovery
        }
        self.cells[v].blackout_until = None;
        self.emit(now, Some(v as u32), || Obs::BlackoutEnd);
        let cell = &mut self.cells[v];
        let next = cell
            .churn
            .force_state(veil_sim::churn::NodeState::Online, &mut cell.churn_rng);
        if let Some(delay) = next {
            self.engine.schedule_at(
                now + delay,
                Event::Churn {
                    node: v as u32,
                    generation,
                },
            );
        }
        self.rejoin(now, v);
    }
}
