//! Ideal-link simulation tests (moved from `simulation.rs`).

use super::two_mut;
use crate::config::OverlayConfig;
use crate::error::CoreError;
use crate::simulation::{MessageKind, Simulation};
use veil_graph::metrics as gm;
use veil_graph::{generators, Graph};
use veil_sim::churn::ChurnConfig;
use veil_sim::rng::{derive_rng, Stream};

fn trust_graph(n: usize, seed: u64) -> Graph {
    let mut rng = derive_rng(seed, Stream::Topology);
    generators::social_graph(n, 3, &mut rng).unwrap()
}

fn small_sim(alpha: f64, seed: u64) -> Simulation {
    let trust = trust_graph(60, seed);
    let cfg = OverlayConfig {
        cache_size: 50,
        shuffle_length: 8,
        target_links: 12,
        ..OverlayConfig::default()
    };
    let churn = ChurnConfig::from_availability(alpha, 10.0);
    Simulation::new(trust, cfg, churn, seed).unwrap()
}

#[test]
fn rejects_empty_trust_graph() {
    let churn = ChurnConfig::from_availability(1.0, 30.0);
    let err = Simulation::new(Graph::new(0), OverlayConfig::default(), churn, 1).unwrap_err();
    assert!(matches!(err, CoreError::InvalidTrustGraph { .. }));
}

#[test]
fn rejects_invalid_config() {
    let churn = ChurnConfig::from_availability(1.0, 30.0);
    let cfg = OverlayConfig {
        cache_size: 0,
        ..OverlayConfig::default()
    };
    assert!(Simulation::new(Graph::new(5), cfg, churn, 1).is_err());
}

#[test]
fn all_online_without_churn() {
    let mut sim = small_sim(1.0, 1);
    assert_eq!(sim.online_count(), 60);
    sim.run_until(5.0);
    assert_eq!(sim.online_count(), 60, "no churn at availability 1");
}

#[test]
fn overlay_contains_trust_edges() {
    let mut sim = small_sim(1.0, 2);
    sim.run_until(3.0);
    let overlay = sim.overlay_graph();
    for (a, b) in sim.trust_graph().edges() {
        assert!(overlay.has_edge(a, b));
    }
}

#[test]
fn overlay_grows_pseudonym_links() {
    let mut sim = small_sim(1.0, 3);
    let trust_edges = sim.trust_graph().edge_count();
    sim.run_until(30.0);
    let overlay = sim.overlay_graph();
    assert!(
        overlay.edge_count() > trust_edges + 60,
        "overlay should gain many pseudonym links: {} vs {}",
        overlay.edge_count(),
        trust_edges
    );
}

#[test]
fn overlay_approaches_target_degree() {
    let mut sim = small_sim(1.0, 4);
    sim.run_until(50.0);
    // Average pseudonym link count should approach the slot budgets.
    let mean_links: f64 = (0..sim.node_count())
        .map(|v| sim.node(v).sampler.link_count() as f64)
        .sum::<f64>()
        / sim.node_count() as f64;
    let mean_slots: f64 = (0..sim.node_count())
        .map(|v| sim.node(v).sampler.slot_count() as f64)
        .sum::<f64>()
        / sim.node_count() as f64;
    assert!(
        mean_links > 0.5 * mean_slots.min(59.0),
        "links {mean_links:.1} vs slots {mean_slots:.1}"
    );
}

#[test]
fn churn_changes_online_set() {
    let mut sim = small_sim(0.5, 5);
    sim.run_until(50.0);
    let online = sim.online_count();
    assert!(online > 10 && online < 50, "online {online} of 60");
}

#[test]
fn online_time_accounting_sums_to_about_alpha() {
    let mut sim = small_sim(0.5, 6);
    sim.run_until(200.0);
    let total_online: f64 = (0..sim.node_count())
        .map(|v| sim.node_stats(v).online_time)
        .sum();
    let expected = 0.5 * 200.0 * sim.node_count() as f64;
    assert!(
        (total_online - expected).abs() < 0.15 * expected,
        "online time {total_online} vs expected {expected}"
    );
}

#[test]
fn messages_average_about_two_per_period() {
    // Paper: "the average number of messages sent per shuffle period
    // per node across the whole overlay is 2" (no churn case).
    let mut sim = small_sim(1.0, 7);
    sim.run_until(60.0);
    let mean_rate: f64 = (0..sim.node_count())
        .map(|v| sim.node_stats(v).messages_per_period())
        .sum::<f64>()
        / sim.node_count() as f64;
    assert!(
        (mean_rate - 2.0).abs() < 0.25,
        "mean message rate {mean_rate}"
    );
}

#[test]
fn deterministic_given_seed() {
    let mut a = small_sim(0.5, 8);
    let mut b = small_sim(0.5, 8);
    a.run_until(40.0);
    b.run_until(40.0);
    assert_eq!(a.online_mask(), b.online_mask());
    assert_eq!(a.overlay_graph(), b.overlay_graph());
    assert_eq!(a.pseudonyms_minted(), b.pseudonyms_minted());
}

#[test]
fn different_seeds_differ() {
    let mut a = small_sim(0.5, 9);
    let mut b = small_sim(0.5, 10);
    a.run_until(40.0);
    b.run_until(40.0);
    assert_ne!(a.overlay_graph(), b.overlay_graph());
}

#[test]
fn expiry_drives_renewal() {
    let trust = trust_graph(30, 11);
    let cfg = OverlayConfig {
        cache_size: 50,
        shuffle_length: 8,
        target_links: 10,
        pseudonym_lifetime: Some(5.0),
        ..OverlayConfig::default()
    };
    let churn = ChurnConfig::from_availability(1.0, 10.0);
    let mut sim = Simulation::new(trust, cfg, churn, 11).unwrap();
    sim.run_until(26.0);
    // Lifetime 5sp over 26sp: every node should have minted ~5 times.
    assert!(
        sim.pseudonyms_minted() >= 4 * 30,
        "minted {}",
        sim.pseudonyms_minted()
    );
    assert!(sim.total_link_removals() > 0, "expiry must remove links");
}

#[test]
fn no_expiry_no_removals_after_convergence() {
    let trust = trust_graph(30, 12);
    let cfg = OverlayConfig {
        cache_size: 50,
        shuffle_length: 8,
        target_links: 10,
        pseudonym_lifetime: None,
        ..OverlayConfig::default()
    };
    let churn = ChurnConfig::from_availability(1.0, 10.0);
    let mut sim = Simulation::new(trust, cfg, churn, 12).unwrap();
    sim.run_until(150.0);
    let at_150 = sim.total_link_removals();
    sim.run_until(200.0);
    let at_200 = sim.total_link_removals();
    // Convergence: the min-wise process settles; replacements dry up.
    assert!(
        at_200 - at_150 < 30,
        "replacements kept happening: {at_150} -> {at_200}"
    );
}

#[test]
fn overlay_beats_trust_graph_under_churn() {
    let mut sim = small_sim(0.4, 13);
    sim.run_until(120.0);
    let online = sim.online_mask();
    let overlay = sim.overlay_graph();
    let frac_overlay = gm::fraction_disconnected(&overlay, &online);
    let frac_trust = gm::fraction_disconnected(sim.trust_graph(), &online);
    assert!(
        frac_overlay < frac_trust,
        "overlay {frac_overlay} should beat trust {frac_trust}"
    );
}

#[test]
fn two_mut_returns_both_orders() {
    let mut v = vec![1, 2, 3];
    {
        let (a, b) = two_mut(&mut v, 0, 2);
        assert_eq!((*a, *b), (1, 3));
    }
    let (a, b) = two_mut(&mut v, 2, 0);
    assert_eq!((*a, *b), (3, 1));
}

#[test]
#[should_panic(expected = "differ")]
fn two_mut_rejects_same_index() {
    let mut v = vec![1, 2];
    two_mut(&mut v, 1, 1);
}

#[test]
#[should_panic(expected = "backwards")]
fn run_until_rejects_past() {
    let mut sim = small_sim(1.0, 14);
    sim.run_until(5.0);
    sim.run_until(4.0);
}

#[test]
fn adaptive_stop_suppresses_shuffles_after_convergence() {
    let trust = trust_graph(40, 15);
    let cfg = OverlayConfig {
        cache_size: 50,
        shuffle_length: 8,
        target_links: 10,
        pseudonym_lifetime: None, // stable regime: links converge
        stop_after_stable_periods: Some(5),
        ..OverlayConfig::default()
    };
    let churn = ChurnConfig::from_availability(1.0, 10.0);
    let mut sim = Simulation::new(trust.clone(), cfg, churn, 15).unwrap();
    sim.run_until(300.0);
    let suppressed: u64 = (0..sim.node_count())
        .map(|v| sim.node_stats(v).shuffles_suppressed)
        .sum();
    assert!(suppressed > 0, "stability detector never fired");
    // And the overlay is still healthy.
    let frac = veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &sim.online_mask());
    assert_eq!(frac, 0.0);
    // Late-window message traffic collapses relative to the always-on
    // configuration.
    let always_cfg = OverlayConfig {
        cache_size: 50,
        shuffle_length: 8,
        target_links: 10,
        pseudonym_lifetime: None,
        ..OverlayConfig::default()
    };
    let churn = ChurnConfig::from_availability(1.0, 10.0);
    let mut always = Simulation::new(trust, always_cfg, churn, 15).unwrap();
    always.run_until(300.0);
    let requests = |sim: &Simulation| -> u64 {
        (0..sim.node_count())
            .map(|v| sim.node_stats(v).requests_sent)
            .sum()
    };
    assert!(
        requests(&sim) < requests(&always) / 2,
        "suppression should at least halve request traffic: {} vs {}",
        requests(&sim),
        requests(&always)
    );
}

#[test]
fn adaptive_lifetime_tracks_offline_durations() {
    use crate::config::LifetimePolicy;
    let trust = trust_graph(40, 16);
    let cfg = OverlayConfig {
        cache_size: 50,
        shuffle_length: 8,
        target_links: 10,
        pseudonym_lifetime: Some(90.0),
        lifetime_policy: LifetimePolicy::Adaptive {
            multiplier: 3.0,
            floor: 5.0,
        },
        ..OverlayConfig::default()
    };
    // Mean offline time 10sp: adaptive lifetimes should settle near
    // 3 x 10 = 30sp, well below the 90sp global fallback.
    let churn = ChurnConfig::from_availability(0.5, 10.0);
    let mut sim = Simulation::new(trust, cfg, churn, 16).unwrap();
    sim.run_until(400.0);
    // Inspect the actual lifetimes of current pseudonyms.
    let now = sim.now();
    let mut lifetimes = Vec::new();
    for v in 0..sim.node_count() {
        if let Some(p) = sim.node(v).own_pseudonym(now) {
            if let Some(expiry) = p.expires() {
                // Upper bound on the minted lifetime.
                lifetimes.push(expiry - now);
            }
        }
    }
    assert!(!lifetimes.is_empty());
    let mean_remaining: f64 = lifetimes.iter().sum::<f64>() / lifetimes.len() as f64;
    // Remaining lifetime of an adaptive (~30sp) pseudonym is well below
    // the global 90sp value.
    assert!(
        mean_remaining < 60.0,
        "adaptive lifetimes look global: mean remaining {mean_remaining}"
    );
}

#[test]
fn message_log_records_request_response_pairs() {
    let mut sim = small_sim(1.0, 17);
    sim.enable_message_log();
    sim.run_until(5.0);
    let log = sim.message_log().unwrap();
    assert!(!log.is_empty());
    let requests = log
        .iter()
        .filter(|m| m.kind == MessageKind::Request)
        .count();
    let responses = log
        .iter()
        .filter(|m| m.kind == MessageKind::Response)
        .count();
    assert_eq!(requests, responses, "every request gets a response");
    for m in log {
        assert_ne!(m.from, m.to);
    }
    // Draining works and keeps logging active.
    let drained = sim.take_message_log();
    assert_eq!(drained.len(), requests + responses);
    sim.run_until(6.0);
    assert!(!sim.message_log().unwrap().is_empty());
    sim.disable_message_log();
    assert!(sim.message_log().is_none());
}

#[test]
fn latency_one_round_trip_still_exchanges() {
    let trust = trust_graph(30, 19);
    let cfg = OverlayConfig {
        cache_size: 40,
        shuffle_length: 6,
        target_links: 8,
        link_latency: 0.2,
        ..OverlayConfig::default()
    };
    let churn = ChurnConfig::from_availability(1.0, 10.0);
    let mut sim = Simulation::new(trust, cfg, churn, 19).unwrap();
    sim.run_until(30.0);
    // Gossip still works: pseudonym links accumulate.
    let total_links: usize = (0..sim.node_count())
        .map(|v| sim.node(v).sampler.link_count())
        .sum();
    assert!(total_links > 30, "links {total_links}");
    // Request/response accounting still pairs up (no churn => no loss).
    let req: u64 = (0..sim.node_count())
        .map(|v| sim.node_stats(v).requests_sent)
        .sum();
    let resp: u64 = (0..sim.node_count())
        .map(|v| sim.node_stats(v).responses_sent)
        .sum();
    assert!(req > 0);
    // In-flight messages at the horizon make resp lag req slightly.
    assert!(resp <= req && req - resp <= sim.node_count() as u64);
}

#[test]
fn latency_with_churn_loses_in_transit_messages() {
    let trust = trust_graph(40, 20);
    let cfg = OverlayConfig {
        cache_size: 40,
        shuffle_length: 6,
        target_links: 8,
        link_latency: 0.5,
        ..OverlayConfig::default()
    };
    // Short sessions: transit losses become likely.
    let churn = ChurnConfig::from_availability(0.5, 2.0);
    let mut sim = Simulation::new(trust, cfg, churn, 20).unwrap();
    sim.run_until(100.0);
    let lost: u64 = (0..sim.node_count())
        .map(|v| sim.node_stats(v).dropped_requests)
        .sum();
    assert!(lost > 0, "in-transit churn must lose some requests");
}

#[test]
fn moderate_latency_preserves_robustness() {
    // The paper's §III-E5 claim: slow mixes do not break maintenance.
    let trust = trust_graph(50, 21);
    let make = |latency: f64| {
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 12,
            link_latency: latency,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(0.5, 10.0);
        let mut sim = Simulation::new(trust.clone(), cfg, churn, 21).unwrap();
        sim.run_until(120.0);
        veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &sim.online_mask())
    };
    let instant = make(0.0);
    let slow = make(1.0);
    assert!(
        slow <= instant + 0.15,
        "one-period latency should barely hurt: {slow} vs {instant}"
    );
}

#[test]
fn blackout_forces_nodes_offline_and_back() {
    let mut sim = small_sim(1.0, 22);
    sim.run_until(10.0);
    assert_eq!(sim.online_count(), 60);
    let victims: Vec<usize> = (0..30).collect();
    sim.inject_blackout(&victims, 5.0);
    sim.run_until(12.0);
    assert_eq!(sim.online_count(), 30, "half the network is dark");
    for &v in &victims {
        assert!(!sim.is_online(v));
    }
    sim.run_until(16.0);
    assert_eq!(sim.online_count(), 60, "blackout over, everyone back");
    // Permanently-online nodes stay online afterwards (no spurious
    // churn events).
    sim.run_until(60.0);
    assert_eq!(sim.online_count(), 60);
}

#[test]
fn blackout_during_churn_is_superseded_cleanly() {
    let mut sim = small_sim(0.5, 23);
    sim.run_until(20.0);
    let victims: Vec<usize> = (0..sim.node_count()).collect();
    sim.inject_blackout(&victims, 3.0);
    sim.run_until(21.0);
    assert_eq!(sim.online_count(), 0, "total blackout");
    sim.run_until(23.5);
    // Everyone reconnected at t = 23; natural churn has had half a
    // period to pull a few nodes back offline.
    assert!(
        sim.online_count() > sim.node_count() * 9 / 10,
        "reconnect flash crowd: {} online",
        sim.online_count()
    );
    // Natural churn resumes: some nodes drift offline again.
    sim.run_until(60.0);
    let online = sim.online_count();
    assert!(
        online < sim.node_count(),
        "churn must resume, online={online}"
    );
    assert!(online > 0);
}

#[test]
fn overlay_survives_blackout_better_than_trust_graph() {
    let mut sim = small_sim(1.0, 24);
    sim.run_until(40.0); // converge
                         // Blackout a random-ish half: every even node.
    let victims: Vec<usize> = (0..sim.node_count()).filter(|v| v % 2 == 0).collect();
    sim.inject_blackout(&victims, 10.0);
    sim.run_until(41.0);
    let online = sim.online_mask();
    let overlay_frac = veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &online);
    let trust_frac = veil_graph::metrics::fraction_disconnected(sim.trust_graph(), &online);
    assert!(
        overlay_frac <= trust_frac,
        "overlay {overlay_frac} vs trust {trust_frac} during blackout"
    );
}

#[test]
fn blackout_is_deterministic() {
    let run = || {
        let mut sim = small_sim(0.5, 25);
        sim.run_until(15.0);
        sim.inject_blackout(&[0, 1, 2, 3, 4], 4.0);
        sim.run_until(40.0);
        (sim.online_mask(), sim.overlay_graph())
    };
    assert_eq!(run(), run());
}

#[test]
#[should_panic(expected = "positive")]
fn blackout_rejects_zero_duration() {
    let mut sim = small_sim(1.0, 26);
    sim.inject_blackout(&[0], 0.0);
}

#[test]
fn message_log_off_by_default() {
    let mut sim = small_sim(1.0, 18);
    sim.run_until(5.0);
    assert!(sim.message_log().is_none());
    assert!(sim.take_message_log().is_empty());
}
