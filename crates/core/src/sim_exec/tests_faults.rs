//! Faulty-link and failure-injection tests (moved from `simulation.rs`).

use crate::config::{LinkLayerConfig, OverlayConfig};
use crate::node::NodeStats;
use crate::simulation::{MessageKind, Simulation};
use veil_graph::{generators, Graph};
use veil_sim::churn::ChurnConfig;
use veil_sim::fault::{EpisodeEffect, FaultConfig};
use veil_sim::rng::{derive_rng, Stream};

fn trust_graph(n: usize, seed: u64) -> Graph {
    let mut rng = derive_rng(seed, Stream::Topology);
    generators::social_graph(n, 3, &mut rng).unwrap()
}

fn small_sim(alpha: f64, seed: u64) -> Simulation {
    let trust = trust_graph(60, seed);
    let cfg = OverlayConfig {
        cache_size: 50,
        shuffle_length: 8,
        target_links: 12,
        ..OverlayConfig::default()
    };
    let churn = ChurnConfig::from_availability(alpha, 10.0);
    Simulation::new(trust, cfg, churn, seed).unwrap()
}

fn faulty_sim(alpha: f64, seed: u64, fault: FaultConfig) -> Simulation {
    let trust = trust_graph(60, seed);
    let cfg = OverlayConfig {
        cache_size: 50,
        shuffle_length: 8,
        target_links: 12,
        link: LinkLayerConfig::Faulty(fault),
        ..OverlayConfig::default()
    };
    let churn = ChurnConfig::from_availability(alpha, 10.0);
    Simulation::new(trust, cfg, churn, seed).unwrap()
}

#[test]
fn overlapping_blackouts_do_not_duplicate_wake_events() {
    let mut sim = small_sim(1.0, 27);
    sim.run_until(10.0);
    sim.inject_blackout(&[0, 1], 10.0); // dark until t = 20
    sim.run_until(12.0);
    // A shorter overlapping blackout must not truncate the outage (the
    // old behaviour woke the nodes at its own, earlier, end).
    sim.inject_blackout(&[0, 1], 3.0);
    sim.run_until(16.0);
    assert!(!sim.is_online(0), "shorter overlap truncated the blackout");
    assert!(!sim.is_online(1));
    sim.run_until(21.0);
    assert_eq!(sim.online_count(), 60, "original wake still fires");
    // A *longer* overlapping blackout extends the outage instead.
    sim.inject_blackout(&[2], 5.0); // until t = 26
    sim.run_until(22.0);
    sim.inject_blackout(&[2], 10.0); // until t = 32
    sim.run_until(27.0);
    assert!(!sim.is_online(2), "extension supersedes the earlier wake");
    sim.run_until(33.0);
    assert!(sim.is_online(2));
    // And afterwards the network is quiescent again: no stray events.
    sim.run_until(80.0);
    assert_eq!(sim.online_count(), 60);
}

#[test]
fn trivial_faulty_link_matches_ideal_exactly() {
    let run = |link: LinkLayerConfig| {
        let trust = trust_graph(60, 28);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 12,
            link,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(0.5, 10.0);
        let mut sim = Simulation::new(trust, cfg, churn, 28).unwrap();
        sim.enable_message_log();
        sim.run_until(40.0);
        (
            sim.online_mask(),
            sim.overlay_graph(),
            sim.pseudonyms_minted(),
            sim.take_message_log(),
        )
    };
    let ideal = run(LinkLayerConfig::Ideal);
    let faulty = run(LinkLayerConfig::Faulty(FaultConfig::none()));
    assert_eq!(ideal, faulty, "zero-fault layer must be bit-identical");
}

#[test]
fn lossy_link_drops_and_retries_but_overlay_survives() {
    let mut sim = faulty_sim(0.8, 29, FaultConfig::with_loss(0.2));
    sim.run_until(80.0);
    let sum = |f: &dyn Fn(&NodeStats) -> u64| -> u64 {
        (0..sim.node_count()).map(|v| f(&sim.node_stats(v))).sum()
    };
    assert!(sum(&|s| s.dropped_requests) > 0, "losses must be observed");
    assert!(sum(&|s| s.shuffle_retries) > 0, "timeouts must retry");
    let links: usize = (0..sim.node_count())
        .map(|v| sim.node(v).sampler.link_count())
        .sum();
    assert!(links > 60, "gossip still spreads under 20% loss: {links}");
    let frac = veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &sim.online_mask());
    assert!(frac < 0.1, "overlay fell apart under 20% loss: {frac}");
}

#[test]
fn total_loss_exhausts_retries_and_evicts() {
    let mut sim = faulty_sim(1.0, 30, FaultConfig::with_loss(1.0));
    sim.run_until(80.0);
    let failures: u64 = (0..sim.node_count())
        .map(|v| sim.node_stats(v).shuffle_failures)
        .sum();
    assert!(failures > 0, "every exchange must eventually fail");
    let responses: u64 = (0..sim.node_count())
        .map(|v| sim.node_stats(v).responses_sent)
        .sum();
    assert_eq!(responses, 0, "nothing is ever delivered");
}

#[test]
fn faulty_link_is_deterministic() {
    let run = || {
        let fault = FaultConfig {
            drop_probability: 0.15,
            latency: veil_sim::fault::LatencyDist::Exponential { mean: 0.3 },
            ..FaultConfig::none()
        };
        let mut sim = faulty_sim(0.5, 31, fault);
        sim.run_until(50.0);
        (
            sim.online_mask(),
            sim.overlay_graph(),
            sim.pseudonyms_minted(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn partition_episode_blocks_cross_traffic_then_heals() {
    let fault = FaultConfig {
        episodes: vec![veil_sim::fault::FaultEpisode {
            start: 10.0,
            end: 30.0,
            effect: EpisodeEffect::Partition { boundary: 30 },
        }],
        ..FaultConfig::none()
    };
    let mut sim = faulty_sim(1.0, 32, fault);
    sim.enable_message_log();
    sim.run_until(60.0);
    let log = sim.take_message_log();
    let crossings: Vec<_> = log
        .iter()
        .filter(|m| (m.from < 30) != (m.to < 30))
        .collect();
    assert!(
        crossings
            .iter()
            .filter(|m| m.time.as_f64() >= 10.0 && m.time.as_f64() < 30.0)
            .all(|m| m.kind == MessageKind::Dropped),
        "every cross-boundary message during the partition is dropped"
    );
    assert!(
        crossings
            .iter()
            .any(|m| m.time.as_f64() >= 30.0 && m.kind != MessageKind::Dropped),
        "cross-boundary traffic resumes after the partition heals"
    );
}

#[test]
fn blackout_episode_forces_region_offline() {
    let fault = FaultConfig {
        episodes: vec![veil_sim::fault::FaultEpisode {
            start: 10.0,
            end: 20.0,
            effect: EpisodeEffect::Blackout {
                first: 0,
                count: 20,
            },
        }],
        ..FaultConfig::none()
    };
    let mut sim = faulty_sim(1.0, 33, fault);
    sim.run_until(15.0);
    assert_eq!(sim.online_count(), 40, "region of 20 is dark");
    sim.run_until(25.0);
    assert_eq!(sim.online_count(), 60, "region reconnects at episode end");
}

#[test]
fn crashed_nodes_cause_failures_but_not_wedging() {
    let fault = FaultConfig {
        episodes: vec![veil_sim::fault::FaultEpisode {
            start: 0.0,
            end: f64::INFINITY,
            effect: EpisodeEffect::Crash {
                first: 0,
                count: 15,
            },
        }],
        ..FaultConfig::none()
    };
    let mut sim = faulty_sim(1.0, 34, fault);
    sim.run_until(80.0);
    let crashed_requests: u64 = (0..15).map(|v| sim.node_stats(v).requests_sent).sum();
    assert_eq!(crashed_requests, 0, "crashed nodes initiate nothing");
    let failures: u64 = (15..60).map(|v| sim.node_stats(v).shuffle_failures).sum();
    assert!(failures > 0, "peers of crashed nodes time out");
    let live: Vec<usize> = (15..60).collect();
    let links: usize = live.iter().map(|&v| sim.node(v).sampler.link_count()).sum();
    assert!(links > 45, "live nodes keep gossiping: {links}");
}
