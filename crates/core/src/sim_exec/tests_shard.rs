//! Shard-count invariance tests for the sharded executor.
//!
//! The contract under test: with `cfg.shards = Some(s)` and an event graph
//! that has lookahead (fault model or positive link latency), every shard
//! count — including one — produces identical results. Sequential runs
//! (`shards = None`) use a different (unwindowed) event interleaving and
//! are *not* expected to match; `S = 1` is the reference.

use crate::config::{LinkLayerConfig, OverlayConfig};
use crate::node::NodeStats;
use crate::simulation::{MessageRecord, Simulation};
use veil_graph::{generators, Graph};
use veil_sim::churn::ChurnConfig;
use veil_sim::fault::{EpisodeEffect, FaultConfig, FaultEpisode, LatencyDist};
use veil_sim::rng::{derive_rng, Stream};

fn trust_graph(n: usize, seed: u64) -> Graph {
    let mut rng = derive_rng(seed, Stream::Topology);
    generators::social_graph(n, 3, &mut rng).unwrap()
}

fn base_cfg() -> OverlayConfig {
    OverlayConfig {
        cache_size: 50,
        shuffle_length: 8,
        target_links: 12,
        ..OverlayConfig::default()
    }
}

/// Everything observable about a finished run, for exact comparison.
type Snapshot = (
    Vec<bool>,
    Graph,
    u64,
    u64,
    Vec<NodeStats>,
    Vec<MessageRecord>,
);

fn snapshot(sim: &mut Simulation) -> Snapshot {
    (
        sim.online_mask(),
        sim.overlay_graph(),
        sim.pseudonyms_minted(),
        sim.total_link_removals(),
        (0..sim.node_count()).map(|v| sim.node_stats(v)).collect(),
        sim.take_message_log(),
    )
}

fn run_sharded(cfg: &OverlayConfig, alpha: f64, seed: u64, shards: usize, t: f64) -> Snapshot {
    let trust = trust_graph(60, seed);
    let cfg = OverlayConfig {
        shards: Some(shards),
        ..cfg.clone()
    };
    let churn = ChurnConfig::from_availability(alpha, 10.0);
    let mut sim = Simulation::new(trust, cfg, churn, seed).unwrap();
    assert!(sim.is_sharded(), "config must engage the sharded executor");
    sim.enable_message_log();
    sim.run_until(t);
    snapshot(&mut sim)
}

fn assert_shard_invariant(cfg: &OverlayConfig, alpha: f64, seed: u64, t: f64) {
    let reference = run_sharded(cfg, alpha, seed, 1, t);
    for shards in [2, 4] {
        let got = run_sharded(cfg, alpha, seed, shards, t);
        assert_eq!(
            got, reference,
            "shards={shards} diverged from shards=1 (seed {seed})"
        );
    }
}

#[test]
fn faulty_link_is_shard_invariant() {
    let cfg = OverlayConfig {
        link: LinkLayerConfig::Faulty(FaultConfig {
            drop_probability: 0.15,
            latency: LatencyDist::Exponential { mean: 0.3 },
            ..FaultConfig::none()
        }),
        ..base_cfg()
    };
    for seed in [41, 42] {
        assert_shard_invariant(&cfg, 0.6, seed, 30.0);
    }
}

#[test]
fn ideal_latency_is_shard_invariant() {
    let cfg = OverlayConfig {
        link_latency: 0.3,
        ..base_cfg()
    };
    for seed in [43, 44] {
        assert_shard_invariant(&cfg, 0.6, seed, 30.0);
    }
}

#[test]
fn ideal_latency_with_skip_offline_is_shard_invariant() {
    // skip_offline_peers routes target filtering through the barrier
    // snapshot — exercise it explicitly under churn.
    let cfg = OverlayConfig {
        link_latency: 0.5,
        skip_offline_peers: true,
        ..base_cfg()
    };
    assert_shard_invariant(&cfg, 0.5, 45, 30.0);
}

#[test]
fn blackout_episode_is_shard_invariant() {
    let cfg = OverlayConfig {
        link: LinkLayerConfig::Faulty(FaultConfig {
            drop_probability: 0.1,
            latency: LatencyDist::Exponential { mean: 0.2 },
            episodes: vec![FaultEpisode {
                start: 8.0,
                end: 14.0,
                effect: EpisodeEffect::Blackout {
                    first: 10,
                    count: 25,
                },
            }],
        }),
        ..base_cfg()
    };
    assert_shard_invariant(&cfg, 0.8, 46, 25.0);
}

#[test]
fn self_healing_blackout_is_shard_invariant() {
    // The remediation engine decides and applies reactions at barrier
    // boundaries against barrier-time state, so a healing run — monitor
    // on, every reaction armed, with a blackout to provoke rebootstraps —
    // must be byte-identical at every shard count, not just a passive one.
    use crate::config::{HealthConfig, RemedyConfig};
    let cfg = OverlayConfig {
        link: LinkLayerConfig::Faulty(FaultConfig {
            drop_probability: 0.1,
            latency: LatencyDist::Exponential { mean: 0.2 },
            episodes: vec![FaultEpisode {
                start: 8.0,
                end: 14.0,
                effect: EpisodeEffect::Blackout {
                    first: 10,
                    count: 25,
                },
            }],
        }),
        health: HealthConfig {
            enabled: true,
            ..HealthConfig::default()
        },
        remedy: RemedyConfig::all_on(),
        ..base_cfg()
    };
    for seed in [54, 55] {
        assert_shard_invariant(&cfg, 0.8, seed, 25.0);
        // The run must actually exercise the engine, or the invariance
        // claim is vacuous.
        let trust = trust_graph(60, seed);
        let sharded = OverlayConfig {
            shards: Some(2),
            ..cfg.clone()
        };
        let churn = ChurnConfig::from_availability(0.8, 10.0);
        let mut sim = Simulation::new(trust, sharded, churn, seed).unwrap();
        sim.run_until(25.0);
        let counts = sim.remedy_counts().expect("self-healing is on");
        assert!(counts.total() > 0, "no reactions fired (seed {seed})");
    }
}

#[test]
fn total_loss_is_shard_invariant() {
    // Exhausted retries, evictions and timeout bookkeeping, all windowed.
    let cfg = OverlayConfig {
        link: LinkLayerConfig::Faulty(FaultConfig::with_loss(1.0)),
        ..base_cfg()
    };
    assert_shard_invariant(&cfg, 1.0, 47, 20.0);
}

#[test]
fn sharded_run_is_deterministic() {
    let cfg = OverlayConfig {
        link: LinkLayerConfig::Faulty(FaultConfig {
            drop_probability: 0.2,
            latency: LatencyDist::Exponential { mean: 0.4 },
            ..FaultConfig::none()
        }),
        ..base_cfg()
    };
    let run = || run_sharded(&cfg, 0.5, 48, 3, 25.0);
    assert_eq!(run(), run());
}

#[test]
fn split_horizons_match_single_run() {
    // Stopping mid-window (run_until at a non-grid instant) and resuming
    // must not change anything versus one straight run.
    let cfg = OverlayConfig {
        link_latency: 0.3,
        ..base_cfg()
    };
    let trust = trust_graph(60, 49);
    let make = || {
        let cfg = OverlayConfig {
            shards: Some(4),
            ..cfg.clone()
        };
        let churn = ChurnConfig::from_availability(0.7, 10.0);
        Simulation::new(trust.clone(), cfg, churn, 49).unwrap()
    };
    let mut straight = make();
    straight.run_until(20.0);
    let mut split = make();
    split.run_until(7.3);
    split.run_until(12.75);
    split.run_until(20.0);
    assert_eq!(straight.online_mask(), split.online_mask());
    assert_eq!(straight.overlay_graph(), split.overlay_graph());
    assert_eq!(straight.pseudonyms_minted(), split.pseudonyms_minted());
}

#[test]
fn zero_latency_ideal_ignores_shards() {
    // No lookahead, no sharding: the request must fall back to the
    // sequential executor and reproduce the unsharded run exactly.
    let trust = trust_graph(60, 50);
    let run = |shards: Option<usize>| {
        let cfg = OverlayConfig {
            shards,
            ..base_cfg()
        };
        let churn = ChurnConfig::from_availability(0.5, 10.0);
        let mut sim = Simulation::new(trust.clone(), cfg, churn, 50).unwrap();
        assert!(!sim.is_sharded(), "zero-latency ideal runs stay sequential");
        sim.enable_message_log();
        sim.run_until(30.0);
        snapshot(&mut sim)
    };
    assert_eq!(run(Some(8)), run(None));
}

#[test]
fn shard_count_above_node_count_is_clamped() {
    let trust = trust_graph(10, 51);
    let cfg = OverlayConfig {
        link_latency: 0.2,
        shards: Some(64),
        ..base_cfg()
    };
    let churn = ChurnConfig::from_availability(1.0, 10.0);
    let mut sim = Simulation::new(trust, cfg, churn, 51).unwrap();
    assert!(sim.is_sharded());
    sim.run_until(10.0);
    assert_eq!(sim.online_count(), 10);
}

#[test]
#[should_panic(expected = "sequential executor")]
fn step_panics_on_sharded_executor() {
    let trust = trust_graph(20, 52);
    let cfg = OverlayConfig {
        link_latency: 0.2,
        shards: Some(2),
        ..base_cfg()
    };
    let churn = ChurnConfig::from_availability(1.0, 10.0);
    let mut sim = Simulation::new(trust, cfg, churn, 52).unwrap();
    let _ = sim.step();
}

#[test]
fn manual_blackout_is_shard_invariant() {
    let trust = trust_graph(60, 53);
    let run = |shards: usize| {
        let cfg = OverlayConfig {
            link_latency: 0.4,
            shards: Some(shards),
            ..base_cfg()
        };
        let churn = ChurnConfig::from_availability(0.8, 10.0);
        let mut sim = Simulation::new(trust.clone(), cfg, churn, 53).unwrap();
        sim.run_until(10.0);
        sim.inject_blackout(&(0..30).collect::<Vec<_>>(), 5.0);
        sim.run_until(25.0);
        (
            sim.online_mask(),
            sim.overlay_graph(),
            sim.pseudonyms_minted(),
        )
    };
    let reference = run(1);
    for shards in [2, 4] {
        assert_eq!(run(shards), reference, "shards={shards}");
    }
}

#[test]
fn shard_starts_partition_is_contiguous_and_balanced() {
    use super::state::{owner_of, shard_starts};
    for (n, s) in [(10, 1), (10, 3), (64, 8), (7, 7)] {
        let starts = shard_starts(n, s);
        assert_eq!(starts.len(), s + 1);
        assert_eq!(starts[0], 0);
        assert_eq!(starts[s], n);
        let sizes: Vec<usize> = starts.windows(2).map(|w| w[1] - w[0]).collect();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced partition {sizes:?}");
        let owner = owner_of(n, &starts);
        for (v, &o) in owner.iter().enumerate() {
            let o = o as usize;
            assert!(starts[o] <= v && v < starts[o + 1]);
        }
    }
}
