//! Event-driven simulation of the overlay-maintenance protocol.
//!
//! Binds the per-node protocol state ([`crate::node`]) to the discrete-event
//! engine and churn model of `veil-sim`, reproducing the paper's custom
//! event-based simulator (Section IV): time is measured in shuffle periods,
//! but events occur at arbitrary instants — every node's shuffle timer runs
//! at a random phase offset, and churn transitions are exponential.
//!
//! The anonymity and pseudonym services are *ideal* by default, as in the
//! paper's setup: a message over an overlay link is delivered instantly iff
//! both endpoints are online. Configuring
//! [`LinkLayerConfig::Faulty`](crate::config::LinkLayerConfig) instead
//! routes every shuffle through a fault-injecting link layer: messages are
//! dropped with a configured probability, delayed by a sampled latency, and
//! subject to scripted episodes (regional blackouts, partitions, silent
//! crashes). Under that layer shuffles become asynchronous request/response
//! exchanges guarded by a timeout: a timed-out initiator retries with
//! exponential backoff up to [`OverlayConfig::shuffle_retry_budget`], then
//! gives up, counts a `shuffle_failure`, and applies Cyclon-style recovery
//! by evicting the unresponsive pseudonym from its cache and sampler.

use crate::config::{LifetimePolicy, LinkLayerConfig, OverlayConfig};
use crate::error::CoreError;
use crate::health::HealthMonitor;
use crate::node::{LinkTarget, Node, NodeStats};
use crate::protocol;
use crate::pseudonym::{PseudonymId, PseudonymService};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use veil_graph::Graph;
use veil_obs::{EventKind as Obs, Recorder};
use veil_sim::churn::{ChurnConfig, ChurnProcess};
use veil_sim::engine::Engine;
use veil_sim::fault::{EpisodeEffect, FaultConfig};
use veil_sim::rng::{derive_rng, Stream};
use veil_sim::SimTime;

/// Events driving the overlay simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// A node's shuffle timer fired.
    Shuffle(u32),
    /// A node's churn process transitions (online ↔ offline). Stale
    /// generations (superseded by failure injection) are ignored.
    Churn {
        /// The transitioning node.
        node: u32,
        /// Generation stamp; must match the node's current generation.
        generation: u32,
    },
    /// An injected blackout ends and the node reconnects.
    BlackoutEnd {
        /// The recovering node.
        node: u32,
        /// Generation stamp of the blackout.
        generation: u32,
    },
    /// A shuffle request arrives after the configured link latency.
    DeliverRequest(Box<Delivery>),
    /// A shuffle response arrives after the configured link latency.
    DeliverResponse(Box<Delivery>),
    /// A faulty-link shuffle exchange hit its timeout without a response.
    ShuffleTimeout {
        /// The exchange the timeout guards.
        exchange: u64,
    },
    /// A scripted fault episode with a simulation-side effect begins.
    EpisodeStart(u32),
}

/// An in-flight shuffle message (only used when `link_latency > 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Delivery {
    from: u32,
    to: u32,
    offer: Vec<crate::pseudonym::Pseudonym>,
    /// Cache entries the *initiator* offered — carried through the round
    /// trip so the Cyclon eviction preference applies when the response
    /// finally arrives.
    initiator_sent: Vec<crate::pseudonym::PseudonymId>,
    trusted_link: bool,
    /// Faulty-link exchange id matching a [`PendingExchange`]; `0` on the
    /// ideal path (which never consults it).
    exchange: u64,
}

/// Initiator-side state of an in-flight faulty-link shuffle exchange, kept
/// until the response arrives or the retry budget runs out.
#[derive(Debug, Clone)]
struct PendingExchange {
    initiator: u32,
    dest: u32,
    /// The pseudonym behind the chosen link, for Cyclon-style eviction on
    /// failure; `None` for trusted links (never evicted).
    target_pseudonym: Option<PseudonymId>,
    trusted_link: bool,
    /// The request offer, retransmitted verbatim on retry.
    offer: Vec<crate::pseudonym::Pseudonym>,
    sent_from_cache: Vec<PseudonymId>,
    attempt: u32,
}

/// Classification of a logged protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageKind {
    /// A shuffle request from the initiator.
    Request,
    /// The matching shuffle response.
    Response,
    /// A message that was never delivered: the peer was offline (only
    /// occurs with `skip_offline_peers = false`), or the fault-injecting
    /// link layer dropped it.
    Dropped,
}

/// One protocol message, as an external observer positioned on the
/// communication infrastructure would record it (endpoints and timing; the
/// payload is encrypted). Used by the traffic-analysis experiments in
/// `veil-privacy`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageRecord {
    /// Send instant.
    pub time: SimTime,
    /// Sending node.
    pub from: u32,
    /// Receiving node (the pseudonym service's resolution; an observer sees
    /// only the anonymity-service entry point, but ground truth is logged
    /// for evaluating inference attacks).
    pub to: u32,
    /// Request or response.
    pub kind: MessageKind,
    /// Whether the message travelled over a trusted link.
    pub trusted_link: bool,
}

/// A running overlay simulation over a fixed trust graph.
///
/// # Examples
///
/// ```
/// use veil_core::config::OverlayConfig;
/// use veil_core::simulation::Simulation;
/// use veil_graph::generators;
/// use veil_sim::churn::ChurnConfig;
/// use veil_sim::rng::{derive_rng, Stream};
///
/// # fn main() -> Result<(), veil_core::error::CoreError> {
/// let mut rng = derive_rng(1, Stream::Topology);
/// let trust = generators::social_graph(50, 3, &mut rng).unwrap();
/// let churn = ChurnConfig::from_availability(1.0, 30.0);
/// let mut sim = Simulation::new(trust, OverlayConfig::default(), churn, 1)?;
/// sim.run_until(10.0);
/// assert_eq!(sim.online_count(), 50);
/// # Ok(())
/// # }
/// ```
pub struct Simulation {
    trust: Graph,
    cfg: OverlayConfig,
    churn_cfg: ChurnConfig,
    engine: Engine<Event>,
    nodes: Vec<Node>,
    churn: Vec<ChurnProcess>,
    online_since: Vec<Option<SimTime>>,
    offline_since: Vec<Option<SimTime>>,
    churn_generation: Vec<u32>,
    ewma_offline: Vec<Option<f64>>,
    stable_ticks: Vec<u32>,
    last_sampler_activity: Vec<u64>,
    node_rngs: Vec<StdRng>,
    churn_rngs: Vec<StdRng>,
    svc: PseudonymService,
    current_time: SimTime,
    message_log: Option<Vec<MessageRecord>>,
    /// The fault model when the non-trivial faulty link layer is active;
    /// `None` runs the ideal code path (bit-identical to the paper setup).
    fault: Option<FaultConfig>,
    /// One-way latency of the ideal code path: `cfg.link_latency`, or the
    /// constant latency of a trivial faulty layer.
    effective_latency: f64,
    fault_rng: StdRng,
    /// In-flight faulty-link exchanges keyed by exchange id. Only ever
    /// accessed by key, so iteration order can never leak into results.
    pending: HashMap<u64, PendingExchange>,
    next_exchange: u64,
    /// Until when each node is held dark by an injected blackout; prevents
    /// overlapping blackouts from scheduling duplicate wake events or
    /// truncating a longer outage.
    blackout_until: Vec<Option<SimTime>>,
    /// Observability sink; disabled by default (a single branch per hook)
    /// and never a source of randomness, so enabling it cannot perturb the
    /// simulation.
    recorder: Recorder,
    /// Rolling-window degradation detectors over the event stream; present
    /// only when [`OverlayConfig::health`] is enabled *and* a recorder is
    /// attached. Strictly read-only: its outputs are `HealthAlert` events
    /// and `health.*` gauges, never simulation state.
    health: Option<HealthMonitor>,
}

impl Simulation {
    /// Builds a simulation: one protocol node per trust-graph vertex, churn
    /// processes initialized per `churn_cfg`, and — for nodes online at
    /// time zero — pseudonyms created simultaneously at the start (the
    /// paper's start-up condition).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration fails validation or the trust
    /// graph is empty.
    pub fn new(
        trust: Graph,
        cfg: OverlayConfig,
        churn_cfg: ChurnConfig,
        master_seed: u64,
    ) -> Result<Self, CoreError> {
        cfg.validate()?;
        let n = trust.node_count();
        if n == 0 {
            return Err(CoreError::InvalidTrustGraph {
                reason: "trust graph has no nodes".into(),
            });
        }
        let mut engine = Engine::new();
        let mut nodes = Vec::with_capacity(n);
        let mut churn = Vec::with_capacity(n);
        let mut online_since = Vec::with_capacity(n);
        let mut offline_since = Vec::with_capacity(n);
        let mut node_rngs = Vec::with_capacity(n);
        let mut churn_rngs = Vec::with_capacity(n);
        let mut svc = PseudonymService::new(master_seed);
        let mut sched_rng = derive_rng(master_seed, Stream::Scheduler);
        let recorder = veil_obs::global();
        let mut health = HealthMonitor::maybe_new(&cfg.health, &recorder, n, 0.0);

        for v in 0..n {
            let trusted: Vec<u32> = trust.neighbors(v).to_vec();
            let mut proto_rng = derive_rng(master_seed, Stream::Protocol(v as u32));
            let mut churn_rng = derive_rng(master_seed, Stream::Churn(v as u32));
            let mut node = Node::new(v as u32, trusted, &cfg, &mut proto_rng);
            let (process, first_transition) = ChurnProcess::new(&churn_cfg, &mut churn_rng);
            if process.is_online() {
                // All initially online nodes mint pseudonyms at t = 0,
                // which produces the synchronized-expiry transient the
                // paper observes in Figure 9. (The adaptive lifetime policy
                // has no availability observations yet and falls back to
                // the global lifetime here.)
                node.renew_pseudonym(&mut svc, SimTime::ZERO, cfg.pseudonym_lifetime);
                record(&recorder, &mut health, 0.0, Some(v as u32), || {
                    Obs::PseudonymMinted {
                        lifetime: cfg.pseudonym_lifetime,
                    }
                });
                online_since.push(Some(SimTime::ZERO));
                offline_since.push(None);
            } else {
                online_since.push(None);
                offline_since.push(Some(SimTime::ZERO));
            }
            if let Some(delay) = first_transition {
                engine.schedule_at(
                    SimTime::new(delay),
                    Event::Churn {
                        node: v as u32,
                        generation: 0,
                    },
                );
            }
            // Shuffle timers are desynchronised with a random phase in
            // [0, 1) shuffle periods; they keep firing while the node is
            // offline (the handler no-ops), matching the "rejoining node
            // resumes where it left off" semantics.
            let phase: f64 = sched_rng.gen_range(0.0..1.0);
            engine.schedule_at(SimTime::new(phase), Event::Shuffle(v as u32));
            nodes.push(node);
            churn.push(process);
            node_rngs.push(proto_rng);
            churn_rngs.push(churn_rng);
        }

        // The faulty link layer only takes over when it actually injects
        // something; a trivial fault model routes through the ideal code
        // path (with its constant latency), which keeps zero-fault runs
        // byte-identical to the paper setup.
        let (fault, effective_latency) = match &cfg.link {
            LinkLayerConfig::Ideal => (None, cfg.link_latency),
            LinkLayerConfig::Faulty(fc) if fc.is_trivial() => (None, fc.latency.mean()),
            LinkLayerConfig::Faulty(fc) => (Some(fc.clone()), 0.0),
        };
        if let Some(fault) = &fault {
            // Partition and crash episodes are pure message-time filters;
            // only blackouts need a simulation-side trigger.
            for (i, ep) in fault.episodes.iter().enumerate() {
                if matches!(ep.effect, EpisodeEffect::Blackout { .. }) {
                    engine.schedule_at(SimTime::new(ep.start), Event::EpisodeStart(i as u32));
                }
            }
        }

        Ok(Self {
            trust,
            cfg,
            churn_cfg,
            engine,
            nodes,
            churn,
            online_since,
            offline_since,
            churn_generation: vec![0; n],
            ewma_offline: vec![None; n],
            stable_ticks: vec![0; n],
            last_sampler_activity: vec![0; n],
            node_rngs,
            churn_rngs,
            svc,
            current_time: SimTime::ZERO,
            message_log: None,
            fault,
            effective_latency,
            fault_rng: derive_rng(master_seed, Stream::Fault),
            pending: HashMap::new(),
            next_exchange: 1,
            blackout_until: vec![None; n],
            recorder,
            health,
        })
    }

    /// Replaces the observability sink (taken from [`veil_obs::global`] at
    /// construction). Pass [`Recorder::disabled`] to switch recording off.
    ///
    /// The health monitor follows the recorder: it is rebuilt against the
    /// new sink (when [`OverlayConfig::health`] is enabled) with fresh
    /// window state starting at the current time.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
        self.health = HealthMonitor::maybe_new(
            &self.cfg.health,
            &self.recorder,
            self.nodes.len(),
            self.current_time.as_f64(),
        );
    }

    /// Emits an observability event: feeds the health monitor's window
    /// counters, then records the event. One branch when recording is off;
    /// the payload closure is only built when it is on.
    fn emit(&mut self, now: SimTime, node: Option<u32>, kind: impl FnOnce() -> Obs) {
        record(&self.recorder, &mut self.health, now.as_f64(), node, kind);
    }

    /// Closes elapsed health-monitor windows before an event at `now` is
    /// processed. Alerts are stamped at the window-grid boundary, so the
    /// timeline is independent of which event happened to cross it.
    fn health_tick(&mut self, now: SimTime) {
        let due = self.health.as_ref().is_some_and(|h| h.due(now.as_f64()));
        if !due {
            return;
        }
        let online = self.online_mask();
        let degrees: Vec<usize> = (0..self.nodes.len())
            .map(|v| self.trust.neighbors(v).len() + self.nodes[v].sampler.link_count())
            .collect();
        if let Some(h) = self.health.as_mut() {
            h.rotate(now.as_f64(), &online, &degrees);
        }
    }

    /// The active observability sink.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Publishes end-of-run engine and protocol aggregates into the
    /// recorder as gauges and histograms (no-op when recording is off).
    /// Call after the run, before exporting the recorder's metrics.
    ///
    /// Aggregates read from simulation state use a `sim.stats_` prefix
    /// (without a `_total` suffix): in the Prometheus exposition only
    /// counters carry `_total`, and a gauge named `sim.X_total` would
    /// collide with the family the event-derived counter `sim.X` exports.
    pub fn publish_metrics(&self) {
        let r = &self.recorder;
        if !r.is_enabled() {
            return;
        }
        r.gauge("engine.events_processed", self.engine.processed() as f64);
        r.gauge(
            "engine.queue_high_water",
            self.engine.high_water_mark() as f64,
        );
        r.gauge("engine.pending_events", self.engine.pending() as f64);
        r.gauge("sim.nodes", self.nodes.len() as f64);
        r.gauge("sim.online_nodes", self.online_count() as f64);
        r.gauge("sim.stats_pseudonyms_minted", self.svc.minted() as f64);
        r.gauge(
            "sim.stats_churn_transitions",
            self.churn
                .iter()
                .map(ChurnProcess::transitions)
                .sum::<u64>() as f64,
        );
        r.gauge("sim.stats_link_removals", self.total_link_removals() as f64);
        let mut agg = NodeStats::default();
        for v in 0..self.nodes.len() {
            let s = self.node_stats(v);
            agg.requests_sent += s.requests_sent;
            agg.responses_sent += s.responses_sent;
            agg.dropped_requests += s.dropped_requests;
            agg.shuffle_retries += s.shuffle_retries;
            agg.shuffle_failures += s.shuffle_failures;
            agg.shuffles_suppressed += s.shuffles_suppressed;
            agg.online_time += s.online_time;
            r.observe("sim.node_links", self.nodes[v].sampler.link_count());
        }
        r.gauge("sim.stats_requests_sent", agg.requests_sent as f64);
        r.gauge("sim.stats_responses_sent", agg.responses_sent as f64);
        r.gauge("sim.stats_dropped_requests", agg.dropped_requests as f64);
        r.gauge("sim.stats_shuffle_retries", agg.shuffle_retries as f64);
        r.gauge("sim.stats_shuffle_failures", agg.shuffle_failures as f64);
        r.gauge(
            "sim.stats_shuffles_suppressed",
            agg.shuffles_suppressed as f64,
        );
        r.gauge("sim.stats_online_time", agg.online_time);
        r.gauge(
            "health.monitor_enabled",
            if self.health.is_some() { 1.0 } else { 0.0 },
        );
        if let Some(h) = &self.health {
            r.gauge("health.alerts_emitted", h.alerts_emitted() as f64);
        }
    }

    /// Starts recording every protocol message into an in-memory log
    /// (cleared of any previous contents). Used by the traffic-analysis
    /// experiments; off by default because long runs generate millions of
    /// messages.
    pub fn enable_message_log(&mut self) {
        self.message_log = Some(Vec::new());
    }

    /// Stops recording and discards the log.
    pub fn disable_message_log(&mut self) {
        self.message_log = None;
    }

    /// The recorded messages, if logging is enabled.
    pub fn message_log(&self) -> Option<&[MessageRecord]> {
        self.message_log.as_deref()
    }

    /// Drains the recorded messages, keeping logging enabled.
    pub fn take_message_log(&mut self) -> Vec<MessageRecord> {
        match &mut self.message_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    fn log_message(&mut self, record: MessageRecord) {
        if let Some(log) = &mut self.message_log {
            log.push(record);
        }
    }

    /// The lifetime node `v` would give a pseudonym minted right now, per
    /// the configured [`LifetimePolicy`].
    fn lifetime_for(&self, v: usize) -> Option<f64> {
        match self.cfg.lifetime_policy {
            LifetimePolicy::Global => self.cfg.pseudonym_lifetime,
            LifetimePolicy::Adaptive { multiplier, floor } => match self.ewma_offline[v] {
                Some(mean) => Some((multiplier * mean).max(floor)),
                None => self.cfg.pseudonym_lifetime,
            },
        }
    }

    /// The trust graph the overlay was bootstrapped from.
    pub fn trust_graph(&self) -> &Graph {
        &self.trust
    }

    /// The overlay configuration.
    pub fn config(&self) -> &OverlayConfig {
        &self.cfg
    }

    /// The churn configuration.
    pub fn churn_config(&self) -> &ChurnConfig {
        &self.churn_cfg
    }

    /// Number of participants.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of `HealthAlert` events emitted so far, or `None` when the
    /// health monitor is off (disabled in config or no recorder attached).
    pub fn health_alerts(&self) -> Option<u64> {
        self.health.as_ref().map(|h| h.alerts_emitted())
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.current_time
    }

    /// Whether node `v` is currently online.
    pub fn is_online(&self, v: usize) -> bool {
        self.churn[v].is_online()
    }

    /// Number of currently online nodes.
    pub fn online_count(&self) -> usize {
        self.churn.iter().filter(|c| c.is_online()).count()
    }

    /// Online mask indexed by node.
    pub fn online_mask(&self) -> Vec<bool> {
        self.churn.iter().map(|c| c.is_online()).collect()
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, v: usize) -> &Node {
        &self.nodes[v]
    }

    /// Mutable access to a node's protocol state.
    ///
    /// This is an instrumentation hook for the attack experiments in
    /// `veil-privacy` (e.g. an internal observer seeding a marked pseudonym
    /// into its own cache); it is not part of the protocol surface.
    pub fn node_mut(&mut self, v: usize) -> &mut Node {
        &mut self.nodes[v]
    }

    /// Mints a pseudonym owned by `owner` at the current time with the
    /// configured lifetime — used by attack experiments where an internal
    /// observer crafts a traceable pseudonym.
    pub fn mint_pseudonym(&mut self, owner: u32) -> crate::pseudonym::Pseudonym {
        let lifetime = self.cfg.pseudonym_lifetime;
        self.svc.mint(owner, self.current_time, lifetime)
    }

    /// Message/activity statistics of node `v`, with online time accounted
    /// up to the current instant.
    pub fn node_stats(&self, v: usize) -> NodeStats {
        let mut stats = self.nodes[v].stats;
        if let Some(since) = self.online_since[v] {
            stats.online_time += self.current_time.since(since);
        }
        stats
    }

    /// Total pseudonyms minted so far.
    pub fn pseudonyms_minted(&self) -> u64 {
        self.svc.minted()
    }

    /// Cumulative pseudonym-link removals summed over all nodes — the raw
    /// counter behind the link-replacement metric of Figure 9.
    pub fn total_link_removals(&self) -> u64 {
        self.nodes.iter().map(|n| n.sampler.removals()).sum()
    }

    /// Advances the simulation until simulated time `t` (in shuffle
    /// periods).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the current time.
    pub fn run_until(&mut self, t: f64) {
        let horizon = SimTime::new(t);
        assert!(
            horizon >= self.current_time,
            "cannot run backwards: {horizon} < {}",
            self.current_time
        );
        let _span = self
            .recorder
            .span_with("sim.run_until", || format!("until={t}"));
        while let Some((now, event)) = self.engine.pop_before(horizon) {
            self.handle(now, event);
        }
        self.current_time = horizon;
    }

    /// Processes a single event, if any is pending. Returns its time.
    pub fn step(&mut self) -> Option<SimTime> {
        let (now, event) = self.engine.pop()?;
        self.handle(now, event);
        self.current_time = now;
        Some(now)
    }

    fn handle(&mut self, now: SimTime, event: Event) {
        if self.health.is_some() {
            self.health_tick(now);
        }
        match event {
            Event::Shuffle(v) => self.handle_shuffle(now, v as usize),
            Event::Churn { node, generation } => self.handle_churn(now, node as usize, generation),
            Event::BlackoutEnd { node, generation } => {
                self.handle_blackout_end(now, node as usize, generation)
            }
            Event::DeliverRequest(d) => self.handle_request_delivery(now, *d),
            Event::DeliverResponse(d) => self.handle_response_delivery(now, *d),
            Event::ShuffleTimeout { exchange } => self.handle_shuffle_timeout(now, exchange),
            Event::EpisodeStart(idx) => self.handle_episode_start(now, idx as usize),
        }
    }

    fn handle_shuffle(&mut self, now: SimTime, v: usize) {
        // The timer always re-arms; offline nodes simply skip the round.
        self.engine.schedule_at(now + 1.0, Event::Shuffle(v as u32));
        if !self.churn[v].is_online() {
            return;
        }
        // Lazy renewal: a node notices its own pseudonym expired at the
        // next timer tick and mints a fresh one.
        if self.nodes[v].needs_pseudonym(now) {
            let lifetime = self.lifetime_for(v);
            self.nodes[v].renew_pseudonym(&mut self.svc, now, lifetime);
            self.emit(now, Some(v as u32), || Obs::PseudonymMinted { lifetime });
        }
        let purged = self.nodes[v].purge_expired(now);
        if purged > 0 {
            self.emit(now, Some(v as u32), || Obs::PseudonymsExpired {
                count: purged as u64,
            });
        }
        // Adaptive shuffle suppression: once the link set has been stable
        // for the configured number of periods, skip initiating (responses
        // still happen, and any change re-arms the node).
        let activity = self.nodes[v].sampler.additions() + self.nodes[v].sampler.removals();
        if activity == self.last_sampler_activity[v] {
            self.stable_ticks[v] = self.stable_ticks[v].saturating_add(1);
        } else {
            self.stable_ticks[v] = 0;
        }
        self.last_sampler_activity[v] = activity;
        if let Some(k) = self.cfg.stop_after_stable_periods {
            if self.stable_ticks[v] >= k {
                self.nodes[v].stats.shuffles_suppressed += 1;
                return;
            }
        }
        if self.fault.is_some() {
            self.faulty_shuffle(now, v);
            return;
        }
        let target = if self.cfg.skip_offline_peers {
            // The ideal link layer reports deliverability, so the node
            // shuffles with a uniformly random *online* link (this is what
            // makes the paper's request/response count come out at exactly
            // two messages per period).
            let links = self.nodes[v].links(now);
            let online: Vec<_> = links
                .into_iter()
                .filter(|l| self.churn[l.resolve() as usize].is_online())
                .collect();
            if online.is_empty() {
                None
            } else {
                let rng = &mut self.node_rngs[v];
                Some(online[rng.gen_range(0..online.len())])
            }
        } else {
            let rng = &mut self.node_rngs[v];
            self.nodes[v].pick_link(now, rng)
        };
        let Some(target) = target else {
            return;
        };
        let dest = target.resolve() as usize;
        debug_assert_ne!(dest, v, "nodes never link to themselves");
        let trusted_link = target.is_trusted();
        self.emit(now, Some(v as u32), || Obs::ShuffleStart {
            target: dest as u64,
            trusted: trusted_link,
        });
        if !self.churn[dest].is_online() {
            // Request sent into the anonymity service but never delivered.
            self.nodes[v].stats.requests_sent += 1;
            self.nodes[v].stats.dropped_requests += 1;
            self.emit(now, Some(v as u32), || Obs::MessageDropped {
                exchange: 0,
                response: false,
            });
            self.log_message(MessageRecord {
                time: now,
                from: v as u32,
                to: dest as u32,
                kind: MessageKind::Dropped,
                trusted_link,
            });
            return;
        }
        if self.effective_latency > 0.0 {
            // Asynchronous exchange: build the request offer now, deliver
            // it after the link latency; the peer may churn in transit.
            let offer = {
                let rng = &mut self.node_rngs[v];
                protocol::build_offer(&mut self.nodes[v], self.cfg.shuffle_length, now, rng)
            };
            self.nodes[v].stats.requests_sent += 1;
            self.log_message(MessageRecord {
                time: now,
                from: v as u32,
                to: dest as u32,
                kind: MessageKind::Request,
                trusted_link,
            });
            self.engine.schedule_in(
                self.effective_latency,
                Event::DeliverRequest(Box::new(Delivery {
                    from: v as u32,
                    to: dest as u32,
                    offer: offer.entries,
                    initiator_sent: offer.sent_from_cache,
                    trusted_link,
                    exchange: 0,
                })),
            );
            return;
        }
        // Zero latency: run the exchange over the ideal link synchronously.
        let mut rng = self.node_rngs[v].clone();
        let (initiator, responder) = two_mut(&mut self.nodes, v, dest);
        protocol::execute_shuffle(initiator, responder, self.cfg.shuffle_length, now, &mut rng);
        self.node_rngs[v] = rng;
        self.emit(now, Some(v as u32), || Obs::ShuffleComplete { exchange: 0 });
        self.log_message(MessageRecord {
            time: now,
            from: v as u32,
            to: dest as u32,
            kind: MessageKind::Request,
            trusted_link,
        });
        self.log_message(MessageRecord {
            time: now,
            from: dest as u32,
            to: v as u32,
            kind: MessageKind::Response,
            trusted_link,
        });
    }

    /// Initiates one shuffle round over the faulty link layer: pick a link
    /// (over *all* links — a lossy layer cannot report deliverability, so
    /// there is no `skip_offline_peers` shortcut), register a pending
    /// exchange, and transmit the request guarded by a timeout.
    fn faulty_shuffle(&mut self, now: SimTime, v: usize) {
        let crashed = self
            .fault
            .as_ref()
            .is_some_and(|f| f.crashed(v as u32, now.as_f64()));
        if crashed {
            return; // a silently crashed node initiates nothing
        }
        let target = {
            let rng = &mut self.node_rngs[v];
            self.nodes[v].pick_link(now, rng)
        };
        let Some(target) = target else {
            return;
        };
        let dest = target.resolve();
        debug_assert_ne!(dest as usize, v, "nodes never link to themselves");
        let target_pseudonym = match target {
            LinkTarget::Pseudonym(p) => Some(p.id()),
            LinkTarget::Trusted(_) => None,
        };
        let offer = {
            let rng = &mut self.node_rngs[v];
            protocol::build_offer(&mut self.nodes[v], self.cfg.shuffle_length, now, rng)
        };
        let exchange = self.next_exchange;
        self.next_exchange += 1;
        self.emit(now, Some(v as u32), || Obs::ShuffleStart {
            target: u64::from(dest),
            trusted: target.is_trusted(),
        });
        self.pending.insert(
            exchange,
            PendingExchange {
                initiator: v as u32,
                dest,
                target_pseudonym,
                trusted_link: target.is_trusted(),
                offer: offer.entries,
                sent_from_cache: offer.sent_from_cache,
                attempt: 0,
            },
        );
        self.transmit_request(now, exchange);
    }

    /// Sends (or resends) the request of a pending exchange through the
    /// fault model, and arms the exchange's timeout with exponential
    /// backoff.
    fn transmit_request(&mut self, now: SimTime, exchange: u64) {
        let (initiator, dest, trusted_link, attempt) = {
            let p = &self.pending[&exchange];
            (p.initiator, p.dest, p.trusted_link, p.attempt)
        };
        let v = initiator as usize;
        let dropped = self.fault.as_ref().expect("faulty path").is_dropped(
            initiator,
            dest,
            now.as_f64(),
            &mut self.fault_rng,
        );
        self.nodes[v].stats.requests_sent += 1;
        if dropped {
            self.nodes[v].stats.dropped_requests += 1;
            self.emit(now, Some(initiator), || Obs::MessageDropped {
                exchange,
                response: false,
            });
        }
        self.log_message(MessageRecord {
            time: now,
            from: initiator,
            to: dest,
            kind: if dropped {
                MessageKind::Dropped
            } else {
                MessageKind::Request
            },
            trusted_link,
        });
        if !dropped {
            let latency = self
                .fault
                .as_ref()
                .expect("faulty path")
                .sample_latency(&mut self.fault_rng);
            let (offer, sent_from_cache) = {
                let p = &self.pending[&exchange];
                (p.offer.clone(), p.sent_from_cache.clone())
            };
            self.engine.schedule_in(
                latency,
                Event::DeliverRequest(Box::new(Delivery {
                    from: initiator,
                    to: dest,
                    offer,
                    initiator_sent: sent_from_cache,
                    trusted_link,
                    exchange,
                })),
            );
        }
        // Exponential backoff: timeout doubles with every retransmission.
        let backoff = self.cfg.shuffle_timeout * f64::from(1u32 << attempt.min(16));
        self.engine
            .schedule_in(backoff, Event::ShuffleTimeout { exchange });
    }

    /// The timeout of a faulty-link exchange fired. If the response already
    /// arrived this is a no-op; otherwise retry within budget, then give up
    /// and apply Cyclon-style recovery.
    fn handle_shuffle_timeout(&mut self, now: SimTime, exchange: u64) {
        let (initiator, attempt) = match self.pending.get(&exchange) {
            Some(p) => (p.initiator, p.attempt),
            None => return, // completed: the response arrived in time
        };
        let v = initiator as usize;
        let crashed = self
            .fault
            .as_ref()
            .is_some_and(|f| f.crashed(initiator, now.as_f64()));
        if !self.churn[v].is_online() || crashed {
            // The initiator itself is gone; nobody is waiting any more.
            self.pending.remove(&exchange);
            return;
        }
        self.emit(now, Some(initiator), || Obs::ShuffleTimeout {
            exchange,
            attempt: u64::from(attempt),
        });
        if attempt < self.cfg.shuffle_retry_budget {
            self.pending
                .get_mut(&exchange)
                .expect("checked above")
                .attempt += 1;
            self.nodes[v].stats.shuffle_retries += 1;
            self.emit(now, Some(initiator), || Obs::ShuffleRetry {
                exchange,
                attempt: u64::from(attempt) + 1,
            });
            self.transmit_request(now, exchange);
            return;
        }
        // Budget exhausted: count the failure and evict the unresponsive
        // pseudonym so the sampler can replace it (trusted links are part
        // of the social graph and are never evicted).
        let p = self.pending.remove(&exchange).expect("checked above");
        self.nodes[v].stats.shuffle_failures += 1;
        self.emit(now, Some(initiator), || Obs::ShuffleFailure { exchange });
        if let Some(id) = p.target_pseudonym {
            self.nodes[v].cache.remove(id);
            self.nodes[v].sampler.evict(id);
            self.emit(now, Some(initiator), || Obs::PeerEvicted {
                pseudonym: id.0,
            });
        }
    }

    /// A scripted episode with a simulation-side effect begins. Blackout
    /// episodes reuse [`Simulation::inject_blackout`], so they compose with
    /// natural churn and manual injections.
    fn handle_episode_start(&mut self, now: SimTime, idx: usize) {
        let Some(ep) = self
            .fault
            .as_ref()
            .and_then(|f| f.episodes.get(idx))
            .copied()
        else {
            return;
        };
        self.emit(now, None, || Obs::EpisodeStart {
            index: idx as u64,
            kind: ep.effect.kind_str().to_string(),
        });
        if let EpisodeEffect::Blackout { first, count } = ep.effect {
            let n = self.nodes.len();
            let lo = (first as usize).min(n);
            let hi = (first as usize).saturating_add(count as usize).min(n);
            let victims: Vec<usize> = (lo..hi).collect();
            let duration = ep.end - ep.start;
            if !victims.is_empty() && duration > 0.0 && duration.is_finite() {
                self.inject_blackout_at(now, &victims, duration);
            }
        }
    }

    /// A delayed shuffle request reaches the responder.
    fn handle_request_delivery(&mut self, now: SimTime, delivery: Delivery) {
        let responder = delivery.to as usize;
        let crashed = self
            .fault
            .as_ref()
            .is_some_and(|f| f.crashed(delivery.to, now.as_f64()));
        if !self.churn[responder].is_online() || crashed {
            // Lost in transit: the responder churned out (or sits silently
            // crashed). The initiator's request produces no response; on
            // the faulty path the exchange timeout will recover.
            self.nodes[delivery.from as usize].stats.dropped_requests += 1;
            self.emit(now, Some(delivery.from), || Obs::MessageDropped {
                exchange: delivery.exchange,
                response: false,
            });
            return;
        }
        // Mirror the synchronous order: build the response offer before
        // absorbing the request (Cyclon semantics).
        let response = {
            let rng = &mut self.node_rngs[responder];
            protocol::build_offer(
                &mut self.nodes[responder],
                self.cfg.shuffle_length,
                now,
                rng,
            )
        };
        {
            let rng = &mut self.node_rngs[responder];
            protocol::receive_offer(
                &mut self.nodes[responder],
                &delivery.offer,
                &response.sent_from_cache,
                now,
                rng,
            );
        }
        self.nodes[responder].stats.responses_sent += 1;
        if self.fault.is_some() {
            // The response is itself subject to loss and sampled latency;
            // a dropped response is recovered by the initiator's timeout.
            let dropped = self.fault.as_ref().expect("faulty path").is_dropped(
                delivery.to,
                delivery.from,
                now.as_f64(),
                &mut self.fault_rng,
            );
            self.log_message(MessageRecord {
                time: now,
                from: delivery.to,
                to: delivery.from,
                kind: if dropped {
                    MessageKind::Dropped
                } else {
                    MessageKind::Response
                },
                trusted_link: delivery.trusted_link,
            });
            if dropped {
                self.nodes[responder].stats.dropped_requests += 1;
                self.emit(now, Some(delivery.to), || Obs::MessageDropped {
                    exchange: delivery.exchange,
                    response: true,
                });
                return;
            }
            let latency = self
                .fault
                .as_ref()
                .expect("faulty path")
                .sample_latency(&mut self.fault_rng);
            self.engine.schedule_in(
                latency,
                Event::DeliverResponse(Box::new(Delivery {
                    from: delivery.to,
                    to: delivery.from,
                    offer: response.entries,
                    initiator_sent: delivery.initiator_sent,
                    trusted_link: delivery.trusted_link,
                    exchange: delivery.exchange,
                })),
            );
            return;
        }
        self.log_message(MessageRecord {
            time: now,
            from: delivery.to,
            to: delivery.from,
            kind: MessageKind::Response,
            trusted_link: delivery.trusted_link,
        });
        self.engine.schedule_in(
            self.effective_latency,
            Event::DeliverResponse(Box::new(Delivery {
                from: delivery.to,
                to: delivery.from,
                offer: response.entries,
                initiator_sent: delivery.initiator_sent,
                trusted_link: delivery.trusted_link,
                exchange: 0,
            })),
        );
    }

    /// A delayed shuffle response reaches the original initiator.
    fn handle_response_delivery(&mut self, now: SimTime, delivery: Delivery) {
        if self.fault.is_some() && self.pending.remove(&delivery.exchange).is_none() {
            // A duplicate answer to a retransmitted request whose exchange
            // already completed or failed; ignore it.
            return;
        }
        let initiator = delivery.to as usize;
        let crashed = self
            .fault
            .as_ref()
            .is_some_and(|f| f.crashed(delivery.to, now.as_f64()));
        if !self.churn[initiator].is_online() || crashed {
            return; // response lost; the initiator churned out
        }
        let rng = &mut self.node_rngs[initiator];
        protocol::receive_offer(
            &mut self.nodes[initiator],
            &delivery.offer,
            &delivery.initiator_sent,
            now,
            rng,
        );
        self.emit(now, Some(delivery.to), || Obs::ShuffleComplete {
            exchange: delivery.exchange,
        });
    }

    fn handle_churn(&mut self, now: SimTime, v: usize, generation: u32) {
        if generation != self.churn_generation[v] {
            return; // superseded by failure injection
        }
        let next = self.churn[v].transition(&mut self.churn_rngs[v]);
        if let Some(delay) = next {
            self.engine.schedule_at(
                now + delay,
                Event::Churn {
                    node: v as u32,
                    generation,
                },
            );
        }
        if self.churn[v].is_online() {
            self.rejoin(now, v);
        } else {
            self.depart(now, v);
        }
    }

    /// Bookkeeping for a node coming online: session tracking, adaptive
    /// lifetime observation, expired-state purge and pseudonym renewal.
    fn rejoin(&mut self, now: SimTime, v: usize) {
        self.emit(now, Some(v as u32), || Obs::NodeOnline);
        self.online_since[v] = Some(now);
        if let Some(since) = self.offline_since[v].take() {
            // Feed the adaptive lifetime policy with the node's own
            // observed offline duration (EWMA, weight 0.2 on the new
            // observation).
            let duration = now.since(since);
            self.ewma_offline[v] = Some(match self.ewma_offline[v] {
                Some(prev) => 0.8 * prev + 0.2 * duration,
                None => duration,
            });
        }
        // Rejoining is a state change: re-arm suppressed shuffling.
        self.stable_ticks[v] = 0;
        let purged = self.nodes[v].purge_expired(now);
        if purged > 0 {
            self.emit(now, Some(v as u32), || Obs::PseudonymsExpired {
                count: purged as u64,
            });
        }
        if self.nodes[v].needs_pseudonym(now) {
            let lifetime = self.lifetime_for(v);
            self.nodes[v].renew_pseudonym(&mut self.svc, now, lifetime);
            self.emit(now, Some(v as u32), || Obs::PseudonymMinted { lifetime });
        }
    }

    /// Bookkeeping for a node going offline: close the online session.
    fn depart(&mut self, now: SimTime, v: usize) {
        self.emit(now, Some(v as u32), || Obs::NodeOffline);
        self.offline_since[v] = Some(now);
        if let Some(since) = self.online_since[v].take() {
            self.nodes[v].stats.online_time += now.since(since);
        }
    }

    /// Injects a correlated failure: every node in `nodes` goes offline now
    /// and returns online exactly `duration` shuffle periods later
    /// (a regional blackout followed by a reconnect flash crowd). Natural
    /// churn resumes after the forced reconnect.
    ///
    /// Nodes already offline stay offline for (at least) the blackout; any
    /// pending natural transition is cancelled via a generation bump. A
    /// node already under a blackout that ends at or after the new one is
    /// left untouched — overlapping blackouts never schedule a duplicate
    /// wake event, and a shorter second blackout never truncates a longer
    /// outage already in force.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive or a node index is out of
    /// range.
    pub fn inject_blackout(&mut self, nodes: &[usize], duration: f64) {
        let now = self.current_time;
        self.inject_blackout_at(now, nodes, duration);
    }

    fn inject_blackout_at(&mut self, now: SimTime, nodes: &[usize], duration: f64) {
        assert!(duration > 0.0, "blackout duration must be positive");
        for &v in nodes {
            assert!(v < self.nodes.len(), "node {v} out of range");
            let until = now + duration;
            if let Some(existing) = self.blackout_until[v] {
                if existing >= until {
                    // Already dark at least that long: the pending wake
                    // event stands; re-forcing would duplicate it.
                    continue;
                }
            }
            self.blackout_until[v] = Some(until);
            self.emit(now, Some(v as u32), || Obs::BlackoutStart {
                until: until.as_f64(),
            });
            self.churn_generation[v] = self.churn_generation[v].wrapping_add(1);
            if self.churn[v].is_online() {
                self.depart(now, v);
            }
            // Residence sample is discarded: the blackout end is forced.
            let _ = self.churn[v]
                .force_state(veil_sim::churn::NodeState::Offline, &mut self.churn_rngs[v]);
            self.engine.schedule_at(
                until,
                Event::BlackoutEnd {
                    node: v as u32,
                    generation: self.churn_generation[v],
                },
            );
        }
    }

    fn handle_blackout_end(&mut self, now: SimTime, v: usize, generation: u32) {
        if generation != self.churn_generation[v] {
            return; // a newer blackout supersedes this recovery
        }
        self.blackout_until[v] = None;
        self.emit(now, Some(v as u32), || Obs::BlackoutEnd);
        let next =
            self.churn[v].force_state(veil_sim::churn::NodeState::Online, &mut self.churn_rngs[v]);
        if let Some(delay) = next {
            self.engine.schedule_at(
                now + delay,
                Event::Churn {
                    node: v as u32,
                    generation,
                },
            );
        }
        self.rejoin(now, v);
    }

    /// Materializes the current overlay as an undirected graph: the union
    /// of all trusted links and all valid pseudonym links (an edge `{a,b}`
    /// exists if either side holds a link to the other).
    ///
    /// Offline nodes keep their links — connectivity metrics mask them out
    /// separately ("overlay links to nodes that go offline are not
    /// removed"; they become operational again on rejoin).
    pub fn overlay_graph(&self) -> Graph {
        let now = self.current_time;
        let mut g = Graph::new(self.nodes.len());
        for (a, b) in self.trust.edges() {
            g.add_edge(a, b).expect("trust edge in range");
        }
        for (v, node) in self.nodes.iter().enumerate() {
            for link in node.links(now) {
                if let LinkTarget::Pseudonym(p) = link {
                    let owner = p.owner() as usize;
                    if owner != v {
                        let _ = g.add_edge(v, owner).expect("pseudonym edge in range");
                    }
                }
            }
        }
        g
    }

    /// The overlay restricted to trusted links only (the F2F baseline the
    /// paper compares against).
    pub fn trust_only_graph(&self) -> &Graph {
        &self.trust
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("now", &self.current_time)
            .field("online", &self.online_count())
            .finish()
    }
}

/// Shared emission funnel for [`Simulation::emit`] and construction-time
/// events (before `Self` exists): builds the payload once, feeds the health
/// monitor, then records. Still a single branch when recording is off.
fn record(
    recorder: &Recorder,
    health: &mut Option<HealthMonitor>,
    t: f64,
    node: Option<u32>,
    kind: impl FnOnce() -> Obs,
) {
    if !recorder.is_enabled() {
        return;
    }
    let kind = kind();
    if let Some(h) = health {
        h.observe(t, node, &kind);
    }
    recorder.event(t, node, move || kind);
}

/// Mutable references to two distinct vector elements.
fn two_mut<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b, "indices must differ");
    if a < b {
        let (left, right) = v.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = v.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veil_graph::generators;
    use veil_graph::metrics as gm;

    fn trust_graph(n: usize, seed: u64) -> Graph {
        let mut rng = derive_rng(seed, Stream::Topology);
        generators::social_graph(n, 3, &mut rng).unwrap()
    }

    fn small_sim(alpha: f64, seed: u64) -> Simulation {
        let trust = trust_graph(60, seed);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 12,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(alpha, 10.0);
        Simulation::new(trust, cfg, churn, seed).unwrap()
    }

    #[test]
    fn rejects_empty_trust_graph() {
        let churn = ChurnConfig::from_availability(1.0, 30.0);
        let err = Simulation::new(Graph::new(0), OverlayConfig::default(), churn, 1).unwrap_err();
        assert!(matches!(err, CoreError::InvalidTrustGraph { .. }));
    }

    #[test]
    fn rejects_invalid_config() {
        let churn = ChurnConfig::from_availability(1.0, 30.0);
        let cfg = OverlayConfig {
            cache_size: 0,
            ..OverlayConfig::default()
        };
        assert!(Simulation::new(Graph::new(5), cfg, churn, 1).is_err());
    }

    #[test]
    fn all_online_without_churn() {
        let mut sim = small_sim(1.0, 1);
        assert_eq!(sim.online_count(), 60);
        sim.run_until(5.0);
        assert_eq!(sim.online_count(), 60, "no churn at availability 1");
    }

    #[test]
    fn overlay_contains_trust_edges() {
        let mut sim = small_sim(1.0, 2);
        sim.run_until(3.0);
        let overlay = sim.overlay_graph();
        for (a, b) in sim.trust_graph().edges() {
            assert!(overlay.has_edge(a, b));
        }
    }

    #[test]
    fn overlay_grows_pseudonym_links() {
        let mut sim = small_sim(1.0, 3);
        let trust_edges = sim.trust_graph().edge_count();
        sim.run_until(30.0);
        let overlay = sim.overlay_graph();
        assert!(
            overlay.edge_count() > trust_edges + 60,
            "overlay should gain many pseudonym links: {} vs {}",
            overlay.edge_count(),
            trust_edges
        );
    }

    #[test]
    fn overlay_approaches_target_degree() {
        let mut sim = small_sim(1.0, 4);
        sim.run_until(50.0);
        // Average pseudonym link count should approach the slot budgets.
        let mean_links: f64 = (0..sim.node_count())
            .map(|v| sim.node(v).sampler.link_count() as f64)
            .sum::<f64>()
            / sim.node_count() as f64;
        let mean_slots: f64 = (0..sim.node_count())
            .map(|v| sim.node(v).sampler.slot_count() as f64)
            .sum::<f64>()
            / sim.node_count() as f64;
        assert!(
            mean_links > 0.5 * mean_slots.min(59.0),
            "links {mean_links:.1} vs slots {mean_slots:.1}"
        );
    }

    #[test]
    fn churn_changes_online_set() {
        let mut sim = small_sim(0.5, 5);
        sim.run_until(50.0);
        let online = sim.online_count();
        assert!(online > 10 && online < 50, "online {online} of 60");
    }

    #[test]
    fn online_time_accounting_sums_to_about_alpha() {
        let mut sim = small_sim(0.5, 6);
        sim.run_until(200.0);
        let total_online: f64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).online_time)
            .sum();
        let expected = 0.5 * 200.0 * sim.node_count() as f64;
        assert!(
            (total_online - expected).abs() < 0.15 * expected,
            "online time {total_online} vs expected {expected}"
        );
    }

    #[test]
    fn messages_average_about_two_per_period() {
        // Paper: "the average number of messages sent per shuffle period
        // per node across the whole overlay is 2" (no churn case).
        let mut sim = small_sim(1.0, 7);
        sim.run_until(60.0);
        let mean_rate: f64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).messages_per_period())
            .sum::<f64>()
            / sim.node_count() as f64;
        assert!(
            (mean_rate - 2.0).abs() < 0.25,
            "mean message rate {mean_rate}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = small_sim(0.5, 8);
        let mut b = small_sim(0.5, 8);
        a.run_until(40.0);
        b.run_until(40.0);
        assert_eq!(a.online_mask(), b.online_mask());
        assert_eq!(a.overlay_graph(), b.overlay_graph());
        assert_eq!(a.pseudonyms_minted(), b.pseudonyms_minted());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = small_sim(0.5, 9);
        let mut b = small_sim(0.5, 10);
        a.run_until(40.0);
        b.run_until(40.0);
        assert_ne!(a.overlay_graph(), b.overlay_graph());
    }

    #[test]
    fn expiry_drives_renewal() {
        let trust = trust_graph(30, 11);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 10,
            pseudonym_lifetime: Some(5.0),
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(1.0, 10.0);
        let mut sim = Simulation::new(trust, cfg, churn, 11).unwrap();
        sim.run_until(26.0);
        // Lifetime 5sp over 26sp: every node should have minted ~5 times.
        assert!(
            sim.pseudonyms_minted() >= 4 * 30,
            "minted {}",
            sim.pseudonyms_minted()
        );
        assert!(sim.total_link_removals() > 0, "expiry must remove links");
    }

    #[test]
    fn no_expiry_no_removals_after_convergence() {
        let trust = trust_graph(30, 12);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 10,
            pseudonym_lifetime: None,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(1.0, 10.0);
        let mut sim = Simulation::new(trust, cfg, churn, 12).unwrap();
        sim.run_until(150.0);
        let at_150 = sim.total_link_removals();
        sim.run_until(200.0);
        let at_200 = sim.total_link_removals();
        // Convergence: the min-wise process settles; replacements dry up.
        assert!(
            at_200 - at_150 < 30,
            "replacements kept happening: {at_150} -> {at_200}"
        );
    }

    #[test]
    fn overlay_beats_trust_graph_under_churn() {
        let mut sim = small_sim(0.4, 13);
        sim.run_until(120.0);
        let online = sim.online_mask();
        let overlay = sim.overlay_graph();
        let frac_overlay = gm::fraction_disconnected(&overlay, &online);
        let frac_trust = gm::fraction_disconnected(sim.trust_graph(), &online);
        assert!(
            frac_overlay < frac_trust,
            "overlay {frac_overlay} should beat trust {frac_trust}"
        );
    }

    #[test]
    fn two_mut_returns_both_orders() {
        let mut v = vec![1, 2, 3];
        {
            let (a, b) = two_mut(&mut v, 0, 2);
            assert_eq!((*a, *b), (1, 3));
        }
        let (a, b) = two_mut(&mut v, 2, 0);
        assert_eq!((*a, *b), (3, 1));
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn two_mut_rejects_same_index() {
        let mut v = vec![1, 2];
        two_mut(&mut v, 1, 1);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn run_until_rejects_past() {
        let mut sim = small_sim(1.0, 14);
        sim.run_until(5.0);
        sim.run_until(4.0);
    }

    #[test]
    fn adaptive_stop_suppresses_shuffles_after_convergence() {
        let trust = trust_graph(40, 15);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 10,
            pseudonym_lifetime: None, // stable regime: links converge
            stop_after_stable_periods: Some(5),
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(1.0, 10.0);
        let mut sim = Simulation::new(trust.clone(), cfg, churn, 15).unwrap();
        sim.run_until(300.0);
        let suppressed: u64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).shuffles_suppressed)
            .sum();
        assert!(suppressed > 0, "stability detector never fired");
        // And the overlay is still healthy.
        let frac =
            veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &sim.online_mask());
        assert_eq!(frac, 0.0);
        // Late-window message traffic collapses relative to the always-on
        // configuration.
        let always_cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 10,
            pseudonym_lifetime: None,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(1.0, 10.0);
        let mut always = Simulation::new(trust, always_cfg, churn, 15).unwrap();
        always.run_until(300.0);
        let requests = |sim: &Simulation| -> u64 {
            (0..sim.node_count())
                .map(|v| sim.node_stats(v).requests_sent)
                .sum()
        };
        assert!(
            requests(&sim) < requests(&always) / 2,
            "suppression should at least halve request traffic: {} vs {}",
            requests(&sim),
            requests(&always)
        );
    }

    #[test]
    fn adaptive_lifetime_tracks_offline_durations() {
        use crate::config::LifetimePolicy;
        let trust = trust_graph(40, 16);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 10,
            pseudonym_lifetime: Some(90.0),
            lifetime_policy: LifetimePolicy::Adaptive {
                multiplier: 3.0,
                floor: 5.0,
            },
            ..OverlayConfig::default()
        };
        // Mean offline time 10sp: adaptive lifetimes should settle near
        // 3 x 10 = 30sp, well below the 90sp global fallback.
        let churn = ChurnConfig::from_availability(0.5, 10.0);
        let mut sim = Simulation::new(trust, cfg, churn, 16).unwrap();
        sim.run_until(400.0);
        // Inspect the actual lifetimes of current pseudonyms.
        let now = sim.now();
        let mut lifetimes = Vec::new();
        for v in 0..sim.node_count() {
            if let Some(p) = sim.node(v).own_pseudonym(now) {
                if let Some(expiry) = p.expires() {
                    // Upper bound on the minted lifetime.
                    lifetimes.push(expiry - now);
                }
            }
        }
        assert!(!lifetimes.is_empty());
        let mean_remaining: f64 = lifetimes.iter().sum::<f64>() / lifetimes.len() as f64;
        // Remaining lifetime of an adaptive (~30sp) pseudonym is well below
        // the global 90sp value.
        assert!(
            mean_remaining < 60.0,
            "adaptive lifetimes look global: mean remaining {mean_remaining}"
        );
    }

    #[test]
    fn message_log_records_request_response_pairs() {
        let mut sim = small_sim(1.0, 17);
        sim.enable_message_log();
        sim.run_until(5.0);
        let log = sim.message_log().unwrap();
        assert!(!log.is_empty());
        let requests = log
            .iter()
            .filter(|m| m.kind == MessageKind::Request)
            .count();
        let responses = log
            .iter()
            .filter(|m| m.kind == MessageKind::Response)
            .count();
        assert_eq!(requests, responses, "every request gets a response");
        for m in log {
            assert_ne!(m.from, m.to);
        }
        // Draining works and keeps logging active.
        let drained = sim.take_message_log();
        assert_eq!(drained.len(), requests + responses);
        sim.run_until(6.0);
        assert!(!sim.message_log().unwrap().is_empty());
        sim.disable_message_log();
        assert!(sim.message_log().is_none());
    }

    #[test]
    fn latency_one_round_trip_still_exchanges() {
        let trust = trust_graph(30, 19);
        let cfg = OverlayConfig {
            cache_size: 40,
            shuffle_length: 6,
            target_links: 8,
            link_latency: 0.2,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(1.0, 10.0);
        let mut sim = Simulation::new(trust, cfg, churn, 19).unwrap();
        sim.run_until(30.0);
        // Gossip still works: pseudonym links accumulate.
        let total_links: usize = (0..sim.node_count())
            .map(|v| sim.node(v).sampler.link_count())
            .sum();
        assert!(total_links > 30, "links {total_links}");
        // Request/response accounting still pairs up (no churn => no loss).
        let req: u64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).requests_sent)
            .sum();
        let resp: u64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).responses_sent)
            .sum();
        assert!(req > 0);
        // In-flight messages at the horizon make resp lag req slightly.
        assert!(resp <= req && req - resp <= sim.node_count() as u64);
    }

    #[test]
    fn latency_with_churn_loses_in_transit_messages() {
        let trust = trust_graph(40, 20);
        let cfg = OverlayConfig {
            cache_size: 40,
            shuffle_length: 6,
            target_links: 8,
            link_latency: 0.5,
            ..OverlayConfig::default()
        };
        // Short sessions: transit losses become likely.
        let churn = ChurnConfig::from_availability(0.5, 2.0);
        let mut sim = Simulation::new(trust, cfg, churn, 20).unwrap();
        sim.run_until(100.0);
        let lost: u64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).dropped_requests)
            .sum();
        assert!(lost > 0, "in-transit churn must lose some requests");
    }

    #[test]
    fn moderate_latency_preserves_robustness() {
        // The paper's §III-E5 claim: slow mixes do not break maintenance.
        let trust = trust_graph(50, 21);
        let make = |latency: f64| {
            let cfg = OverlayConfig {
                cache_size: 50,
                shuffle_length: 8,
                target_links: 12,
                link_latency: latency,
                ..OverlayConfig::default()
            };
            let churn = ChurnConfig::from_availability(0.5, 10.0);
            let mut sim = Simulation::new(trust.clone(), cfg, churn, 21).unwrap();
            sim.run_until(120.0);
            veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &sim.online_mask())
        };
        let instant = make(0.0);
        let slow = make(1.0);
        assert!(
            slow <= instant + 0.15,
            "one-period latency should barely hurt: {slow} vs {instant}"
        );
    }

    #[test]
    fn blackout_forces_nodes_offline_and_back() {
        let mut sim = small_sim(1.0, 22);
        sim.run_until(10.0);
        assert_eq!(sim.online_count(), 60);
        let victims: Vec<usize> = (0..30).collect();
        sim.inject_blackout(&victims, 5.0);
        sim.run_until(12.0);
        assert_eq!(sim.online_count(), 30, "half the network is dark");
        for &v in &victims {
            assert!(!sim.is_online(v));
        }
        sim.run_until(16.0);
        assert_eq!(sim.online_count(), 60, "blackout over, everyone back");
        // Permanently-online nodes stay online afterwards (no spurious
        // churn events).
        sim.run_until(60.0);
        assert_eq!(sim.online_count(), 60);
    }

    #[test]
    fn blackout_during_churn_is_superseded_cleanly() {
        let mut sim = small_sim(0.5, 23);
        sim.run_until(20.0);
        let victims: Vec<usize> = (0..sim.node_count()).collect();
        sim.inject_blackout(&victims, 3.0);
        sim.run_until(21.0);
        assert_eq!(sim.online_count(), 0, "total blackout");
        sim.run_until(23.5);
        // Everyone reconnected at t = 23; natural churn has had half a
        // period to pull a few nodes back offline.
        assert!(
            sim.online_count() > sim.node_count() * 9 / 10,
            "reconnect flash crowd: {} online",
            sim.online_count()
        );
        // Natural churn resumes: some nodes drift offline again.
        sim.run_until(60.0);
        let online = sim.online_count();
        assert!(
            online < sim.node_count(),
            "churn must resume, online={online}"
        );
        assert!(online > 0);
    }

    #[test]
    fn overlay_survives_blackout_better_than_trust_graph() {
        let mut sim = small_sim(1.0, 24);
        sim.run_until(40.0); // converge
                             // Blackout a random-ish half: every even node.
        let victims: Vec<usize> = (0..sim.node_count()).filter(|v| v % 2 == 0).collect();
        sim.inject_blackout(&victims, 10.0);
        sim.run_until(41.0);
        let online = sim.online_mask();
        let overlay_frac =
            veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &online);
        let trust_frac = veil_graph::metrics::fraction_disconnected(sim.trust_graph(), &online);
        assert!(
            overlay_frac <= trust_frac,
            "overlay {overlay_frac} vs trust {trust_frac} during blackout"
        );
    }

    #[test]
    fn blackout_is_deterministic() {
        let run = || {
            let mut sim = small_sim(0.5, 25);
            sim.run_until(15.0);
            sim.inject_blackout(&[0, 1, 2, 3, 4], 4.0);
            sim.run_until(40.0);
            (sim.online_mask(), sim.overlay_graph())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn blackout_rejects_zero_duration() {
        let mut sim = small_sim(1.0, 26);
        sim.inject_blackout(&[0], 0.0);
    }

    #[test]
    fn message_log_off_by_default() {
        let mut sim = small_sim(1.0, 18);
        sim.run_until(5.0);
        assert!(sim.message_log().is_none());
        assert!(sim.take_message_log().is_empty());
    }

    fn faulty_sim(alpha: f64, seed: u64, fault: FaultConfig) -> Simulation {
        let trust = trust_graph(60, seed);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 12,
            link: LinkLayerConfig::Faulty(fault),
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(alpha, 10.0);
        Simulation::new(trust, cfg, churn, seed).unwrap()
    }

    #[test]
    fn overlapping_blackouts_do_not_duplicate_wake_events() {
        let mut sim = small_sim(1.0, 27);
        sim.run_until(10.0);
        sim.inject_blackout(&[0, 1], 10.0); // dark until t = 20
        sim.run_until(12.0);
        // A shorter overlapping blackout must not truncate the outage (the
        // old behaviour woke the nodes at its own, earlier, end).
        sim.inject_blackout(&[0, 1], 3.0);
        sim.run_until(16.0);
        assert!(!sim.is_online(0), "shorter overlap truncated the blackout");
        assert!(!sim.is_online(1));
        sim.run_until(21.0);
        assert_eq!(sim.online_count(), 60, "original wake still fires");
        // A *longer* overlapping blackout extends the outage instead.
        sim.inject_blackout(&[2], 5.0); // until t = 26
        sim.run_until(22.0);
        sim.inject_blackout(&[2], 10.0); // until t = 32
        sim.run_until(27.0);
        assert!(!sim.is_online(2), "extension supersedes the earlier wake");
        sim.run_until(33.0);
        assert!(sim.is_online(2));
        // And afterwards the network is quiescent again: no stray events.
        sim.run_until(80.0);
        assert_eq!(sim.online_count(), 60);
    }

    #[test]
    fn trivial_faulty_link_matches_ideal_exactly() {
        let run = |link: LinkLayerConfig| {
            let trust = trust_graph(60, 28);
            let cfg = OverlayConfig {
                cache_size: 50,
                shuffle_length: 8,
                target_links: 12,
                link,
                ..OverlayConfig::default()
            };
            let churn = ChurnConfig::from_availability(0.5, 10.0);
            let mut sim = Simulation::new(trust, cfg, churn, 28).unwrap();
            sim.enable_message_log();
            sim.run_until(40.0);
            (
                sim.online_mask(),
                sim.overlay_graph(),
                sim.pseudonyms_minted(),
                sim.take_message_log(),
            )
        };
        let ideal = run(LinkLayerConfig::Ideal);
        let faulty = run(LinkLayerConfig::Faulty(FaultConfig::none()));
        assert_eq!(ideal, faulty, "zero-fault layer must be bit-identical");
    }

    #[test]
    fn lossy_link_drops_and_retries_but_overlay_survives() {
        let mut sim = faulty_sim(0.8, 29, FaultConfig::with_loss(0.2));
        sim.run_until(80.0);
        let sum = |f: &dyn Fn(&NodeStats) -> u64| -> u64 {
            (0..sim.node_count()).map(|v| f(&sim.node_stats(v))).sum()
        };
        assert!(sum(&|s| s.dropped_requests) > 0, "losses must be observed");
        assert!(sum(&|s| s.shuffle_retries) > 0, "timeouts must retry");
        let links: usize = (0..sim.node_count())
            .map(|v| sim.node(v).sampler.link_count())
            .sum();
        assert!(links > 60, "gossip still spreads under 20% loss: {links}");
        let frac =
            veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &sim.online_mask());
        assert!(frac < 0.1, "overlay fell apart under 20% loss: {frac}");
    }

    #[test]
    fn total_loss_exhausts_retries_and_evicts() {
        let mut sim = faulty_sim(1.0, 30, FaultConfig::with_loss(1.0));
        sim.run_until(80.0);
        let failures: u64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).shuffle_failures)
            .sum();
        assert!(failures > 0, "every exchange must eventually fail");
        let responses: u64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).responses_sent)
            .sum();
        assert_eq!(responses, 0, "nothing is ever delivered");
    }

    #[test]
    fn faulty_link_is_deterministic() {
        let run = || {
            let fault = FaultConfig {
                drop_probability: 0.15,
                latency: veil_sim::fault::LatencyDist::Exponential { mean: 0.3 },
                ..FaultConfig::none()
            };
            let mut sim = faulty_sim(0.5, 31, fault);
            sim.run_until(50.0);
            (
                sim.online_mask(),
                sim.overlay_graph(),
                sim.pseudonyms_minted(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn partition_episode_blocks_cross_traffic_then_heals() {
        let fault = FaultConfig {
            episodes: vec![veil_sim::fault::FaultEpisode {
                start: 10.0,
                end: 30.0,
                effect: EpisodeEffect::Partition { boundary: 30 },
            }],
            ..FaultConfig::none()
        };
        let mut sim = faulty_sim(1.0, 32, fault);
        sim.enable_message_log();
        sim.run_until(60.0);
        let log = sim.take_message_log();
        let crossings: Vec<_> = log
            .iter()
            .filter(|m| (m.from < 30) != (m.to < 30))
            .collect();
        assert!(
            crossings
                .iter()
                .filter(|m| m.time.as_f64() >= 10.0 && m.time.as_f64() < 30.0)
                .all(|m| m.kind == MessageKind::Dropped),
            "every cross-boundary message during the partition is dropped"
        );
        assert!(
            crossings
                .iter()
                .any(|m| m.time.as_f64() >= 30.0 && m.kind != MessageKind::Dropped),
            "cross-boundary traffic resumes after the partition heals"
        );
    }

    #[test]
    fn blackout_episode_forces_region_offline() {
        let fault = FaultConfig {
            episodes: vec![veil_sim::fault::FaultEpisode {
                start: 10.0,
                end: 20.0,
                effect: EpisodeEffect::Blackout {
                    first: 0,
                    count: 20,
                },
            }],
            ..FaultConfig::none()
        };
        let mut sim = faulty_sim(1.0, 33, fault);
        sim.run_until(15.0);
        assert_eq!(sim.online_count(), 40, "region of 20 is dark");
        sim.run_until(25.0);
        assert_eq!(sim.online_count(), 60, "region reconnects at episode end");
    }

    #[test]
    fn crashed_nodes_cause_failures_but_not_wedging() {
        let fault = FaultConfig {
            episodes: vec![veil_sim::fault::FaultEpisode {
                start: 0.0,
                end: f64::INFINITY,
                effect: EpisodeEffect::Crash {
                    first: 0,
                    count: 15,
                },
            }],
            ..FaultConfig::none()
        };
        let mut sim = faulty_sim(1.0, 34, fault);
        sim.run_until(80.0);
        let crashed_requests: u64 = (0..15).map(|v| sim.node_stats(v).requests_sent).sum();
        assert_eq!(crashed_requests, 0, "crashed nodes initiate nothing");
        let failures: u64 = (15..60).map(|v| sim.node_stats(v).shuffle_failures).sum();
        assert!(failures > 0, "peers of crashed nodes time out");
        let live: Vec<usize> = (15..60).collect();
        let links: usize = live.iter().map(|&v| sim.node(v).sampler.link_count()).sum();
        assert!(links > 45, "live nodes keep gossiping: {links}");
    }
}
