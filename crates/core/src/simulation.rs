//! Event-driven simulation of the overlay-maintenance protocol.
//!
//! Binds the per-node protocol state ([`crate::node`]) to the discrete-event
//! engine and churn model of `veil-sim`, reproducing the paper's custom
//! event-based simulator (Section IV): time is measured in shuffle periods,
//! but events occur at arbitrary instants — every node's shuffle timer runs
//! at a random phase offset, and churn transitions are exponential.
//!
//! The anonymity and pseudonym services are *ideal* by default, as in the
//! paper's setup: a message over an overlay link is delivered instantly iff
//! both endpoints are online. Configuring
//! [`LinkLayerConfig::Faulty`](crate::config::LinkLayerConfig) instead
//! routes every shuffle through a fault-injecting link layer: messages are
//! dropped with a configured probability, delayed by a sampled latency, and
//! subject to scripted episodes (regional blackouts, partitions, silent
//! crashes). Under that layer shuffles become asynchronous request/response
//! exchanges guarded by a timeout: a timed-out initiator retries with
//! exponential backoff up to [`OverlayConfig::shuffle_retry_budget`], then
//! gives up, counts a `shuffle_failure`, and applies Cyclon-style recovery
//! by evicting the unresponsive pseudonym from its cache and sampler.
//!
//! This module is the public facade; the execution machinery lives in
//! [`crate::sim_exec`]. Two executors share the per-node state:
//!
//! - the **sequential** executor ([`crate::sim_exec::dispatch`]): one
//!   global engine, byte-identical to the original simulator; and
//! - the **sharded** executor ([`crate::sim_exec::executor`]): nodes
//!   partitioned over [`OverlayConfig::shards`] shards running on worker
//!   threads in bounded time windows, producing identical results for
//!   every shard count (including one).
//!
//! The sharded executor only engages when the event graph has lookahead —
//! a fault model or positive link latency. Zero-latency ideal runs are
//! synchronous exchanges with no in-flight messages to window, so they
//! always run sequentially and `shards` is ignored.

use crate::config::{LinkLayerConfig, OverlayConfig};
use crate::error::CoreError;
use crate::health::HealthMonitor;
use crate::node::{LinkTarget, Node, NodeStats};
use crate::pseudonym::PseudonymService;
use crate::remedy::{RemedyCounts, RemedyEngine};
use crate::sim_exec::executor::ShardedRuntime;
use crate::sim_exec::state::NodeCell;
use crate::sim_exec::{record, Event, PendingExchange};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use veil_graph::Graph;
use veil_obs::{EventKind as Obs, Recorder};
use veil_sim::churn::{ChurnConfig, ChurnProcess};
use veil_sim::engine::Engine;
use veil_sim::fault::{EpisodeEffect, FaultConfig};
use veil_sim::rng::{derive_rng, Stream};
use veil_sim::SimTime;

pub use crate::sim_exec::{MessageKind, MessageRecord};

/// A running overlay simulation over a fixed trust graph.
///
/// # Examples
///
/// ```
/// use veil_core::config::OverlayConfig;
/// use veil_core::simulation::Simulation;
/// use veil_graph::generators;
/// use veil_sim::churn::ChurnConfig;
/// use veil_sim::rng::{derive_rng, Stream};
///
/// # fn main() -> Result<(), veil_core::error::CoreError> {
/// let mut rng = derive_rng(1, Stream::Topology);
/// let trust = generators::social_graph(50, 3, &mut rng).unwrap();
/// let churn = ChurnConfig::from_availability(1.0, 30.0);
/// let mut sim = Simulation::new(trust, OverlayConfig::default(), churn, 1)?;
/// sim.run_until(10.0);
/// assert_eq!(sim.online_count(), 50);
/// # Ok(())
/// # }
/// ```
pub struct Simulation {
    pub(crate) trust: Graph,
    pub(crate) cfg: OverlayConfig,
    pub(crate) churn_cfg: ChurnConfig,
    /// The sequential executor's global engine (empty in sharded mode,
    /// where each shard owns its own).
    pub(crate) engine: Engine<Event>,
    /// All per-node state, one contiguous cell per trust-graph vertex.
    pub(crate) cells: Vec<NodeCell>,
    pub(crate) svc: PseudonymService,
    pub(crate) current_time: SimTime,
    pub(crate) message_log: Option<Vec<MessageRecord>>,
    /// The fault model when the non-trivial faulty link layer is active;
    /// `None` runs the ideal code path (bit-identical to the paper setup).
    pub(crate) fault: Option<FaultConfig>,
    /// One-way latency of the ideal code path: `cfg.link_latency`, or the
    /// constant latency of a trivial faulty layer.
    pub(crate) effective_latency: f64,
    pub(crate) fault_rng: StdRng,
    /// In-flight faulty-link exchanges keyed by exchange id (sequential
    /// executor; shards keep their own maps). Only ever accessed by key,
    /// so iteration order can never leak into results.
    pub(crate) pending: HashMap<u64, PendingExchange>,
    pub(crate) next_exchange: u64,
    /// The master seed, kept for the sharded executor's stateless
    /// per-message RNG derivation.
    pub(crate) master_seed: u64,
    /// The sharded runtime when `cfg.shards` is set *and* the event graph
    /// has lookahead (fault model or positive latency); `None` runs the
    /// sequential executor.
    pub(crate) sharded: Option<ShardedRuntime>,
    /// Observability sink; disabled by default (a single branch per hook)
    /// and never a source of randomness, so enabling it cannot perturb the
    /// simulation.
    pub(crate) recorder: Recorder,
    /// Rolling-window degradation detectors over the event stream; present
    /// only when [`OverlayConfig::health`] is enabled. The monitor itself is
    /// read-only — its outputs are window-boundary alert records (plus
    /// `HealthAlert` events and `health.*` gauges when a recorder is
    /// attached); only the remediation engine ever turns them into state
    /// changes.
    pub(crate) health: Option<HealthMonitor>,
    /// The self-healing reaction engine; present only when
    /// [`OverlayConfig::remedy`] is enabled (which validation ties to the
    /// health monitor being on). `None` means alerts stay purely
    /// observational — the byte-identical default.
    pub(crate) remedy: Option<RemedyEngine>,
}

impl Simulation {
    /// Builds a simulation: one protocol node per trust-graph vertex, churn
    /// processes initialized per `churn_cfg`, and — for nodes online at
    /// time zero — pseudonyms created simultaneously at the start (the
    /// paper's start-up condition).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration fails validation or the trust
    /// graph is empty.
    pub fn new(
        trust: Graph,
        cfg: OverlayConfig,
        churn_cfg: ChurnConfig,
        master_seed: u64,
    ) -> Result<Self, CoreError> {
        cfg.validate()?;
        let n = trust.node_count();
        if n == 0 {
            return Err(CoreError::InvalidTrustGraph {
                reason: "trust graph has no nodes".into(),
            });
        }
        // The faulty link layer only takes over when it actually injects
        // something; a trivial fault model routes through the ideal code
        // path (with its constant latency), which keeps zero-fault runs
        // byte-identical to the paper setup. The collapse is pure, so it
        // can run first to pick the executor.
        let (fault, effective_latency) = match &cfg.link {
            LinkLayerConfig::Ideal => (None, cfg.link_latency),
            LinkLayerConfig::Faulty(fc) if fc.is_trivial() => (None, fc.latency.mean()),
            LinkLayerConfig::Faulty(fc) => (Some(fc.clone()), 0.0),
        };
        // Sharding needs lookahead: the zero-latency ideal path exchanges
        // synchronously and stays sequential whatever `shards` says.
        let use_sharded = cfg.shards.is_some() && (fault.is_some() || effective_latency > 0.0);
        let mut sharded = use_sharded.then(|| {
            let s = cfg.shards.expect("checked above").min(n);
            ShardedRuntime::new(n, s, master_seed)
        });
        let mut engine = Engine::new();
        let mut cells = Vec::with_capacity(n);
        let mut svc = PseudonymService::new(master_seed);
        let mut sched_rng = derive_rng(master_seed, Stream::Scheduler);
        let recorder = veil_obs::global();
        let mut health = HealthMonitor::maybe_new(&cfg.health, &recorder, n, 0.0);
        let remedy = RemedyEngine::maybe_new(&cfg.remedy, n);

        for v in 0..n {
            let trusted: Vec<u32> = trust.neighbors(v).to_vec();
            let mut proto_rng = derive_rng(master_seed, Stream::Protocol(v as u32));
            let mut churn_rng = derive_rng(master_seed, Stream::Churn(v as u32));
            let mut node = Node::new(v as u32, trusted, &cfg, &mut proto_rng);
            let (process, first_transition) = ChurnProcess::new(&churn_cfg, &mut churn_rng);
            if process.is_online() {
                // All initially online nodes mint pseudonyms at t = 0,
                // which produces the synchronized-expiry transient the
                // paper observes in Figure 9. (The adaptive lifetime policy
                // has no availability observations yet and falls back to
                // the global lifetime here.)
                match &mut sharded {
                    Some(rt) => node.renew_pseudonym(
                        &mut rt.shard_of_mut(v).minter,
                        SimTime::ZERO,
                        cfg.pseudonym_lifetime,
                    ),
                    None => node.renew_pseudonym(&mut svc, SimTime::ZERO, cfg.pseudonym_lifetime),
                };
                record(&recorder, &mut health, 0.0, Some(v as u32), || {
                    Obs::PseudonymMinted {
                        lifetime: cfg.pseudonym_lifetime,
                    }
                });
            }
            if let Some(delay) = first_transition {
                let ev = Event::Churn {
                    node: v as u32,
                    generation: 0,
                };
                match &mut sharded {
                    Some(rt) => rt
                        .shard_of_mut(v)
                        .engine
                        .schedule_at(SimTime::new(delay), ev),
                    None => engine.schedule_at(SimTime::new(delay), ev),
                }
            }
            // Shuffle timers are desynchronised with a random phase in
            // [0, 1) shuffle periods; they keep firing while the node is
            // offline (the handler no-ops), matching the "rejoining node
            // resumes where it left off" semantics.
            let phase: f64 = sched_rng.gen_range(0.0..1.0);
            let ev = Event::Shuffle(v as u32);
            match &mut sharded {
                Some(rt) => rt
                    .shard_of_mut(v)
                    .engine
                    .schedule_at(SimTime::new(phase), ev),
                None => engine.schedule_at(SimTime::new(phase), ev),
            }
            cells.push(NodeCell::new(node, process, proto_rng, churn_rng));
        }

        if let Some(fault) = &fault {
            // Partition and crash episodes are pure message-time filters;
            // only blackouts need a simulation-side trigger. In sharded
            // mode every shard gets the trigger and handles its own
            // victims.
            for (i, ep) in fault.episodes.iter().enumerate() {
                if matches!(ep.effect, EpisodeEffect::Blackout { .. }) {
                    match &mut sharded {
                        Some(rt) => {
                            for shard in rt.shards.iter_mut() {
                                shard.engine.schedule_at(
                                    SimTime::new(ep.start),
                                    Event::EpisodeStart(i as u32),
                                );
                            }
                        }
                        None => engine
                            .schedule_at(SimTime::new(ep.start), Event::EpisodeStart(i as u32)),
                    }
                }
            }
        }

        Ok(Self {
            trust,
            cfg,
            churn_cfg,
            engine,
            cells,
            svc,
            current_time: SimTime::ZERO,
            message_log: None,
            fault,
            effective_latency,
            fault_rng: derive_rng(master_seed, Stream::Fault),
            pending: HashMap::new(),
            next_exchange: 1,
            master_seed,
            sharded,
            recorder,
            health,
            remedy,
        })
    }

    /// Replaces the observability sink (taken from [`veil_obs::global`] at
    /// construction). Pass [`Recorder::disabled`] to switch recording off.
    ///
    /// The health monitor follows the recorder: it is rebuilt against the
    /// new sink (when [`OverlayConfig::health`] is enabled) with fresh
    /// window state starting at the current time. The remediation engine is
    /// *not* rebuilt — reaction counts and cooldown stamps survive, since
    /// healing must behave identically whether or not anyone is recording.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
        self.health = HealthMonitor::maybe_new(
            &self.cfg.health,
            &self.recorder,
            self.cells.len(),
            self.current_time.as_f64(),
        );
    }

    /// The active observability sink.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Whether the sharded executor is active (requires both
    /// [`OverlayConfig::shards`] and an event graph with lookahead).
    pub fn is_sharded(&self) -> bool {
        self.sharded.is_some()
    }

    /// Publishes end-of-run engine and protocol aggregates into the
    /// recorder as gauges and histograms (no-op when recording is off).
    /// Call after the run, before exporting the recorder's metrics.
    ///
    /// Aggregates read from simulation state use a `sim.stats_` prefix
    /// (without a `_total` suffix): in the Prometheus exposition only
    /// counters carry `_total`, and a gauge named `sim.X_total` would
    /// collide with the family the event-derived counter `sim.X` exports.
    pub fn publish_metrics(&self) {
        let r = &self.recorder;
        if !r.is_enabled() {
            return;
        }
        match &self.sharded {
            Some(rt) => {
                r.gauge("engine.events_processed", rt.events_processed() as f64);
                r.gauge("engine.queue_high_water", rt.queue_high_water() as f64);
                r.gauge("engine.pending_events", rt.pending_events() as f64);
            }
            None => {
                r.gauge("engine.events_processed", self.engine.processed() as f64);
                r.gauge(
                    "engine.queue_high_water",
                    self.engine.high_water_mark() as f64,
                );
                r.gauge("engine.pending_events", self.engine.pending() as f64);
            }
        }
        r.gauge("sim.nodes", self.cells.len() as f64);
        r.gauge("sim.online_nodes", self.online_count() as f64);
        r.gauge(
            "sim.stats_pseudonyms_minted",
            self.pseudonyms_minted() as f64,
        );
        r.gauge(
            "sim.stats_churn_transitions",
            self.cells
                .iter()
                .map(|c| c.churn.transitions())
                .sum::<u64>() as f64,
        );
        r.gauge("sim.stats_link_removals", self.total_link_removals() as f64);
        let mut agg = NodeStats::default();
        for v in 0..self.cells.len() {
            let s = self.node_stats(v);
            agg.requests_sent += s.requests_sent;
            agg.responses_sent += s.responses_sent;
            agg.dropped_requests += s.dropped_requests;
            agg.shuffle_retries += s.shuffle_retries;
            agg.shuffle_failures += s.shuffle_failures;
            agg.shuffles_suppressed += s.shuffles_suppressed;
            agg.online_time += s.online_time;
            r.observe("sim.node_links", self.cells[v].node.sampler.link_count());
        }
        r.gauge("sim.stats_requests_sent", agg.requests_sent as f64);
        r.gauge("sim.stats_responses_sent", agg.responses_sent as f64);
        r.gauge("sim.stats_dropped_requests", agg.dropped_requests as f64);
        r.gauge("sim.stats_shuffle_retries", agg.shuffle_retries as f64);
        r.gauge("sim.stats_shuffle_failures", agg.shuffle_failures as f64);
        r.gauge(
            "sim.stats_shuffles_suppressed",
            agg.shuffles_suppressed as f64,
        );
        r.gauge("sim.stats_online_time", agg.online_time);
        r.gauge(
            "health.monitor_enabled",
            if self.health.is_some() { 1.0 } else { 0.0 },
        );
        if let Some(h) = &self.health {
            r.gauge("health.alerts_emitted", h.alerts_emitted() as f64);
        }
        if let Some(rm) = &self.remedy {
            let c = rm.counts();
            r.gauge("remedy.backoffs", c.backoffs as f64);
            r.gauge("remedy.rebootstraps", c.rebootstraps as f64);
            r.gauge("remedy.throttles", c.throttles as f64);
        }
    }

    /// Starts recording every protocol message into an in-memory log
    /// (cleared of any previous contents). Used by the traffic-analysis
    /// experiments; off by default because long runs generate millions of
    /// messages.
    pub fn enable_message_log(&mut self) {
        self.message_log = Some(Vec::new());
    }

    /// Stops recording and discards the log.
    pub fn disable_message_log(&mut self) {
        self.message_log = None;
    }

    /// The recorded messages, if logging is enabled.
    pub fn message_log(&self) -> Option<&[MessageRecord]> {
        self.message_log.as_deref()
    }

    /// Drains the recorded messages, keeping logging enabled.
    pub fn take_message_log(&mut self) -> Vec<MessageRecord> {
        match &mut self.message_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// The trust graph the overlay was bootstrapped from.
    pub fn trust_graph(&self) -> &Graph {
        &self.trust
    }

    /// The overlay configuration.
    pub fn config(&self) -> &OverlayConfig {
        &self.cfg
    }

    /// The churn configuration.
    pub fn churn_config(&self) -> &ChurnConfig {
        &self.churn_cfg
    }

    /// Number of participants.
    pub fn node_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of `HealthAlert` events emitted so far, or `None` when the
    /// health monitor is off (disabled in config).
    pub fn health_alerts(&self) -> Option<u64> {
        self.health.as_ref().map(|h| h.alerts_emitted())
    }

    /// Per-reaction counts of remediation actions applied so far, or `None`
    /// when self-healing is off.
    pub fn remedy_counts(&self) -> Option<RemedyCounts> {
        self.remedy.as_ref().map(|rm| rm.counts())
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.current_time
    }

    /// Whether node `v` is currently online.
    pub fn is_online(&self, v: usize) -> bool {
        self.cells[v].churn.is_online()
    }

    /// Number of currently online nodes.
    pub fn online_count(&self) -> usize {
        self.cells.iter().filter(|c| c.churn.is_online()).count()
    }

    /// Online mask indexed by node.
    pub fn online_mask(&self) -> Vec<bool> {
        self.cells.iter().map(|c| c.churn.is_online()).collect()
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, v: usize) -> &Node {
        &self.cells[v].node
    }

    /// Mutable access to a node's protocol state.
    ///
    /// This is an instrumentation hook for the attack experiments in
    /// `veil-privacy` (e.g. an internal observer seeding a marked pseudonym
    /// into its own cache); it is not part of the protocol surface.
    pub fn node_mut(&mut self, v: usize) -> &mut Node {
        &mut self.cells[v].node
    }

    /// Mints a pseudonym owned by `owner` at the current time with the
    /// configured lifetime — used by attack experiments where an internal
    /// observer crafts a traceable pseudonym.
    pub fn mint_pseudonym(&mut self, owner: u32) -> crate::pseudonym::Pseudonym {
        let lifetime = self.cfg.pseudonym_lifetime;
        self.svc.mint(owner, self.current_time, lifetime)
    }

    /// Message/activity statistics of node `v`, with online time accounted
    /// up to the current instant.
    pub fn node_stats(&self, v: usize) -> NodeStats {
        let mut stats = self.cells[v].node.stats;
        if let Some(since) = self.cells[v].online_since {
            stats.online_time += self.current_time.since(since);
        }
        stats
    }

    /// Total pseudonyms minted so far.
    pub fn pseudonyms_minted(&self) -> u64 {
        match &self.sharded {
            Some(rt) => rt.pseudonyms_minted() + self.svc.minted(),
            None => self.svc.minted(),
        }
    }

    /// Cumulative pseudonym-link removals summed over all nodes — the raw
    /// counter behind the link-replacement metric of Figure 9.
    pub fn total_link_removals(&self) -> u64 {
        self.cells.iter().map(|c| c.node.sampler.removals()).sum()
    }

    /// Advances the simulation until simulated time `t` (in shuffle
    /// periods).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the current time.
    pub fn run_until(&mut self, t: f64) {
        let horizon = SimTime::new(t);
        assert!(
            horizon >= self.current_time,
            "cannot run backwards: {horizon} < {}",
            self.current_time
        );
        let _span = self
            .recorder
            .span_with("sim.run_until", || format!("until={t}"));
        if self.sharded.is_some() {
            self.run_until_sharded(horizon);
            return;
        }
        while let Some((now, event)) = self.engine.pop_before(horizon) {
            self.handle(now, event);
        }
        self.current_time = horizon;
    }

    /// Processes a single event, if any is pending. Returns its time.
    ///
    /// # Panics
    ///
    /// Panics on the sharded executor, which has no single global event
    /// order to step through — use [`Simulation::run_until`].
    pub fn step(&mut self) -> Option<SimTime> {
        assert!(
            self.sharded.is_none(),
            "step() requires the sequential executor; sharded runs advance window-by-window via run_until"
        );
        let (now, event) = self.engine.pop()?;
        self.handle(now, event);
        self.current_time = now;
        Some(now)
    }

    /// Injects a correlated failure: every node in `nodes` goes offline now
    /// and returns online exactly `duration` shuffle periods later
    /// (a regional blackout followed by a reconnect flash crowd). Natural
    /// churn resumes after the forced reconnect.
    ///
    /// Nodes already offline stay offline for (at least) the blackout; any
    /// pending natural transition is cancelled via a generation bump. A
    /// node already under a blackout that ends at or after the new one is
    /// left untouched — overlapping blackouts never schedule a duplicate
    /// wake event, and a shorter second blackout never truncates a longer
    /// outage already in force.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive or a node index is out of
    /// range.
    pub fn inject_blackout(&mut self, nodes: &[usize], duration: f64) {
        let now = self.current_time;
        self.inject_blackout_at(now, nodes, duration);
    }

    /// Materializes the current overlay as an undirected graph: the union
    /// of all trusted links and all valid pseudonym links (an edge `{a,b}`
    /// exists if either side holds a link to the other).
    ///
    /// Offline nodes keep their links — connectivity metrics mask them out
    /// separately ("overlay links to nodes that go offline are not
    /// removed"; they become operational again on rejoin).
    pub fn overlay_graph(&self) -> Graph {
        let now = self.current_time;
        let mut g = Graph::new(self.cells.len());
        for (a, b) in self.trust.edges() {
            g.add_edge(a, b).expect("trust edge in range");
        }
        for (v, cell) in self.cells.iter().enumerate() {
            for link in cell.node.links(now) {
                if let LinkTarget::Pseudonym(p) = link {
                    let owner = p.owner() as usize;
                    if owner != v {
                        let _ = g.add_edge(v, owner).expect("pseudonym edge in range");
                    }
                }
            }
        }
        g
    }

    /// The overlay restricted to trusted links only (the F2F baseline the
    /// paper compares against).
    pub fn trust_only_graph(&self) -> &Graph {
        &self.trust
    }

    /// The overlay restricted to *pseudonym* links only — the anonymous
    /// indirection layer the paper's privacy argument rests on, without the
    /// trusted-link substrate. This is the graph a correlated outage
    /// actually damages: trusted links are node-addressed and never expire,
    /// so [`Simulation::overlay_graph`] heals the moment power returns,
    /// while pseudonym edges must be re-gossiped (or re-bootstrapped by the
    /// remediation engine) before a node is reachable anonymously again.
    pub fn pseudonym_graph(&self) -> Graph {
        let now = self.current_time;
        let mut g = Graph::new(self.cells.len());
        for (v, cell) in self.cells.iter().enumerate() {
            for link in cell.node.links(now) {
                if let LinkTarget::Pseudonym(p) = link {
                    let owner = p.owner() as usize;
                    if owner != v {
                        let _ = g.add_edge(v, owner).expect("pseudonym edge in range");
                    }
                }
            }
        }
        g
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.cells.len())
            .field("now", &self.current_time)
            .field("online", &self.online_count())
            .finish()
    }
}
