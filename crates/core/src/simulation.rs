//! Event-driven simulation of the overlay-maintenance protocol.
//!
//! Binds the per-node protocol state ([`crate::node`]) to the discrete-event
//! engine and churn model of `veil-sim`, reproducing the paper's custom
//! event-based simulator (Section IV): time is measured in shuffle periods,
//! but events occur at arbitrary instants — every node's shuffle timer runs
//! at a random phase offset, and churn transitions are exponential.
//!
//! The anonymity and pseudonym services are *ideal*, as in the paper's
//! setup: a message over an overlay link is delivered instantly iff both
//! endpoints are online.

use crate::config::{LifetimePolicy, OverlayConfig};
use crate::error::CoreError;
use crate::node::{LinkTarget, Node, NodeStats};
use crate::protocol;
use crate::pseudonym::PseudonymService;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use veil_graph::Graph;
use veil_sim::churn::{ChurnConfig, ChurnProcess};
use veil_sim::engine::Engine;
use veil_sim::rng::{derive_rng, Stream};
use veil_sim::SimTime;

/// Events driving the overlay simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// A node's shuffle timer fired.
    Shuffle(u32),
    /// A node's churn process transitions (online ↔ offline). Stale
    /// generations (superseded by failure injection) are ignored.
    Churn {
        /// The transitioning node.
        node: u32,
        /// Generation stamp; must match the node's current generation.
        generation: u32,
    },
    /// An injected blackout ends and the node reconnects.
    BlackoutEnd {
        /// The recovering node.
        node: u32,
        /// Generation stamp of the blackout.
        generation: u32,
    },
    /// A shuffle request arrives after the configured link latency.
    DeliverRequest(Box<Delivery>),
    /// A shuffle response arrives after the configured link latency.
    DeliverResponse(Box<Delivery>),
}

/// An in-flight shuffle message (only used when `link_latency > 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Delivery {
    from: u32,
    to: u32,
    offer: Vec<crate::pseudonym::Pseudonym>,
    /// Cache entries the *initiator* offered — carried through the round
    /// trip so the Cyclon eviction preference applies when the response
    /// finally arrives.
    initiator_sent: Vec<crate::pseudonym::PseudonymId>,
    trusted_link: bool,
}

/// Classification of a logged protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageKind {
    /// A shuffle request from the initiator.
    Request,
    /// The matching shuffle response.
    Response,
    /// A request that could not be delivered (peer offline; only occurs
    /// with `skip_offline_peers = false`).
    RequestLost,
}

/// One protocol message, as an external observer positioned on the
/// communication infrastructure would record it (endpoints and timing; the
/// payload is encrypted). Used by the traffic-analysis experiments in
/// `veil-privacy`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageRecord {
    /// Send instant.
    pub time: SimTime,
    /// Sending node.
    pub from: u32,
    /// Receiving node (the pseudonym service's resolution; an observer sees
    /// only the anonymity-service entry point, but ground truth is logged
    /// for evaluating inference attacks).
    pub to: u32,
    /// Request or response.
    pub kind: MessageKind,
    /// Whether the message travelled over a trusted link.
    pub trusted_link: bool,
}

/// A running overlay simulation over a fixed trust graph.
///
/// # Examples
///
/// ```
/// use veil_core::config::OverlayConfig;
/// use veil_core::simulation::Simulation;
/// use veil_graph::generators;
/// use veil_sim::churn::ChurnConfig;
/// use veil_sim::rng::{derive_rng, Stream};
///
/// # fn main() -> Result<(), veil_core::error::CoreError> {
/// let mut rng = derive_rng(1, Stream::Topology);
/// let trust = generators::social_graph(50, 3, &mut rng).unwrap();
/// let churn = ChurnConfig::from_availability(1.0, 30.0);
/// let mut sim = Simulation::new(trust, OverlayConfig::default(), churn, 1)?;
/// sim.run_until(10.0);
/// assert_eq!(sim.online_count(), 50);
/// # Ok(())
/// # }
/// ```
pub struct Simulation {
    trust: Graph,
    cfg: OverlayConfig,
    churn_cfg: ChurnConfig,
    engine: Engine<Event>,
    nodes: Vec<Node>,
    churn: Vec<ChurnProcess>,
    online_since: Vec<Option<SimTime>>,
    offline_since: Vec<Option<SimTime>>,
    churn_generation: Vec<u32>,
    ewma_offline: Vec<Option<f64>>,
    stable_ticks: Vec<u32>,
    last_sampler_activity: Vec<u64>,
    node_rngs: Vec<StdRng>,
    churn_rngs: Vec<StdRng>,
    svc: PseudonymService,
    current_time: SimTime,
    message_log: Option<Vec<MessageRecord>>,
}

impl Simulation {
    /// Builds a simulation: one protocol node per trust-graph vertex, churn
    /// processes initialized per `churn_cfg`, and — for nodes online at
    /// time zero — pseudonyms created simultaneously at the start (the
    /// paper's start-up condition).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration fails validation or the trust
    /// graph is empty.
    pub fn new(
        trust: Graph,
        cfg: OverlayConfig,
        churn_cfg: ChurnConfig,
        master_seed: u64,
    ) -> Result<Self, CoreError> {
        cfg.validate()?;
        let n = trust.node_count();
        if n == 0 {
            return Err(CoreError::InvalidTrustGraph {
                reason: "trust graph has no nodes".into(),
            });
        }
        let mut engine = Engine::new();
        let mut nodes = Vec::with_capacity(n);
        let mut churn = Vec::with_capacity(n);
        let mut online_since = Vec::with_capacity(n);
        let mut offline_since = Vec::with_capacity(n);
        let mut node_rngs = Vec::with_capacity(n);
        let mut churn_rngs = Vec::with_capacity(n);
        let mut svc = PseudonymService::new(master_seed);
        let mut sched_rng = derive_rng(master_seed, Stream::Scheduler);

        for v in 0..n {
            let trusted: Vec<u32> = trust.neighbors(v).to_vec();
            let mut proto_rng = derive_rng(master_seed, Stream::Protocol(v as u32));
            let mut churn_rng = derive_rng(master_seed, Stream::Churn(v as u32));
            let mut node = Node::new(v as u32, trusted, &cfg, &mut proto_rng);
            let (process, first_transition) = ChurnProcess::new(&churn_cfg, &mut churn_rng);
            if process.is_online() {
                // All initially online nodes mint pseudonyms at t = 0,
                // which produces the synchronized-expiry transient the
                // paper observes in Figure 9. (The adaptive lifetime policy
                // has no availability observations yet and falls back to
                // the global lifetime here.)
                node.renew_pseudonym(&mut svc, SimTime::ZERO, cfg.pseudonym_lifetime);
                online_since.push(Some(SimTime::ZERO));
                offline_since.push(None);
            } else {
                online_since.push(None);
                offline_since.push(Some(SimTime::ZERO));
            }
            if let Some(delay) = first_transition {
                engine.schedule_at(
                    SimTime::new(delay),
                    Event::Churn {
                        node: v as u32,
                        generation: 0,
                    },
                );
            }
            // Shuffle timers are desynchronised with a random phase in
            // [0, 1) shuffle periods; they keep firing while the node is
            // offline (the handler no-ops), matching the "rejoining node
            // resumes where it left off" semantics.
            let phase: f64 = sched_rng.gen_range(0.0..1.0);
            engine.schedule_at(SimTime::new(phase), Event::Shuffle(v as u32));
            nodes.push(node);
            churn.push(process);
            node_rngs.push(proto_rng);
            churn_rngs.push(churn_rng);
        }

        Ok(Self {
            trust,
            cfg,
            churn_cfg,
            engine,
            nodes,
            churn,
            online_since,
            offline_since,
            churn_generation: vec![0; n],
            ewma_offline: vec![None; n],
            stable_ticks: vec![0; n],
            last_sampler_activity: vec![0; n],
            node_rngs,
            churn_rngs,
            svc,
            current_time: SimTime::ZERO,
            message_log: None,
        })
    }

    /// Starts recording every protocol message into an in-memory log
    /// (cleared of any previous contents). Used by the traffic-analysis
    /// experiments; off by default because long runs generate millions of
    /// messages.
    pub fn enable_message_log(&mut self) {
        self.message_log = Some(Vec::new());
    }

    /// Stops recording and discards the log.
    pub fn disable_message_log(&mut self) {
        self.message_log = None;
    }

    /// The recorded messages, if logging is enabled.
    pub fn message_log(&self) -> Option<&[MessageRecord]> {
        self.message_log.as_deref()
    }

    /// Drains the recorded messages, keeping logging enabled.
    pub fn take_message_log(&mut self) -> Vec<MessageRecord> {
        match &mut self.message_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    fn log_message(&mut self, record: MessageRecord) {
        if let Some(log) = &mut self.message_log {
            log.push(record);
        }
    }

    /// The lifetime node `v` would give a pseudonym minted right now, per
    /// the configured [`LifetimePolicy`].
    fn lifetime_for(&self, v: usize) -> Option<f64> {
        match self.cfg.lifetime_policy {
            LifetimePolicy::Global => self.cfg.pseudonym_lifetime,
            LifetimePolicy::Adaptive { multiplier, floor } => match self.ewma_offline[v] {
                Some(mean) => Some((multiplier * mean).max(floor)),
                None => self.cfg.pseudonym_lifetime,
            },
        }
    }

    /// The trust graph the overlay was bootstrapped from.
    pub fn trust_graph(&self) -> &Graph {
        &self.trust
    }

    /// The overlay configuration.
    pub fn config(&self) -> &OverlayConfig {
        &self.cfg
    }

    /// The churn configuration.
    pub fn churn_config(&self) -> &ChurnConfig {
        &self.churn_cfg
    }

    /// Number of participants.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.current_time
    }

    /// Whether node `v` is currently online.
    pub fn is_online(&self, v: usize) -> bool {
        self.churn[v].is_online()
    }

    /// Number of currently online nodes.
    pub fn online_count(&self) -> usize {
        self.churn.iter().filter(|c| c.is_online()).count()
    }

    /// Online mask indexed by node.
    pub fn online_mask(&self) -> Vec<bool> {
        self.churn.iter().map(|c| c.is_online()).collect()
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, v: usize) -> &Node {
        &self.nodes[v]
    }

    /// Mutable access to a node's protocol state.
    ///
    /// This is an instrumentation hook for the attack experiments in
    /// `veil-privacy` (e.g. an internal observer seeding a marked pseudonym
    /// into its own cache); it is not part of the protocol surface.
    pub fn node_mut(&mut self, v: usize) -> &mut Node {
        &mut self.nodes[v]
    }

    /// Mints a pseudonym owned by `owner` at the current time with the
    /// configured lifetime — used by attack experiments where an internal
    /// observer crafts a traceable pseudonym.
    pub fn mint_pseudonym(&mut self, owner: u32) -> crate::pseudonym::Pseudonym {
        let lifetime = self.cfg.pseudonym_lifetime;
        self.svc.mint(owner, self.current_time, lifetime)
    }

    /// Message/activity statistics of node `v`, with online time accounted
    /// up to the current instant.
    pub fn node_stats(&self, v: usize) -> NodeStats {
        let mut stats = self.nodes[v].stats;
        if let Some(since) = self.online_since[v] {
            stats.online_time += self.current_time.since(since);
        }
        stats
    }

    /// Total pseudonyms minted so far.
    pub fn pseudonyms_minted(&self) -> u64 {
        self.svc.minted()
    }

    /// Cumulative pseudonym-link removals summed over all nodes — the raw
    /// counter behind the link-replacement metric of Figure 9.
    pub fn total_link_removals(&self) -> u64 {
        self.nodes.iter().map(|n| n.sampler.removals()).sum()
    }

    /// Advances the simulation until simulated time `t` (in shuffle
    /// periods).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the current time.
    pub fn run_until(&mut self, t: f64) {
        let horizon = SimTime::new(t);
        assert!(
            horizon >= self.current_time,
            "cannot run backwards: {horizon} < {}",
            self.current_time
        );
        while let Some((now, event)) = self.engine.pop_before(horizon) {
            self.handle(now, event);
        }
        self.current_time = horizon;
    }

    /// Processes a single event, if any is pending. Returns its time.
    pub fn step(&mut self) -> Option<SimTime> {
        let (now, event) = self.engine.pop()?;
        self.handle(now, event);
        self.current_time = now;
        Some(now)
    }

    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Shuffle(v) => self.handle_shuffle(now, v as usize),
            Event::Churn { node, generation } => {
                self.handle_churn(now, node as usize, generation)
            }
            Event::BlackoutEnd { node, generation } => {
                self.handle_blackout_end(now, node as usize, generation)
            }
            Event::DeliverRequest(d) => self.handle_request_delivery(now, *d),
            Event::DeliverResponse(d) => self.handle_response_delivery(now, *d),
        }
    }

    fn handle_shuffle(&mut self, now: SimTime, v: usize) {
        // The timer always re-arms; offline nodes simply skip the round.
        self.engine.schedule_at(now + 1.0, Event::Shuffle(v as u32));
        if !self.churn[v].is_online() {
            return;
        }
        // Lazy renewal: a node notices its own pseudonym expired at the
        // next timer tick and mints a fresh one.
        if self.nodes[v].needs_pseudonym(now) {
            let lifetime = self.lifetime_for(v);
            self.nodes[v].renew_pseudonym(&mut self.svc, now, lifetime);
        }
        self.nodes[v].purge_expired(now);
        // Adaptive shuffle suppression: once the link set has been stable
        // for the configured number of periods, skip initiating (responses
        // still happen, and any change re-arms the node).
        let activity = self.nodes[v].sampler.additions() + self.nodes[v].sampler.removals();
        if activity == self.last_sampler_activity[v] {
            self.stable_ticks[v] = self.stable_ticks[v].saturating_add(1);
        } else {
            self.stable_ticks[v] = 0;
        }
        self.last_sampler_activity[v] = activity;
        if let Some(k) = self.cfg.stop_after_stable_periods {
            if self.stable_ticks[v] >= k {
                self.nodes[v].stats.shuffles_suppressed += 1;
                return;
            }
        }
        let target = if self.cfg.skip_offline_peers {
            // The ideal link layer reports deliverability, so the node
            // shuffles with a uniformly random *online* link (this is what
            // makes the paper's request/response count come out at exactly
            // two messages per period).
            let links = self.nodes[v].links(now);
            let online: Vec<_> = links
                .into_iter()
                .filter(|l| self.churn[l.resolve() as usize].is_online())
                .collect();
            if online.is_empty() {
                None
            } else {
                let rng = &mut self.node_rngs[v];
                Some(online[rng.gen_range(0..online.len())])
            }
        } else {
            let rng = &mut self.node_rngs[v];
            self.nodes[v].pick_link(now, rng)
        };
        let Some(target) = target else {
            return;
        };
        let dest = target.resolve() as usize;
        debug_assert_ne!(dest, v, "nodes never link to themselves");
        let trusted_link = target.is_trusted();
        if !self.churn[dest].is_online() {
            // Request sent into the anonymity service but never delivered.
            self.nodes[v].stats.requests_sent += 1;
            self.nodes[v].stats.requests_lost += 1;
            self.log_message(MessageRecord {
                time: now,
                from: v as u32,
                to: dest as u32,
                kind: MessageKind::RequestLost,
                trusted_link,
            });
            return;
        }
        if self.cfg.link_latency > 0.0 {
            // Asynchronous exchange: build the request offer now, deliver
            // it after the link latency; the peer may churn in transit.
            let offer = {
                let rng = &mut self.node_rngs[v];
                protocol::build_offer(&mut self.nodes[v], self.cfg.shuffle_length, now, rng)
            };
            self.nodes[v].stats.requests_sent += 1;
            self.log_message(MessageRecord {
                time: now,
                from: v as u32,
                to: dest as u32,
                kind: MessageKind::Request,
                trusted_link,
            });
            self.engine.schedule_in(
                self.cfg.link_latency,
                Event::DeliverRequest(Box::new(Delivery {
                    from: v as u32,
                    to: dest as u32,
                    offer: offer.entries,
                    initiator_sent: offer.sent_from_cache,
                    trusted_link,
                })),
            );
            return;
        }
        // Zero latency: run the exchange over the ideal link synchronously.
        let mut rng = self.node_rngs[v].clone();
        let (initiator, responder) = two_mut(&mut self.nodes, v, dest);
        protocol::execute_shuffle(initiator, responder, self.cfg.shuffle_length, now, &mut rng);
        self.node_rngs[v] = rng;
        self.log_message(MessageRecord {
            time: now,
            from: v as u32,
            to: dest as u32,
            kind: MessageKind::Request,
            trusted_link,
        });
        self.log_message(MessageRecord {
            time: now,
            from: dest as u32,
            to: v as u32,
            kind: MessageKind::Response,
            trusted_link,
        });
    }

    /// A delayed shuffle request reaches the responder.
    fn handle_request_delivery(&mut self, now: SimTime, delivery: Delivery) {
        let responder = delivery.to as usize;
        if !self.churn[responder].is_online() {
            // Lost in transit: the responder churned out. The initiator's
            // request produces no response.
            self.nodes[delivery.from as usize].stats.requests_lost += 1;
            return;
        }
        // Mirror the synchronous order: build the response offer before
        // absorbing the request (Cyclon semantics).
        let response = {
            let rng = &mut self.node_rngs[responder];
            protocol::build_offer(&mut self.nodes[responder], self.cfg.shuffle_length, now, rng)
        };
        {
            let rng = &mut self.node_rngs[responder];
            protocol::receive_offer(
                &mut self.nodes[responder],
                &delivery.offer,
                &response.sent_from_cache,
                now,
                rng,
            );
        }
        self.nodes[responder].stats.responses_sent += 1;
        self.log_message(MessageRecord {
            time: now,
            from: delivery.to,
            to: delivery.from,
            kind: MessageKind::Response,
            trusted_link: delivery.trusted_link,
        });
        self.engine.schedule_in(
            self.cfg.link_latency,
            Event::DeliverResponse(Box::new(Delivery {
                from: delivery.to,
                to: delivery.from,
                offer: response.entries,
                initiator_sent: delivery.initiator_sent,
                trusted_link: delivery.trusted_link,
            })),
        );
    }

    /// A delayed shuffle response reaches the original initiator.
    fn handle_response_delivery(&mut self, now: SimTime, delivery: Delivery) {
        let initiator = delivery.to as usize;
        if !self.churn[initiator].is_online() {
            return; // response lost; the initiator churned out
        }
        let rng = &mut self.node_rngs[initiator];
        protocol::receive_offer(
            &mut self.nodes[initiator],
            &delivery.offer,
            &delivery.initiator_sent,
            now,
            rng,
        );
    }

    fn handle_churn(&mut self, now: SimTime, v: usize, generation: u32) {
        if generation != self.churn_generation[v] {
            return; // superseded by failure injection
        }
        let next = self.churn[v].transition(&mut self.churn_rngs[v]);
        if let Some(delay) = next {
            self.engine.schedule_at(
                now + delay,
                Event::Churn {
                    node: v as u32,
                    generation,
                },
            );
        }
        if self.churn[v].is_online() {
            self.rejoin(now, v);
        } else {
            self.depart(now, v);
        }
    }

    /// Bookkeeping for a node coming online: session tracking, adaptive
    /// lifetime observation, expired-state purge and pseudonym renewal.
    fn rejoin(&mut self, now: SimTime, v: usize) {
        self.online_since[v] = Some(now);
        if let Some(since) = self.offline_since[v].take() {
            // Feed the adaptive lifetime policy with the node's own
            // observed offline duration (EWMA, weight 0.2 on the new
            // observation).
            let duration = now.since(since);
            self.ewma_offline[v] = Some(match self.ewma_offline[v] {
                Some(prev) => 0.8 * prev + 0.2 * duration,
                None => duration,
            });
        }
        // Rejoining is a state change: re-arm suppressed shuffling.
        self.stable_ticks[v] = 0;
        self.nodes[v].purge_expired(now);
        if self.nodes[v].needs_pseudonym(now) {
            let lifetime = self.lifetime_for(v);
            self.nodes[v].renew_pseudonym(&mut self.svc, now, lifetime);
        }
    }

    /// Bookkeeping for a node going offline: close the online session.
    fn depart(&mut self, now: SimTime, v: usize) {
        self.offline_since[v] = Some(now);
        if let Some(since) = self.online_since[v].take() {
            self.nodes[v].stats.online_time += now.since(since);
        }
    }

    /// Injects a correlated failure: every node in `nodes` goes offline now
    /// and returns online exactly `duration` shuffle periods later
    /// (a regional blackout followed by a reconnect flash crowd). Natural
    /// churn resumes after the forced reconnect.
    ///
    /// Nodes already offline stay offline for (at least) the blackout; any
    /// pending natural transition is cancelled via a generation bump.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive or a node index is out of
    /// range.
    pub fn inject_blackout(&mut self, nodes: &[usize], duration: f64) {
        assert!(duration > 0.0, "blackout duration must be positive");
        let now = self.current_time;
        for &v in nodes {
            assert!(v < self.nodes.len(), "node {v} out of range");
            self.churn_generation[v] = self.churn_generation[v].wrapping_add(1);
            if self.churn[v].is_online() {
                self.depart(now, v);
            }
            // Residence sample is discarded: the blackout end is forced.
            let _ = self.churn[v]
                .force_state(veil_sim::churn::NodeState::Offline, &mut self.churn_rngs[v]);
            self.engine.schedule_at(
                now + duration,
                Event::BlackoutEnd {
                    node: v as u32,
                    generation: self.churn_generation[v],
                },
            );
        }
    }

    fn handle_blackout_end(&mut self, now: SimTime, v: usize, generation: u32) {
        if generation != self.churn_generation[v] {
            return; // a newer blackout supersedes this recovery
        }
        let next = self.churn[v]
            .force_state(veil_sim::churn::NodeState::Online, &mut self.churn_rngs[v]);
        if let Some(delay) = next {
            self.engine.schedule_at(
                now + delay,
                Event::Churn {
                    node: v as u32,
                    generation,
                },
            );
        }
        self.rejoin(now, v);
    }

    /// Materializes the current overlay as an undirected graph: the union
    /// of all trusted links and all valid pseudonym links (an edge `{a,b}`
    /// exists if either side holds a link to the other).
    ///
    /// Offline nodes keep their links — connectivity metrics mask them out
    /// separately ("overlay links to nodes that go offline are not
    /// removed"; they become operational again on rejoin).
    pub fn overlay_graph(&self) -> Graph {
        let now = self.current_time;
        let mut g = Graph::new(self.nodes.len());
        for (a, b) in self.trust.edges() {
            g.add_edge(a, b).expect("trust edge in range");
        }
        for (v, node) in self.nodes.iter().enumerate() {
            for link in node.links(now) {
                if let LinkTarget::Pseudonym(p) = link {
                    let owner = p.owner() as usize;
                    if owner != v {
                        let _ = g.add_edge(v, owner).expect("pseudonym edge in range");
                    }
                }
            }
        }
        g
    }

    /// The overlay restricted to trusted links only (the F2F baseline the
    /// paper compares against).
    pub fn trust_only_graph(&self) -> &Graph {
        &self.trust
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("now", &self.current_time)
            .field("online", &self.online_count())
            .finish()
    }
}

/// Mutable references to two distinct vector elements.
fn two_mut<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b, "indices must differ");
    if a < b {
        let (left, right) = v.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = v.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veil_graph::generators;
    use veil_graph::metrics as gm;

    fn trust_graph(n: usize, seed: u64) -> Graph {
        let mut rng = derive_rng(seed, Stream::Topology);
        generators::social_graph(n, 3, &mut rng).unwrap()
    }

    fn small_sim(alpha: f64, seed: u64) -> Simulation {
        let trust = trust_graph(60, seed);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 12,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(alpha, 10.0);
        Simulation::new(trust, cfg, churn, seed).unwrap()
    }

    #[test]
    fn rejects_empty_trust_graph() {
        let churn = ChurnConfig::from_availability(1.0, 30.0);
        let err = Simulation::new(Graph::new(0), OverlayConfig::default(), churn, 1).unwrap_err();
        assert!(matches!(err, CoreError::InvalidTrustGraph { .. }));
    }

    #[test]
    fn rejects_invalid_config() {
        let churn = ChurnConfig::from_availability(1.0, 30.0);
        let cfg = OverlayConfig {
            cache_size: 0,
            ..OverlayConfig::default()
        };
        assert!(Simulation::new(Graph::new(5), cfg, churn, 1).is_err());
    }

    #[test]
    fn all_online_without_churn() {
        let mut sim = small_sim(1.0, 1);
        assert_eq!(sim.online_count(), 60);
        sim.run_until(5.0);
        assert_eq!(sim.online_count(), 60, "no churn at availability 1");
    }

    #[test]
    fn overlay_contains_trust_edges() {
        let mut sim = small_sim(1.0, 2);
        sim.run_until(3.0);
        let overlay = sim.overlay_graph();
        for (a, b) in sim.trust_graph().edges() {
            assert!(overlay.has_edge(a, b));
        }
    }

    #[test]
    fn overlay_grows_pseudonym_links() {
        let mut sim = small_sim(1.0, 3);
        let trust_edges = sim.trust_graph().edge_count();
        sim.run_until(30.0);
        let overlay = sim.overlay_graph();
        assert!(
            overlay.edge_count() > trust_edges + 60,
            "overlay should gain many pseudonym links: {} vs {}",
            overlay.edge_count(),
            trust_edges
        );
    }

    #[test]
    fn overlay_approaches_target_degree() {
        let mut sim = small_sim(1.0, 4);
        sim.run_until(50.0);
        // Average pseudonym link count should approach the slot budgets.
        let mean_links: f64 = (0..sim.node_count())
            .map(|v| sim.node(v).sampler.link_count() as f64)
            .sum::<f64>()
            / sim.node_count() as f64;
        let mean_slots: f64 = (0..sim.node_count())
            .map(|v| sim.node(v).sampler.slot_count() as f64)
            .sum::<f64>()
            / sim.node_count() as f64;
        assert!(
            mean_links > 0.5 * mean_slots.min(59.0),
            "links {mean_links:.1} vs slots {mean_slots:.1}"
        );
    }

    #[test]
    fn churn_changes_online_set() {
        let mut sim = small_sim(0.5, 5);
        sim.run_until(50.0);
        let online = sim.online_count();
        assert!(online > 10 && online < 50, "online {online} of 60");
    }

    #[test]
    fn online_time_accounting_sums_to_about_alpha() {
        let mut sim = small_sim(0.5, 6);
        sim.run_until(200.0);
        let total_online: f64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).online_time)
            .sum();
        let expected = 0.5 * 200.0 * sim.node_count() as f64;
        assert!(
            (total_online - expected).abs() < 0.15 * expected,
            "online time {total_online} vs expected {expected}"
        );
    }

    #[test]
    fn messages_average_about_two_per_period() {
        // Paper: "the average number of messages sent per shuffle period
        // per node across the whole overlay is 2" (no churn case).
        let mut sim = small_sim(1.0, 7);
        sim.run_until(60.0);
        let mean_rate: f64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).messages_per_period())
            .sum::<f64>()
            / sim.node_count() as f64;
        assert!(
            (mean_rate - 2.0).abs() < 0.25,
            "mean message rate {mean_rate}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = small_sim(0.5, 8);
        let mut b = small_sim(0.5, 8);
        a.run_until(40.0);
        b.run_until(40.0);
        assert_eq!(a.online_mask(), b.online_mask());
        assert_eq!(a.overlay_graph(), b.overlay_graph());
        assert_eq!(a.pseudonyms_minted(), b.pseudonyms_minted());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = small_sim(0.5, 9);
        let mut b = small_sim(0.5, 10);
        a.run_until(40.0);
        b.run_until(40.0);
        assert_ne!(a.overlay_graph(), b.overlay_graph());
    }

    #[test]
    fn expiry_drives_renewal() {
        let trust = trust_graph(30, 11);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 10,
            pseudonym_lifetime: Some(5.0),
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(1.0, 10.0);
        let mut sim = Simulation::new(trust, cfg, churn, 11).unwrap();
        sim.run_until(26.0);
        // Lifetime 5sp over 26sp: every node should have minted ~5 times.
        assert!(
            sim.pseudonyms_minted() >= 4 * 30,
            "minted {}",
            sim.pseudonyms_minted()
        );
        assert!(sim.total_link_removals() > 0, "expiry must remove links");
    }

    #[test]
    fn no_expiry_no_removals_after_convergence() {
        let trust = trust_graph(30, 12);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 10,
            pseudonym_lifetime: None,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(1.0, 10.0);
        let mut sim = Simulation::new(trust, cfg, churn, 12).unwrap();
        sim.run_until(150.0);
        let at_150 = sim.total_link_removals();
        sim.run_until(200.0);
        let at_200 = sim.total_link_removals();
        // Convergence: the min-wise process settles; replacements dry up.
        assert!(
            at_200 - at_150 < 30,
            "replacements kept happening: {at_150} -> {at_200}"
        );
    }

    #[test]
    fn overlay_beats_trust_graph_under_churn() {
        let mut sim = small_sim(0.4, 13);
        sim.run_until(120.0);
        let online = sim.online_mask();
        let overlay = sim.overlay_graph();
        let frac_overlay = gm::fraction_disconnected(&overlay, &online);
        let frac_trust = gm::fraction_disconnected(sim.trust_graph(), &online);
        assert!(
            frac_overlay < frac_trust,
            "overlay {frac_overlay} should beat trust {frac_trust}"
        );
    }

    #[test]
    fn two_mut_returns_both_orders() {
        let mut v = vec![1, 2, 3];
        {
            let (a, b) = two_mut(&mut v, 0, 2);
            assert_eq!((*a, *b), (1, 3));
        }
        let (a, b) = two_mut(&mut v, 2, 0);
        assert_eq!((*a, *b), (3, 1));
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn two_mut_rejects_same_index() {
        let mut v = vec![1, 2];
        two_mut(&mut v, 1, 1);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn run_until_rejects_past() {
        let mut sim = small_sim(1.0, 14);
        sim.run_until(5.0);
        sim.run_until(4.0);
    }

    #[test]
    fn adaptive_stop_suppresses_shuffles_after_convergence() {
        let trust = trust_graph(40, 15);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 10,
            pseudonym_lifetime: None, // stable regime: links converge
            stop_after_stable_periods: Some(5),
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(1.0, 10.0);
        let mut sim = Simulation::new(trust.clone(), cfg, churn, 15).unwrap();
        sim.run_until(300.0);
        let suppressed: u64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).shuffles_suppressed)
            .sum();
        assert!(suppressed > 0, "stability detector never fired");
        // And the overlay is still healthy.
        let frac =
            veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &sim.online_mask());
        assert_eq!(frac, 0.0);
        // Late-window message traffic collapses relative to the always-on
        // configuration.
        let always_cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 10,
            pseudonym_lifetime: None,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(1.0, 10.0);
        let mut always = Simulation::new(trust, always_cfg, churn, 15).unwrap();
        always.run_until(300.0);
        let requests = |sim: &Simulation| -> u64 {
            (0..sim.node_count())
                .map(|v| sim.node_stats(v).requests_sent)
                .sum()
        };
        assert!(
            requests(&sim) < requests(&always) / 2,
            "suppression should at least halve request traffic: {} vs {}",
            requests(&sim),
            requests(&always)
        );
    }

    #[test]
    fn adaptive_lifetime_tracks_offline_durations() {
        use crate::config::LifetimePolicy;
        let trust = trust_graph(40, 16);
        let cfg = OverlayConfig {
            cache_size: 50,
            shuffle_length: 8,
            target_links: 10,
            pseudonym_lifetime: Some(90.0),
            lifetime_policy: LifetimePolicy::Adaptive {
                multiplier: 3.0,
                floor: 5.0,
            },
            ..OverlayConfig::default()
        };
        // Mean offline time 10sp: adaptive lifetimes should settle near
        // 3 x 10 = 30sp, well below the 90sp global fallback.
        let churn = ChurnConfig::from_availability(0.5, 10.0);
        let mut sim = Simulation::new(trust, cfg, churn, 16).unwrap();
        sim.run_until(400.0);
        // Inspect the actual lifetimes of current pseudonyms.
        let now = sim.now();
        let mut lifetimes = Vec::new();
        for v in 0..sim.node_count() {
            if let Some(p) = sim.node(v).own_pseudonym(now) {
                if let Some(expiry) = p.expires() {
                    // Upper bound on the minted lifetime.
                    lifetimes.push(expiry - now);
                }
            }
        }
        assert!(!lifetimes.is_empty());
        let mean_remaining: f64 = lifetimes.iter().sum::<f64>() / lifetimes.len() as f64;
        // Remaining lifetime of an adaptive (~30sp) pseudonym is well below
        // the global 90sp value.
        assert!(
            mean_remaining < 60.0,
            "adaptive lifetimes look global: mean remaining {mean_remaining}"
        );
    }

    #[test]
    fn message_log_records_request_response_pairs() {
        let mut sim = small_sim(1.0, 17);
        sim.enable_message_log();
        sim.run_until(5.0);
        let log = sim.message_log().unwrap();
        assert!(!log.is_empty());
        let requests = log
            .iter()
            .filter(|m| m.kind == MessageKind::Request)
            .count();
        let responses = log
            .iter()
            .filter(|m| m.kind == MessageKind::Response)
            .count();
        assert_eq!(requests, responses, "every request gets a response");
        for m in log {
            assert_ne!(m.from, m.to);
        }
        // Draining works and keeps logging active.
        let drained = sim.take_message_log();
        assert_eq!(drained.len(), requests + responses);
        sim.run_until(6.0);
        assert!(!sim.message_log().unwrap().is_empty());
        sim.disable_message_log();
        assert!(sim.message_log().is_none());
    }

    #[test]
    fn latency_one_round_trip_still_exchanges() {
        let trust = trust_graph(30, 19);
        let cfg = OverlayConfig {
            cache_size: 40,
            shuffle_length: 6,
            target_links: 8,
            link_latency: 0.2,
            ..OverlayConfig::default()
        };
        let churn = ChurnConfig::from_availability(1.0, 10.0);
        let mut sim = Simulation::new(trust, cfg, churn, 19).unwrap();
        sim.run_until(30.0);
        // Gossip still works: pseudonym links accumulate.
        let total_links: usize = (0..sim.node_count())
            .map(|v| sim.node(v).sampler.link_count())
            .sum();
        assert!(total_links > 30, "links {total_links}");
        // Request/response accounting still pairs up (no churn => no loss).
        let req: u64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).requests_sent)
            .sum();
        let resp: u64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).responses_sent)
            .sum();
        assert!(req > 0);
        // In-flight messages at the horizon make resp lag req slightly.
        assert!(resp <= req && req - resp <= sim.node_count() as u64);
    }

    #[test]
    fn latency_with_churn_loses_in_transit_messages() {
        let trust = trust_graph(40, 20);
        let cfg = OverlayConfig {
            cache_size: 40,
            shuffle_length: 6,
            target_links: 8,
            link_latency: 0.5,
            ..OverlayConfig::default()
        };
        // Short sessions: transit losses become likely.
        let churn = ChurnConfig::from_availability(0.5, 2.0);
        let mut sim = Simulation::new(trust, cfg, churn, 20).unwrap();
        sim.run_until(100.0);
        let lost: u64 = (0..sim.node_count())
            .map(|v| sim.node_stats(v).requests_lost)
            .sum();
        assert!(lost > 0, "in-transit churn must lose some requests");
    }

    #[test]
    fn moderate_latency_preserves_robustness() {
        // The paper's §III-E5 claim: slow mixes do not break maintenance.
        let trust = trust_graph(50, 21);
        let make = |latency: f64| {
            let cfg = OverlayConfig {
                cache_size: 50,
                shuffle_length: 8,
                target_links: 12,
                link_latency: latency,
                ..OverlayConfig::default()
            };
            let churn = ChurnConfig::from_availability(0.5, 10.0);
            let mut sim = Simulation::new(trust.clone(), cfg, churn, 21).unwrap();
            sim.run_until(120.0);
            veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &sim.online_mask())
        };
        let instant = make(0.0);
        let slow = make(1.0);
        assert!(
            slow <= instant + 0.15,
            "one-period latency should barely hurt: {slow} vs {instant}"
        );
    }

    #[test]
    fn blackout_forces_nodes_offline_and_back() {
        let mut sim = small_sim(1.0, 22);
        sim.run_until(10.0);
        assert_eq!(sim.online_count(), 60);
        let victims: Vec<usize> = (0..30).collect();
        sim.inject_blackout(&victims, 5.0);
        sim.run_until(12.0);
        assert_eq!(sim.online_count(), 30, "half the network is dark");
        for &v in &victims {
            assert!(!sim.is_online(v));
        }
        sim.run_until(16.0);
        assert_eq!(sim.online_count(), 60, "blackout over, everyone back");
        // Permanently-online nodes stay online afterwards (no spurious
        // churn events).
        sim.run_until(60.0);
        assert_eq!(sim.online_count(), 60);
    }

    #[test]
    fn blackout_during_churn_is_superseded_cleanly() {
        let mut sim = small_sim(0.5, 23);
        sim.run_until(20.0);
        let victims: Vec<usize> = (0..sim.node_count()).collect();
        sim.inject_blackout(&victims, 3.0);
        sim.run_until(21.0);
        assert_eq!(sim.online_count(), 0, "total blackout");
        sim.run_until(23.5);
        // Everyone reconnected at t = 23; natural churn has had half a
        // period to pull a few nodes back offline.
        assert!(
            sim.online_count() > sim.node_count() * 9 / 10,
            "reconnect flash crowd: {} online",
            sim.online_count()
        );
        // Natural churn resumes: some nodes drift offline again.
        sim.run_until(60.0);
        let online = sim.online_count();
        assert!(online < sim.node_count(), "churn must resume, online={online}");
        assert!(online > 0);
    }

    #[test]
    fn overlay_survives_blackout_better_than_trust_graph() {
        let mut sim = small_sim(1.0, 24);
        sim.run_until(40.0); // converge
        // Blackout a random-ish half: every even node.
        let victims: Vec<usize> = (0..sim.node_count()).filter(|v| v % 2 == 0).collect();
        sim.inject_blackout(&victims, 10.0);
        sim.run_until(41.0);
        let online = sim.online_mask();
        let overlay_frac =
            veil_graph::metrics::fraction_disconnected(&sim.overlay_graph(), &online);
        let trust_frac =
            veil_graph::metrics::fraction_disconnected(sim.trust_graph(), &online);
        assert!(
            overlay_frac <= trust_frac,
            "overlay {overlay_frac} vs trust {trust_frac} during blackout"
        );
    }

    #[test]
    fn blackout_is_deterministic() {
        let run = || {
            let mut sim = small_sim(0.5, 25);
            sim.run_until(15.0);
            sim.inject_blackout(&[0, 1, 2, 3, 4], 4.0);
            sim.run_until(40.0);
            (sim.online_mask(), sim.overlay_graph())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn blackout_rejects_zero_duration() {
        let mut sim = small_sim(1.0, 26);
        sim.inject_blackout(&[0], 0.0);
    }

    #[test]
    fn message_log_off_by_default() {
        let mut sim = small_sim(1.0, 18);
        sim.run_until(5.0);
        assert!(sim.message_log().is_none());
        assert!(sim.take_message_log().is_empty());
    }
}
