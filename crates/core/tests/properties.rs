//! Property-based tests for the overlay protocol's core data structures:
//! the min-wise sampler invariant, cache bounds, offer construction, and
//! configuration consistency.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use veil_core::cache::Cache;
use veil_core::config::{DistanceMetric, OverlayConfig, SlotPolicy};
use veil_core::node::Node;
use veil_core::protocol::{build_offer, execute_shuffle, receive_offer};
use veil_core::pseudonym::{Pseudonym, PseudonymService};
use veil_core::sampler::Sampler;
use veil_sim::SimTime;

fn mint(n: usize, lifetime: Option<f64>, seed: u64) -> Vec<Pseudonym> {
    let mut svc = PseudonymService::new(seed);
    (0..n)
        .map(|i| svc.mint(i as u32, SimTime::ZERO, lifetime))
        .collect()
}

proptest! {
    #[test]
    fn sampler_keeps_global_minimum_per_slot(
        slots in 1usize..20,
        count in 1usize..100,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = Sampler::new(slots, DistanceMetric::Absolute, true, &mut rng);
        let offered = mint(count, None, seed);
        for &p in &offered {
            sampler.offer(p, SimTime::ZERO);
        }
        // Every link is one of the offered pseudonyms, and the number of
        // distinct links never exceeds min(slots, count).
        let links = sampler.links();
        prop_assert!(links.len() <= slots.min(count));
        for l in &links {
            prop_assert!(offered.iter().any(|p| p.id() == l.id()));
        }
        // Counter invariant.
        prop_assert_eq!(
            sampler.additions() - sampler.removals(),
            sampler.link_count() as u64
        );
    }

    #[test]
    fn sampler_result_is_order_independent(
        slots in 1usize..10,
        count in 1usize..40,
        seed in any::<u64>(),
        swap in any::<u64>(),
    ) {
        // Min-wise sampling is insensitive to delivery order and frequency:
        // the final link set over the same offered set is identical.
        let offered = mint(count, None, seed);
        let mut shuffled = offered.clone();
        // Deterministic permutation derived from `swap`.
        let mut s = swap;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut a = Sampler::new(slots, DistanceMetric::Absolute, true, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let mut b = Sampler::new(slots, DistanceMetric::Absolute, true, &mut rng_b);
        for &p in &offered {
            a.offer(p, SimTime::ZERO);
        }
        for &p in &shuffled {
            b.offer(p, SimTime::ZERO);
            b.offer(p, SimTime::ZERO); // frequency bias must not matter
        }
        let ids_a: Vec<_> = a.links().iter().map(|p| p.id()).collect();
        let ids_b: Vec<_> = b.links().iter().map(|p| p.id()).collect();
        prop_assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn sampler_purge_only_removes_expired(
        slots in 1usize..10,
        lifetimes in prop::collection::vec(1.0f64..100.0, 1..30),
        now in 0.0f64..120.0,
        seed in any::<u64>(),
    ) {
        let mut svc = PseudonymService::new(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = Sampler::new(slots, DistanceMetric::Absolute, true, &mut rng);
        for (i, &l) in lifetimes.iter().enumerate() {
            let p = svc.mint(i as u32, SimTime::ZERO, Some(l));
            sampler.offer(p, SimTime::ZERO);
        }
        sampler.purge_expired(SimTime::new(now));
        for p in sampler.links() {
            prop_assert!(p.is_valid(SimTime::new(now)));
        }
    }

    #[test]
    fn cache_never_exceeds_capacity(
        capacity in 1usize..50,
        batches in prop::collection::vec(1usize..30, 1..10),
        seed in any::<u64>(),
    ) {
        let mut svc = PseudonymService::new(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cache = Cache::new(capacity);
        for (bi, &batch) in batches.iter().enumerate() {
            let incoming: Vec<Pseudonym> = (0..batch)
                .map(|i| svc.mint((bi * 100 + i) as u32, SimTime::ZERO, None))
                .collect();
            cache.absorb(&incoming, &[], None, SimTime::ZERO, &mut rng);
            prop_assert!(cache.len() <= capacity);
        }
    }

    #[test]
    fn cache_select_offer_returns_distinct_members(
        capacity in 1usize..40,
        fill in 0usize..40,
        request in 0usize..60,
        seed in any::<u64>(),
    ) {
        let mut svc = PseudonymService::new(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cache = Cache::new(capacity);
        for i in 0..fill {
            cache.insert(svc.mint(i as u32, SimTime::ZERO, None), SimTime::ZERO);
        }
        let offer = cache.select_offer(request, &mut rng);
        prop_assert_eq!(offer.len(), request.min(cache.len()));
        let mut ids: Vec<_> = offer.iter().map(|p| p.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), offer.len());
        for p in &offer {
            prop_assert!(cache.contains(p.id()));
        }
    }

    #[test]
    fn offer_length_respects_shuffle_budget(
        shuffle_length in 1usize..50,
        fill in 0usize..80,
        seed in any::<u64>(),
    ) {
        let cfg = OverlayConfig {
            cache_size: 100,
            shuffle_length,
            target_links: 10,
            ..OverlayConfig::default()
        };
        let mut svc = PseudonymService::new(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut node = Node::new(0, vec![], &cfg, &mut rng);
        node.renew_pseudonym(&mut svc, SimTime::ZERO, None);
        for i in 0..fill {
            node.cache
                .insert(svc.mint(1 + i as u32, SimTime::ZERO, None), SimTime::ZERO);
        }
        let offer = build_offer(&mut node, shuffle_length, SimTime::ZERO, &mut rng);
        prop_assert!(offer.entries.len() <= shuffle_length);
        prop_assert!(!offer.entries.is_empty(), "own pseudonym always included");
        // No duplicates in the offer.
        let mut ids: Vec<_> = offer.entries.iter().map(|p| p.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), offer.entries.len());
    }

    #[test]
    fn receive_offer_never_links_own_pseudonyms(
        count in 1usize..30,
        seed in any::<u64>(),
    ) {
        let cfg = OverlayConfig {
            cache_size: 100,
            shuffle_length: 10,
            target_links: 10,
            ..OverlayConfig::default()
        };
        let mut svc = PseudonymService::new(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut node = Node::new(5, vec![], &cfg, &mut rng);
        node.renew_pseudonym(&mut svc, SimTime::ZERO, None);
        // Attacker replays the node's own (old and current) pseudonyms.
        let mut replayed: Vec<Pseudonym> =
            (0..count).map(|_| svc.mint(5, SimTime::ZERO, None)).collect();
        replayed.push(node.own_pseudonym(SimTime::ZERO).unwrap());
        receive_offer(&mut node, &replayed, &[], SimTime::ZERO, &mut rng);
        prop_assert_eq!(node.sampler.link_count(), 0, "no self links ever");
    }

    #[test]
    fn shuffle_preserves_pseudonym_conservation(
        fill_a in 0usize..40,
        fill_b in 0usize..40,
        seed in any::<u64>(),
    ) {
        // A shuffle never invents pseudonyms: everything in either cache
        // afterwards was in one of the caches or is an own pseudonym.
        let cfg = OverlayConfig {
            cache_size: 100,
            shuffle_length: 10,
            target_links: 10,
            ..OverlayConfig::default()
        };
        let mut svc = PseudonymService::new(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Node::new(0, vec![], &cfg, &mut rng);
        let mut b = Node::new(1, vec![], &cfg, &mut rng);
        a.renew_pseudonym(&mut svc, SimTime::ZERO, None);
        b.renew_pseudonym(&mut svc, SimTime::ZERO, None);
        let mut universe: Vec<Pseudonym> = Vec::new();
        universe.push(a.own_pseudonym(SimTime::ZERO).unwrap());
        universe.push(b.own_pseudonym(SimTime::ZERO).unwrap());
        for i in 0..fill_a {
            let p = svc.mint(100 + i as u32, SimTime::ZERO, None);
            a.cache.insert(p, SimTime::ZERO);
            universe.push(p);
        }
        for i in 0..fill_b {
            let p = svc.mint(200 + i as u32, SimTime::ZERO, None);
            b.cache.insert(p, SimTime::ZERO);
            universe.push(p);
        }
        execute_shuffle(&mut a, &mut b, cfg.shuffle_length, SimTime::ZERO, &mut rng);
        for node in [&a, &b] {
            for p in node.cache.iter() {
                prop_assert!(universe.iter().any(|u| u.id() == p.id()));
            }
        }
    }

    #[test]
    fn slot_budget_is_monotone_in_degree(
        target in 1usize..100,
        min_slots in 0usize..20,
        d1 in 0usize..150,
        d2 in 0usize..150,
    ) {
        let cfg = OverlayConfig {
            target_links: target,
            min_slots,
            slot_policy: SlotPolicy::DegreeAware,
            ..OverlayConfig::default()
        };
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        prop_assert!(cfg.slots_for_degree(lo) >= cfg.slots_for_degree(hi));
        prop_assert!(cfg.slots_for_degree(d1) >= min_slots);
        prop_assert!(cfg.slots_for_degree(d1) <= target.max(min_slots));
    }

    #[test]
    fn random_small_simulations_preserve_invariants(
        seed in any::<u64>(),
        alpha_pct in 10u32..100,
        lifetime in prop::option::of(5.0f64..60.0),
        horizon in 5.0f64..60.0,
    ) {
        // Whole-system fuzz: arbitrary seed/availability/lifetime/horizon,
        // then check the structural invariants that must always hold.
        let mut rng = StdRng::seed_from_u64(seed);
        let trust = veil_graph::generators::social_graph(30, 2, &mut rng).unwrap();
        let cfg = OverlayConfig {
            cache_size: 30,
            shuffle_length: 6,
            target_links: 8,
            pseudonym_lifetime: lifetime,
            ..OverlayConfig::default()
        };
        let churn =
            veil_sim::churn::ChurnConfig::from_availability(alpha_pct as f64 / 100.0, 10.0);
        let mut sim = veil_core::simulation::Simulation::new(trust.clone(), cfg, churn, seed)
            .unwrap();
        sim.run_until(horizon);
        let now = sim.now();
        for v in 0..sim.node_count() {
            let node = sim.node(v);
            // 1. No self links, no links through expired pseudonyms.
            for p in node.sampler.links() {
                prop_assert_ne!(p.owner(), v as u32, "self link at node {}", v);
            }
            // 2. Trusted neighbour list still matches the trust graph.
            let expected: Vec<u32> = trust.neighbors(v).to_vec();
            prop_assert_eq!(node.trusted(), expected.as_slice());
            // 3. Cache within capacity.
            prop_assert!(node.cache.len() <= node.cache.capacity());
            // 4. Counter balance.
            prop_assert_eq!(
                node.sampler.additions() - node.sampler.removals(),
                node.sampler.link_count() as u64
            );
            // 5. Stats sanity.
            let stats = sim.node_stats(v);
            prop_assert!(stats.online_time >= 0.0);
            prop_assert!(stats.online_time <= now.as_f64() + 1e-9);
            prop_assert!(stats.dropped_requests <= stats.requests_sent);
        }
        // 6. Overlay graph is simple and contains the trust edges.
        let overlay = sim.overlay_graph();
        for (a, b) in trust.edges() {
            prop_assert!(overlay.has_edge(a, b));
        }
    }

    #[test]
    fn validated_configs_build_simulations(
        cache_size in 1usize..200,
        shuffle_length in 1usize..100,
        target_links in 1usize..60,
    ) {
        let cfg = OverlayConfig {
            cache_size,
            shuffle_length,
            target_links,
            ..OverlayConfig::default()
        };
        if cfg.validate().is_ok() {
            let mut rng = StdRng::seed_from_u64(1);
            let trust = veil_graph::generators::social_graph(20, 2, &mut rng).unwrap();
            let churn = veil_sim::churn::ChurnConfig::from_availability(0.5, 10.0);
            let sim = veil_core::simulation::Simulation::new(trust, cfg, churn, 1);
            prop_assert!(sim.is_ok());
        } else {
            prop_assert!(shuffle_length > cache_size + 1 || cache_size == 0 || shuffle_length == 0);
        }
    }
}
