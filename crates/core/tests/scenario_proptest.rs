//! Property-based tests for the scenario subsystem: the canonical TOML
//! serializer must round-trip every scenario exactly, and lowering any
//! scenario that passes semantic validation must produce a configuration
//! the existing machinery accepts (`OverlayConfig::validate`, a usable
//! availability, the scenario's own horizon).
//!
//! Two strategies feed them: `arb_scenario` generates *valid-leaning*
//! scenarios (values inside the documented ranges, phases sorted by
//! start key) so the lowering property sees a rich mix of phase
//! sequences, and `arb_wild_string` stresses the serializer's escaping
//! path with quotes, backslashes, and non-ASCII text. Residual semantic
//! conflicts (e.g. overlapping blackout regions from independently drawn
//! phases) are filtered with `prop_assume!` on `validate`.

use proptest::option;
use proptest::prelude::*;
use veil_core::scenario::schema::{
    AttackSpec, GraphModel, HealthSpec, LatencyKind, LatencySpec, LinkSpec, OverlaySpec, Phase,
    Scenario, DETECTOR_NAMES,
};
use veil_core::scenario::{lower, parse_scenario_str, validate, Format};

fn arb_graph_model() -> impl Strategy<Value = GraphModel> {
    (any::<bool>(), 1usize..8, 1.5f64..8.0, 0.0f64..1.0).prop_map(
        |(holme_kim, attach, avg_degree, triad)| {
            if holme_kim {
                GraphModel::HolmeKim { attach, triad }
            } else {
                GraphModel::DegreeMatched { avg_degree, triad }
            }
        },
    )
}

fn arb_overlay() -> impl Strategy<Value = OverlaySpec> {
    (1usize..120, 1usize..60, 0.5f64..8.0, 0u32..5).prop_flat_map(
        |(cache_size, target_links, shuffle_timeout, shuffle_retries)| {
            (1usize..=cache_size + 1, option::of(0.5f64..10.0)).prop_map(
                move |(shuffle_length, lifetime_ratio)| OverlaySpec {
                    cache_size,
                    shuffle_length,
                    target_links,
                    lifetime_ratio,
                    shuffle_timeout,
                    shuffle_retries,
                },
            )
        },
    )
}

fn arb_link() -> impl Strategy<Value = LinkSpec> {
    (
        0.0f64..0.9,
        sample::select(vec![
            LatencyKind::Constant,
            LatencyKind::Exponential,
            LatencyKind::Pareto,
        ]),
        0.0f64..2.0,
        1.1f64..5.0,
    )
        .prop_map(|(loss, dist, mean, shape)| LinkSpec {
            loss,
            latency: LatencySpec { dist, mean, shape },
        })
}

/// One phase, chosen by kind tag; starts land in `[1, 80)`, fractions
/// and regions stay inside the validated ranges (`from + fraction <= 1`,
/// at least one affected node at 20+ nodes).
fn arb_phase() -> impl Strategy<Value = Phase> {
    (
        (0usize..7, 1.0f64..80.0, 1.0f64..19.0),
        (0.05f64..0.5, 0.0f64..0.5),
        (2.0f64..20.0, 0.1f64..0.9, 1usize..5),
    )
        .prop_map(
            |((kind, start, duration), (fraction, from), (period, duty, count))| match kind {
                0 => Phase::FlashCrowd {
                    at: start,
                    fraction,
                    from,
                },
                1 => Phase::Blackout {
                    start,
                    duration,
                    fraction,
                    from,
                },
                2 => Phase::Partition {
                    start,
                    duration,
                    fraction,
                },
                3 => Phase::Crash {
                    start,
                    duration,
                    fraction,
                    from,
                },
                4 => Phase::ChurnWaves {
                    start,
                    period,
                    duty,
                    fraction,
                    waves: count,
                },
                5 => Phase::CreepingLoss {
                    start,
                    end: start + duration,
                    steps: count,
                    max_fraction: fraction,
                },
                _ => Phase::Eclipse {
                    start,
                    duration,
                    victims: fraction,
                },
            },
        )
}

/// A lower-case identifier-ish scenario name.
fn arb_name() -> impl Strategy<Value = String> {
    collection::vec(
        sample::select("abcdefghijklmnopqrstuvwxyz0123456789_-".chars().collect()),
        1..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Strings that stress the TOML escaping path: quotes, backslashes,
/// hashes (comment starter), brackets, spaces, and non-ASCII.
fn arb_wild_string() -> impl Strategy<Value = String> {
    collection::vec(
        sample::select(
            "ab z\"\\#[]=.'{}()!?:,0<>|%ü漢λ→"
                .chars()
                .collect::<Vec<char>>(),
        ),
        0..30,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// A valid-leaning scenario: every scalar inside its documented range,
/// phases sorted by start key, horizon past every phase start.
fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        // TOML integers are i64, so only seeds up to i64::MAX are
        // file-representable; the strategy stays inside that range.
        (
            arb_name(),
            0u64..=i64::MAX as u64,
            20usize..300,
            100.0f64..200.0,
        ),
        (0.05f64..=1.0, 1.0f64..100.0, 0.1f64..=1.0, 1usize..10),
        (arb_graph_model(), arb_overlay(), arb_link()),
        (any::<bool>(), 1.0f64..10.0, option::of(1usize..20)),
        (
            collection::vec(arb_phase(), 0..4),
            collection::vec(sample::select(DETECTOR_NAMES.to_vec()), 0..3),
        ),
    )
        .prop_map(
            |(
                (name, seed, nodes, horizon),
                (availability, mean_offline, trust_f, source_multiplier),
                (model, overlay, link),
                (health_enabled, window, observers),
                (mut phases, forbid),
            )| {
                phases.sort_by(|a, b| {
                    a.start_key()
                        .partial_cmp(&b.start_key())
                        .expect("phase starts are finite")
                });
                let mut s = Scenario {
                    name,
                    seed,
                    nodes,
                    horizon,
                    availability,
                    mean_offline,
                    phases,
                    attack: observers.map(|observers| AttackSpec { observers }),
                    ..Scenario::default()
                };
                s.graph.model = model;
                s.graph.trust_f = trust_f;
                s.graph.source_multiplier = source_multiplier;
                s.overlay = overlay;
                s.link = link;
                s.health = HealthSpec {
                    enabled: health_enabled,
                    window,
                };
                // Alert assertions require health.enabled, so detector
                // lists only ride along when the monitor is on.
                if health_enabled {
                    s.assertions.forbid_detectors = forbid.into_iter().map(String::from).collect();
                    s.assertions.forbid_detectors.sort();
                    s.assertions.forbid_detectors.dedup();
                }
                s
            },
        )
}

/// Guard for the `prop_assume!` in the lowering property: if the
/// strategy drifted so that validation rejects nearly every draw, that
/// property would silently become vacuous. Requires that a healthy
/// share of generated scenarios validate.
#[test]
fn generated_scenarios_mostly_validate() {
    let strategy = arb_scenario();
    let mut rng = TestRng::for_case("scenario_proptest::acceptance", 0);
    let total = 400;
    let ok = (0..total)
        .filter(|_| validate(&strategy.pick(&mut rng)).is_ok())
        .count();
    assert!(
        ok * 100 >= total * 40,
        "only {ok}/{total} generated scenarios validate — the lowering \
         property is starved; loosen the strategy or the validator drifted"
    );
}

proptest! {
    /// `parse(to_toml(s)) == s` for every scenario the strategy can
    /// build — the canonical serializer writes every field (defaults
    /// included) and `{:?}` float formatting is shortest-round-trip.
    #[test]
    fn canonical_toml_round_trips(s in arb_scenario()) {
        let text = s.to_toml();
        let (back, _) = parse_scenario_str(&text, Format::Toml, "fallback")
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{text}"));
        prop_assert_eq!(back, s);
    }

    /// String escaping: names and descriptions with quotes, backslashes,
    /// comment markers, and non-ASCII text survive the round trip.
    #[test]
    fn string_fields_round_trip(name in arb_wild_string(), description in arb_wild_string()) {
        let s = Scenario { name, description, ..Scenario::default() };
        let text = s.to_toml();
        let (back, _) = parse_scenario_str(&text, Format::Toml, "fallback")
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{text}"));
        prop_assert_eq!(back, s);
    }

    /// Any scenario that passes semantic validation lowers to a
    /// configuration the existing stack accepts: the overlay config
    /// validates (including the fault model embedded in the link
    /// layer), the availability is a usable churn parameter, and the
    /// horizon/seed/size are the scenario's own.
    #[test]
    fn validated_scenarios_lower_to_valid_configs(s in arb_scenario()) {
        prop_assume!(validate(&s).is_ok());
        let lowered = lower(&s)
            .unwrap_or_else(|e| panic!("lowering a validated scenario failed: {e}"));
        prop_assert!(
            lowered.params.overlay.validate().is_ok(),
            "lowered overlay config must validate: {:?}",
            lowered.params.overlay.validate()
        );
        prop_assert!(lowered.alpha > 0.0 && lowered.alpha <= 1.0);
        prop_assert_eq!(lowered.horizon, s.horizon);
        prop_assert_eq!(lowered.params.seed, s.seed);
        prop_assert_eq!(lowered.params.nodes, s.nodes);
        prop_assert_eq!(lowered.params.warmup, s.horizon);
    }
}
