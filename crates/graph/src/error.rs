//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced by graph constructors, generators and parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index referenced a vertex outside `0..n`.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// Number of vertices in the graph.
        len: usize,
    },
    /// A self-loop `(v, v)` was supplied; the trust graph is simple.
    SelfLoop {
        /// The vertex with the attempted self-loop.
        node: usize,
    },
    /// Generator parameters were inconsistent (e.g. more edges than a simple
    /// graph of that order can hold).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node index {node} out of range for graph of {len} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at node {node} not allowed in a simple graph")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
            GraphError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GraphError::NodeOutOfRange { node: 5, len: 3 },
            GraphError::SelfLoop { node: 1 },
            GraphError::InvalidParameter {
                reason: "m too large".into(),
            },
            GraphError::Parse {
                line: 2,
                reason: "expected two fields".into(),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
