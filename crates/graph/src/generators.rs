//! Random and deterministic graph generators.
//!
//! The paper's evaluation needs three kinds of topology:
//!
//! 1. A *social* trust graph with power-law degrees and non-trivial
//!    clustering, standing in for the proprietary Facebook crawl —
//!    [`barabasi_albert`] and [`holme_kim`] (BA with triad closure).
//! 2. An Erdős–Rényi *reference random graph* of the same size and average
//!    degree — [`erdos_renyi_gnm`] / [`erdos_renyi_like`].
//! 3. Small deterministic topologies for unit tests — [`complete`],
//!    [`star`], [`path`], [`cycle`], [`two_cliques_bridge`].

use crate::error::GraphError;
use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Erdős–Rényi `G(n, m)`: `m` distinct edges chosen uniformly at random.
///
/// This is the "random graph of the same size and average fan-out" the paper
/// compares against.
///
/// # Errors
///
/// Returns an error if `m` exceeds `n(n-1)/2`.
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_edges {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "{m} edges requested but a simple graph on {n} nodes holds at most {max_edges}"
            ),
        });
    }
    let mut g = Graph::new(n);
    let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(m * 2);
    while g.edge_count() < m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            g.add_edge(key.0, key.1).expect("in-range distinct edge");
        }
    }
    Ok(g)
}

/// Erdős–Rényi `G(n, p)`: each possible edge present independently with
/// probability `p`, using geometric skipping for efficiency.
///
/// # Errors
///
/// Returns an error if `p` is not in `[0, 1]`.
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability {p} not in [0, 1]"),
        });
    }
    let mut g = Graph::new(n);
    if p == 0.0 || n < 2 {
        return Ok(g);
    }
    if p == 1.0 {
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(a, b).expect("complete edge");
            }
        }
        return Ok(g);
    }
    // Batagelj–Brandes: walk the (a, b) pairs with geometric jumps.
    let log_q = (1.0 - p).ln();
    let (mut a, mut b) = (1usize, 0usize);
    while a < n {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log_q).floor() as usize;
        b += 1 + skip;
        while b >= a && a < n {
            b -= a;
            a += 1;
        }
        if a < n {
            g.add_edge(a, b).expect("gnp edge in range");
        }
    }
    Ok(g)
}

/// Erdős–Rényi graph with the same node and edge count as `reference`.
///
/// # Errors
///
/// Propagates [`erdos_renyi_gnm`] errors (cannot occur for a valid
/// `reference`).
pub fn erdos_renyi_like<R: Rng + ?Sized>(
    reference: &Graph,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    erdos_renyi_gnm(reference.node_count(), reference.edge_count(), rng)
}

/// Barabási–Albert preferential attachment: each new node attaches to `m`
/// existing nodes with probability proportional to their degree.
///
/// Produces the power-law degree distribution the Facebook crawl exhibits.
///
/// # Errors
///
/// Returns an error if `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    holme_kim(n, m, 0.0, rng)
}

/// Holme–Kim model: Barabási–Albert growth with probability `p_triad` of
/// closing a triangle after each preferential attachment step.
///
/// `p_triad = 0` degenerates to plain BA; larger values raise the clustering
/// coefficient toward the levels measured on real social graphs, which is
/// the property (besides power-law degrees) that makes trust graphs poor
/// dissemination overlays.
///
/// # Errors
///
/// Returns an error if `m == 0`, `n <= m`, or `p_triad` is outside `[0, 1]`.
pub fn holme_kim<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    p_triad: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "attachment count m must be positive".into(),
        });
    }
    if n <= m {
        return Err(GraphError::InvalidParameter {
            reason: format!("need more than m={m} nodes, got n={n}"),
        });
    }
    if !(0.0..=1.0).contains(&p_triad) {
        return Err(GraphError::InvalidParameter {
            reason: format!("triad probability {p_triad} not in [0, 1]"),
        });
    }
    let mut g = Graph::new(n);
    // `targets` holds one entry per edge endpoint, so uniform sampling from
    // it is degree-proportional sampling.
    let mut targets: Vec<usize> = Vec::with_capacity(2 * m * n);
    // Seed: a clique on the first m+1 nodes, so every early node has degree
    // at least m and preferential attachment is well defined.
    for a in 0..=m {
        for b in (a + 1)..=m {
            g.add_edge(a, b).expect("seed clique edge");
            targets.push(a);
            targets.push(b);
        }
    }
    for v in (m + 1)..n {
        let mut last_attached: Option<usize> = None;
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < m {
            guard += 1;
            if guard > 50 * m + 100 {
                // Degenerate corner (tiny graphs): fall back to any
                // not-yet-neighbour to guarantee termination.
                if let Some(u) = (0..v).find(|&u| !g.has_edge(v, u)) {
                    g.add_edge(v, u).expect("fallback edge");
                    targets.push(v);
                    targets.push(u);
                    last_attached = Some(u);
                    added += 1;
                    continue;
                }
                break;
            }
            // Triad-closure step: with probability p_triad connect to a
            // random neighbour of the previously attached node.
            if let Some(prev) = last_attached {
                if p_triad > 0.0 && rng.gen_bool(p_triad) {
                    let nbrs = g.neighbors(prev);
                    if let Some(&w) = nbrs.choose(rng) {
                        let w = w as usize;
                        if w != v && !g.has_edge(v, w) {
                            g.add_edge(v, w).expect("triad edge");
                            targets.push(v);
                            targets.push(w);
                            last_attached = Some(w);
                            added += 1;
                            continue;
                        }
                    }
                }
            }
            // Preferential-attachment step.
            let &u = targets.choose(rng).expect("non-empty target list");
            if u != v && !g.has_edge(v, u) {
                g.add_edge(v, u).expect("pa edge");
                targets.push(v);
                targets.push(u);
                last_attached = Some(u);
                added += 1;
            }
        }
    }
    Ok(g)
}

/// Holme–Kim-style preferential attachment tuned to hit a *fractional*
/// average degree.
///
/// `holme_kim` can only produce average degrees near `2m` for integer `m`;
/// the paper's trust samples have fractional averages (11.3 for `f = 1.0`,
/// 6.55 for `f = 0.5`, Section IV-A). Here each arriving node attaches
/// `m_lo` or `m_lo + 1` edges, where `target_avg_degree / 2 = m_lo + frac`
/// and the larger count is chosen with probability `frac` — so the expected
/// attachment count (and therefore the asymptotic average degree) matches
/// the target while keeping the power-law tail and triad-closure clustering
/// of the Holme–Kim construction.
///
/// # Errors
///
/// Returns an error if `target_avg_degree < 2`, if it is not finite, if
/// `p_triad` is outside `[0, 1]`, or if `n` is too small for the implied
/// seed clique.
pub fn degree_matched<R: Rng + ?Sized>(
    n: usize,
    target_avg_degree: f64,
    p_triad: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if !target_avg_degree.is_finite() || target_avg_degree < 2.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "target average degree must be finite and >= 2, got {target_avg_degree}"
            ),
        });
    }
    if !(0.0..=1.0).contains(&p_triad) {
        return Err(GraphError::InvalidParameter {
            reason: format!("triad probability {p_triad} not in [0, 1]"),
        });
    }
    let half = target_avg_degree / 2.0;
    let m_lo = half.floor() as usize;
    let frac = half - m_lo as f64;
    let m_hi = if frac > 0.0 { m_lo + 1 } else { m_lo };
    if n <= m_hi + 1 {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "need more than {} nodes for avg degree {target_avg_degree}, got n={n}",
                m_hi + 1
            ),
        });
    }
    let mut g = Graph::new(n);
    let mut targets: Vec<usize> = Vec::with_capacity((target_avg_degree * n as f64) as usize);
    // Seed clique on m_hi + 1 nodes so even a node attaching m_hi edges
    // finds enough distinct neighbours.
    for a in 0..=m_hi {
        for b in (a + 1)..=m_hi {
            g.add_edge(a, b).expect("seed clique edge");
            targets.push(a);
            targets.push(b);
        }
    }
    for v in (m_hi + 1)..n {
        // Bernoulli mixture: E[m] = m_lo + frac = target_avg_degree / 2.
        let m = if frac > 0.0 && rng.gen_bool(frac) {
            m_lo + 1
        } else {
            m_lo
        };
        let mut last_attached: Option<usize> = None;
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < m {
            guard += 1;
            if guard > 50 * m + 100 {
                if let Some(u) = (0..v).find(|&u| !g.has_edge(v, u)) {
                    g.add_edge(v, u).expect("fallback edge");
                    targets.push(v);
                    targets.push(u);
                    last_attached = Some(u);
                    added += 1;
                    continue;
                }
                break;
            }
            if let Some(prev) = last_attached {
                if p_triad > 0.0 && rng.gen_bool(p_triad) {
                    let nbrs = g.neighbors(prev);
                    if let Some(&w) = nbrs.choose(rng) {
                        let w = w as usize;
                        if w != v && !g.has_edge(v, w) {
                            g.add_edge(v, w).expect("triad edge");
                            targets.push(v);
                            targets.push(w);
                            last_attached = Some(w);
                            added += 1;
                            continue;
                        }
                    }
                }
            }
            let &u = targets.choose(rng).expect("non-empty target list");
            if u != v && !g.has_edge(v, u) {
                g.add_edge(v, u).expect("pa edge");
                targets.push(v);
                targets.push(u);
                last_attached = Some(u);
                added += 1;
            }
        }
    }
    Ok(g)
}

/// Watts–Strogatz small-world graph: a ring lattice where each node connects
/// to its `k` nearest neighbours (`k` even), each edge rewired with
/// probability `beta`.
///
/// # Errors
///
/// Returns an error if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if !k.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("lattice degree k={k} must be even"),
        });
    }
    if k >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("lattice degree k={k} must be below n={n}"),
        });
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter {
            reason: format!("rewiring probability {beta} not in [0, 1]"),
        });
    }
    let mut g = Graph::new(n);
    for v in 0..n {
        for j in 1..=(k / 2) {
            let w = (v + j) % n;
            if rng.gen_bool(beta) {
                // Rewire: keep v, pick a random non-neighbour endpoint.
                let mut guard = 0;
                loop {
                    guard += 1;
                    let t = rng.gen_range(0..n);
                    if t != v && !g.has_edge(v, t) {
                        g.add_edge(v, t).expect("rewired edge");
                        break;
                    }
                    if guard > 100 * n {
                        // Saturated neighbourhood; keep the lattice edge if
                        // possible, else drop it.
                        let _ = g.add_edge(v, w);
                        break;
                    }
                }
            } else if !g.has_edge(v, w) {
                g.add_edge(v, w).expect("lattice edge");
            }
        }
    }
    Ok(g)
}

/// Configuration model: a random simple graph approximately realizing the
/// given degree sequence by stub matching (self-loops and duplicate edges
/// are discarded, so high-degree vertices may come out slightly short).
///
/// # Errors
///
/// Returns an error if the degree sum is odd or any degree is `>= n`.
pub fn configuration_model<R: Rng + ?Sized>(
    degrees: &[usize],
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let n = degrees.len();
    let total: usize = degrees.iter().sum();
    if !total.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: "degree sequence sums to an odd number".into(),
        });
    }
    if let Some((v, &d)) = degrees.iter().enumerate().find(|&(_, &d)| d >= n.max(1)) {
        return Err(GraphError::InvalidParameter {
            reason: format!("degree {d} of node {v} too large for a simple graph on {n} nodes"),
        });
    }
    let mut stubs: Vec<usize> = Vec::with_capacity(total);
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v, d));
    }
    stubs.shuffle(rng);
    let mut g = Graph::new(n);
    for pair in stubs.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        if a != b {
            // Duplicate edges silently dropped: approximate realization.
            let _ = g.add_edge(a, b).expect("in-range stub");
        }
    }
    Ok(g)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b).expect("complete edge");
        }
    }
    g
}

/// Star graph: vertex `0` connected to all others.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v).expect("star edge");
    }
    g
}

/// Path graph `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v - 1, v).expect("path edge");
    }
    g
}

/// Cycle graph on `n >= 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(n - 1, 0).expect("closing edge");
    g
}

/// Two cliques of sizes `a` and `b` joined by a single bridge edge.
///
/// The classic worst case for churn robustness: removing either bridge
/// endpoint partitions the graph. Useful in tests and attack scenarios.
///
/// # Panics
///
/// Panics if `a == 0` or `b == 0`.
pub fn two_cliques_bridge(a: usize, b: usize) -> Graph {
    assert!(a > 0 && b > 0, "cliques must be non-empty");
    let mut g = Graph::new(a + b);
    for x in 0..a {
        for y in (x + 1)..a {
            g.add_edge(x, y).expect("left clique edge");
        }
    }
    for x in a..(a + b) {
        for y in (x + 1)..(a + b) {
            g.add_edge(x, y).expect("right clique edge");
        }
    }
    g.add_edge(a - 1, a).expect("bridge edge");
    g
}

/// Convenience constructor for a Facebook-like synthetic social graph:
/// Holme–Kim with triad probability 0.6, giving power-law degrees plus
/// social-level clustering.
///
/// # Errors
///
/// Propagates [`holme_kim`] parameter errors.
pub fn social_graph<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph, GraphError> {
    holme_kim(n, m, 0.6, rng)
}

/// Parameters of the community-structured social-graph model
/// ([`community_social`]).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CommunityParams {
    /// Smallest community size (inclusive).
    pub min_community: usize,
    /// Largest community size (inclusive).
    pub max_community: usize,
    /// Intra-community edge probability (Erdős–Rényi within communities).
    pub p_intra: f64,
    /// Inter-community links per *ambassador* node, attached preferentially
    /// by degree (produces power-law global hubs).
    pub inter_links: usize,
    /// Fraction of nodes that get inter-community links at all. Real social
    /// graphs have most ties inside communities; a low fraction makes
    /// breadth-first samples sweep communities before escaping.
    pub ambassador_fraction: f64,
}

impl Default for CommunityParams {
    fn default() -> Self {
        Self {
            min_community: 20,
            max_community: 80,
            p_intra: 0.2,
            inter_links: 2,
            ambassador_fraction: 1.0,
        }
    }
}

/// Community-structured social graph: dense Erdős–Rényi communities glued
/// together by preferentially attached inter-community links.
///
/// This model reproduces the two properties of crawled social graphs that
/// the paper's trust-graph sampling depends on and that pure
/// preferential-attachment models miss:
///
/// * **high local density** — a full-BFS (`f = 1`) sample hoovers up whole
///   communities, giving dense induced subgraphs, while a partial-BFS
///   (`f = 0.5`) sample skips across communities and stays sparse
///   (the paper's 5649- vs 3277-edge contrast at 1000 nodes);
/// * **power-law global degrees** — the preferential inter-community links
///   make a minority of nodes global hubs.
///
/// # Errors
///
/// Returns an error if the community size bounds are inverted or zero, if
/// `p_intra` is outside `[0, 1]`, or if `n` is smaller than one community.
pub fn community_social<R: Rng + ?Sized>(
    n: usize,
    params: CommunityParams,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if params.min_community == 0 || params.min_community > params.max_community {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "invalid community size range [{}, {}]",
                params.min_community, params.max_community
            ),
        });
    }
    if !(0.0..=1.0).contains(&params.p_intra) {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "intra-community probability {} not in [0, 1]",
                params.p_intra
            ),
        });
    }
    if n < params.min_community {
        return Err(GraphError::InvalidParameter {
            reason: format!("n={n} smaller than the minimum community size"),
        });
    }
    if !(0.0..=1.0).contains(&params.ambassador_fraction) {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "ambassador fraction {} not in [0, 1]",
                params.ambassador_fraction
            ),
        });
    }
    let mut g = Graph::new(n);
    // Partition 0..n into consecutive communities of random sizes.
    let mut community = vec![0u32; n];
    let mut start = 0usize;
    let mut community_id = 0u32;
    while start < n {
        let mut size = rng.gen_range(params.min_community..=params.max_community);
        if start + size > n || n - (start + size) < params.min_community {
            size = n - start; // absorb the remainder into the last community
        }
        for label in &mut community[start..start + size] {
            *label = community_id;
        }
        // Intra-community Erdős–Rényi edges.
        for a in start..start + size {
            for b in (a + 1)..start + size {
                if rng.gen_bool(params.p_intra) {
                    g.add_edge(a, b).expect("intra edge in range");
                }
            }
        }
        start += size;
        community_id += 1;
    }
    // Inter-community links by preferential attachment over earlier nodes.
    // Only ambassadors get them — except the first node of each community,
    // which always does so the graph stays connected.
    let mut targets: Vec<usize> = Vec::new();
    for v in 0..n {
        let community_head = v == 0 || community[v] != community[v - 1];
        if !community_head && !rng.gen_bool(params.ambassador_fraction) {
            continue;
        }
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < params.inter_links && guard < 100 * (params.inter_links + 1) {
            guard += 1;
            let candidate = if targets.is_empty() {
                if v == 0 {
                    break;
                }
                rng.gen_range(0..v)
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if candidate < v && community[candidate] != community[v] && !g.has_edge(v, candidate) {
                g.add_edge(v, candidate).expect("inter edge in range");
                targets.push(v);
                targets.push(candidate);
                added += 1;
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = erdos_renyi_gnm(50, 100, &mut rng(1)).unwrap();
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 100);
    }

    #[test]
    fn gnm_rejects_too_many_edges() {
        assert!(erdos_renyi_gnm(4, 7, &mut rng(1)).is_err());
        assert!(erdos_renyi_gnm(4, 6, &mut rng(1)).is_ok());
    }

    #[test]
    fn gnp_extremes() {
        let empty = erdos_renyi_gnp(20, 0.0, &mut rng(2)).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi_gnp(20, 1.0, &mut rng(2)).unwrap();
        assert_eq!(full.edge_count(), 20 * 19 / 2);
        assert!(erdos_renyi_gnp(20, 1.5, &mut rng(2)).is_err());
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, &mut rng(3)).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (g.edge_count() as f64 - expected).abs() < 5.0 * sd,
            "edge count {} too far from expectation {expected}",
            g.edge_count()
        );
    }

    #[test]
    fn ba_structure() {
        let g = barabasi_albert(300, 3, &mut rng(4)).unwrap();
        assert_eq!(g.node_count(), 300);
        // Clique seed contributes m(m+1)/2, each later node m edges.
        assert_eq!(g.edge_count(), 3 * 4 / 2 + (300 - 4) * 3);
        assert_eq!(metrics::component_count(&g), 1);
        // Every vertex has degree >= m.
        assert!(g.degrees().iter().all(|&d| d >= 3));
    }

    #[test]
    fn ba_degrees_are_heavy_tailed() {
        let g = barabasi_albert(2000, 3, &mut rng(5)).unwrap();
        let max_deg = *g.degrees().iter().max().unwrap();
        // In a BA graph the hub degree grows like sqrt(n); an ER graph with
        // the same mean degree (6) would have max degree around 20.
        assert!(max_deg > 40, "max degree {max_deg} not heavy-tailed");
    }

    #[test]
    fn holme_kim_raises_clustering() {
        let ba = barabasi_albert(800, 3, &mut rng(6)).unwrap();
        let hk = holme_kim(800, 3, 0.8, &mut rng(6)).unwrap();
        let c_ba = metrics::average_clustering(&ba);
        let c_hk = metrics::average_clustering(&hk);
        assert!(
            c_hk > 2.0 * c_ba,
            "triad closure should raise clustering: ba={c_ba} hk={c_hk}"
        );
    }

    #[test]
    fn holme_kim_rejects_bad_parameters() {
        assert!(holme_kim(10, 0, 0.5, &mut rng(7)).is_err());
        assert!(holme_kim(3, 3, 0.5, &mut rng(7)).is_err());
        assert!(holme_kim(10, 2, 1.5, &mut rng(7)).is_err());
    }

    #[test]
    fn degree_matched_hits_fractional_targets() {
        // The paper's trust-sample averages (Section IV-A).
        for target in [11.3, 6.55] {
            let g = degree_matched(4000, target, 0.6, &mut rng(21)).unwrap();
            let got = g.average_degree();
            assert!((got - target).abs() < 0.4, "target {target}, got {got:.2}");
        }
    }

    #[test]
    fn degree_matched_is_deterministic_and_heavy_tailed() {
        let a = degree_matched(1500, 11.3, 0.6, &mut rng(22)).unwrap();
        let b = degree_matched(1500, 11.3, 0.6, &mut rng(22)).unwrap();
        assert_eq!(a, b);
        let max_deg = *a.degrees().iter().max().unwrap();
        assert!(max_deg > 40, "max degree {max_deg} not heavy-tailed");
    }

    #[test]
    fn degree_matched_rejects_bad_parameters() {
        assert!(degree_matched(100, 1.5, 0.5, &mut rng(23)).is_err());
        assert!(degree_matched(100, f64::NAN, 0.5, &mut rng(23)).is_err());
        assert!(degree_matched(100, 8.0, 1.5, &mut rng(23)).is_err());
        assert!(degree_matched(5, 11.3, 0.5, &mut rng(23)).is_err());
    }

    #[test]
    fn watts_strogatz_zero_beta_is_lattice() {
        let g = watts_strogatz(20, 4, 0.0, &mut rng(8)).unwrap();
        assert_eq!(g.edge_count(), 20 * 2);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn watts_strogatz_rejects_odd_k() {
        assert!(watts_strogatz(20, 3, 0.1, &mut rng(9)).is_err());
        assert!(watts_strogatz(4, 4, 0.1, &mut rng(9)).is_err());
    }

    #[test]
    fn configuration_model_realizes_regular_sequence() {
        let degrees = vec![4usize; 100];
        let g = configuration_model(&degrees, &mut rng(10)).unwrap();
        // Stub matching may lose a few edges to loops/duplicates.
        assert!(g.edge_count() <= 200);
        assert!(
            g.edge_count() >= 180,
            "lost too many edges: {}",
            g.edge_count()
        );
    }

    #[test]
    fn configuration_model_rejects_odd_sum() {
        assert!(configuration_model(&[1, 1, 1], &mut rng(11)).is_err());
    }

    #[test]
    fn deterministic_topologies() {
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(star(5).degree(0), 4);
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        let g = two_cliques_bridge(4, 3);
        assert_eq!(g.edge_count(), 6 + 3 + 1);
        assert!(g.has_edge(3, 4));
        assert_eq!(metrics::component_count(&g), 1);
    }

    #[test]
    fn same_seed_same_graph() {
        let a = social_graph(200, 3, &mut rng(42)).unwrap();
        let b = social_graph(200, 3, &mut rng(42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn community_social_is_connected_and_clustered() {
        let params = CommunityParams::default();
        let g = community_social(2000, params, &mut rng(20)).unwrap();
        assert_eq!(g.node_count(), 2000);
        assert_eq!(metrics::component_count(&g), 1);
        let clustering = metrics::average_clustering(&g);
        assert!(
            clustering > 0.1,
            "clustering {clustering} too low for a social graph"
        );
    }

    #[test]
    fn community_social_average_degree_tracks_p_intra() {
        let sparse = community_social(
            1500,
            CommunityParams {
                p_intra: 0.05,
                ..CommunityParams::default()
            },
            &mut rng(21),
        )
        .unwrap();
        let dense = community_social(
            1500,
            CommunityParams {
                p_intra: 0.3,
                ..CommunityParams::default()
            },
            &mut rng(21),
        )
        .unwrap();
        assert!(dense.average_degree() > 2.0 * sparse.average_degree());
    }

    #[test]
    fn community_social_rejects_bad_parameters() {
        let bad_range = CommunityParams {
            min_community: 50,
            max_community: 20,
            ..CommunityParams::default()
        };
        assert!(community_social(1000, bad_range, &mut rng(22)).is_err());
        let bad_p = CommunityParams {
            p_intra: 1.5,
            ..CommunityParams::default()
        };
        assert!(community_social(1000, bad_p, &mut rng(22)).is_err());
        let too_small = CommunityParams::default();
        assert!(community_social(5, too_small, &mut rng(22)).is_err());
    }

    #[test]
    fn community_social_has_global_hubs() {
        // Preferential inter-community attachment should create nodes whose
        // degree well exceeds the intra-community expectation.
        let params = CommunityParams {
            min_community: 20,
            max_community: 40,
            p_intra: 0.1,
            inter_links: 2,
            ambassador_fraction: 1.0,
        };
        let g = community_social(5000, params, &mut rng(23)).unwrap();
        let expected_intra = 0.1 * 40.0;
        let max_deg = *g.degrees().iter().max().unwrap() as f64;
        assert!(
            max_deg > 3.0 * expected_intra,
            "max degree {max_deg} shows no hub structure"
        );
    }

    #[test]
    fn community_social_deterministic() {
        let p = CommunityParams::default();
        let a = community_social(1000, p, &mut rng(24)).unwrap();
        let b = community_social(1000, p, &mut rng(24)).unwrap();
        assert_eq!(a, b);
    }
}
