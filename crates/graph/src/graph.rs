//! Compact undirected simple graph.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Identifier of a vertex, an index in `0..graph.node_count()`.
///
/// A newtype keeps vertex indices from being confused with the many other
/// integer quantities in the simulator (slot counts, degrees, times).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Undirected simple graph with sorted adjacency lists.
///
/// Vertices are `0..node_count()`. Parallel edges and self-loops are
/// rejected; `add_edge` on an existing edge is a no-op returning `false`.
///
/// # Examples
///
/// ```
/// use veil_graph::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1).unwrap();
/// g.add_edge(1, 2).unwrap();
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(1, 0));
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<u32>>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Builds a graph from an edge iterator.
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is `>= n` or an edge is a self-loop.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = Self::new(n);
        for (a, b) in edges {
            g.add_edge(a, b)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    fn check_node(&self, v: usize) -> Result<(), GraphError> {
        if v >= self.adjacency.len() {
            Err(GraphError::NodeOutOfRange {
                node: v,
                len: self.adjacency.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Adds the undirected edge `(a, b)`.
    ///
    /// Returns `true` if the edge was new, `false` if it already existed.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or `a == b`.
    pub fn add_edge(&mut self, a: usize, b: usize) -> Result<bool, GraphError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        let pos = match self.adjacency[a].binary_search(&(b as u32)) {
            Ok(_) => return Ok(false),
            Err(pos) => pos,
        };
        self.adjacency[a].insert(pos, b as u32);
        let pos_b = self.adjacency[b]
            .binary_search(&(a as u32))
            .expect_err("adjacency lists out of sync");
        self.adjacency[b].insert(pos_b, a as u32);
        self.edges += 1;
        Ok(true)
    }

    /// Removes the undirected edge `(a, b)`.
    ///
    /// Returns `true` if the edge existed.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range.
    pub fn remove_edge(&mut self, a: usize, b: usize) -> Result<bool, GraphError> {
        self.check_node(a)?;
        self.check_node(b)?;
        let Ok(pos) = self.adjacency[a].binary_search(&(b as u32)) else {
            return Ok(false);
        };
        self.adjacency[a].remove(pos);
        let pos_b = self.adjacency[b]
            .binary_search(&(a as u32))
            .expect("adjacency lists out of sync");
        self.adjacency[b].remove(pos_b);
        self.edges -= 1;
        Ok(true)
    }

    /// Whether the edge `(a, b)` exists. Out-of-range endpoints yield `false`.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adjacency
            .get(a)
            .is_some_and(|adj| adj.binary_search(&(b as u32)).is_ok())
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Neighbours of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjacency[v]
    }

    /// Iterates over all edges as `(a, b)` pairs with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(a, adj)| {
            adj.iter()
                .copied()
                .map(move |b| (a, b as usize))
                .filter(|&(a, b)| a < b)
        })
    }

    /// Degree of every vertex, indexed by vertex.
    pub fn degrees(&self) -> Vec<usize> {
        self.adjacency.iter().map(Vec::len).collect()
    }

    /// Average degree `2m / n`; `0.0` for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            2.0 * self.edges as f64 / self.adjacency.len() as f64
        }
    }

    /// Induced subgraph on the vertices where `keep[v]` is `true`.
    ///
    /// Returns the subgraph plus the mapping from new index to original
    /// vertex (`mapping[new] == old`).
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.node_count()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<usize>) {
        assert_eq!(keep.len(), self.node_count(), "mask length mismatch");
        let mut new_index = vec![usize::MAX; self.node_count()];
        let mut mapping = Vec::new();
        for (old, &k) in keep.iter().enumerate() {
            if k {
                new_index[old] = mapping.len();
                mapping.push(old);
            }
        }
        let mut sub = Graph::new(mapping.len());
        for (a, b) in self.edges() {
            if keep[a] && keep[b] {
                sub.add_edge(new_index[a], new_index[b])
                    .expect("induced edge within range");
            }
        }
        (sub, mapping)
    }

    /// Relabels vertices `new -> mapping[new]` is identity-checked by size;
    /// produces a graph whose vertex `i` is this graph's vertex `order[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn permuted(&self, order: &[usize]) -> Graph {
        assert_eq!(order.len(), self.node_count(), "order length mismatch");
        let mut inverse = vec![usize::MAX; order.len()];
        for (new, &old) in order.iter().enumerate() {
            assert!(
                old < order.len() && inverse[old] == usize::MAX,
                "order must be a permutation"
            );
            inverse[old] = new;
        }
        let mut g = Graph::new(self.node_count());
        for (a, b) in self.edges() {
            g.add_edge(inverse[a], inverse[b]).expect("permuted edge");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1).unwrap());
        assert!(g.add_edge(2, 1).unwrap());
        assert!(!g.add_edge(1, 0).unwrap(), "duplicate edge ignored");
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn rejects_self_loop_and_out_of_range() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(0, 0), Err(GraphError::SelfLoop { node: 0 }));
        assert_eq!(
            g.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, len: 2 })
        );
    }

    #[test]
    fn remove_edge() {
        let mut g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(g.remove_edge(1, 0).unwrap());
        assert!(!g.remove_edge(0, 1).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for &(a, b) in &edges {
            assert!(a < b);
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let keep = [true, true, false, true, true];
        let (sub, mapping) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 4);
        assert_eq!(mapping, vec![0, 1, 3, 4]);
        assert_eq!(sub.edge_count(), 2); // (0,1) and (3,4)
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(2, 3));
    }

    #[test]
    fn permuted_preserves_structure() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let p = g.permuted(&[2, 0, 1]);
        // new vertex 0 is old vertex 2, 1 is old 0, 2 is old 1 -> edge (1,2)
        assert!(p.has_edge(1, 2));
        assert_eq!(p.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn permuted_rejects_non_permutation() {
        let g = Graph::new(2);
        g.permuted(&[0, 0]);
    }

    #[test]
    fn average_degree() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn node_id_conversions() {
        let id = NodeId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(u32::from(id), 7);
        assert_eq!(id.to_string(), "n7");
    }
}
