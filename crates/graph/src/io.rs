//! Plain-text edge-list serialization.
//!
//! Format: one `a b` pair of vertex indices per line, `#`-prefixed comment
//! lines and blank lines ignored. A leading comment `# nodes: N` pins the
//! vertex count so isolated trailing vertices survive a round trip. This is
//! the format common crawls (including the Facebook dataset the paper used)
//! are distributed in, so externally obtained graphs can be dropped in.

use crate::error::GraphError;
use crate::graph::Graph;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Writes `graph` as an edge list.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(writer, "# nodes: {}", graph.node_count())?;
    writeln!(writer, "# edges: {}", graph.edge_count())?;
    for (a, b) in graph.edges() {
        writeln!(writer, "{a} {b}")?;
    }
    Ok(())
}

/// Reads a graph from an edge list.
///
/// The vertex count is `max(declared "# nodes:" header, 1 + max index)`.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines, self-loops or
/// out-of-range indices wrapped in `io::Error` for stream failures.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, EdgeListError> {
    let reader = BufReader::new(reader);
    let mut declared_nodes: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_index = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(EdgeListError::Io)?;
        let line = line.trim();
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("nodes:") {
                declared_nodes = Some(n.trim().parse::<usize>().map_err(|e| {
                    EdgeListError::Graph(GraphError::Parse {
                        line: lineno,
                        reason: format!("bad node count: {e}"),
                    })
                })?);
            }
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(a), Some(b)) = (fields.next(), fields.next()) else {
            return Err(EdgeListError::Graph(GraphError::Parse {
                line: lineno,
                reason: "expected two vertex indices".into(),
            }));
        };
        if fields.next().is_some() {
            return Err(EdgeListError::Graph(GraphError::Parse {
                line: lineno,
                reason: "expected exactly two vertex indices".into(),
            }));
        }
        let parse = |s: &str| -> Result<usize, EdgeListError> {
            s.parse::<usize>().map_err(|e| {
                EdgeListError::Graph(GraphError::Parse {
                    line: lineno,
                    reason: format!("bad vertex index {s:?}: {e}"),
                })
            })
        };
        let (a, b) = (parse(a)?, parse(b)?);
        max_index = max_index.max(a).max(b);
        edges.push((a, b));
    }
    let n = declared_nodes
        .unwrap_or(0)
        .max(if edges.is_empty() { 0 } else { max_index + 1 });
    let mut g = Graph::new(n);
    for (a, b) in edges {
        g.add_edge(a, b).map_err(EdgeListError::Graph)?;
    }
    Ok(g)
}

/// Writes `graph` in Graphviz DOT format for visual inspection
/// (`dot -Tsvg`). Vertices in `highlight` are filled red — handy for
/// marking observers, articulation points or blackout victims.
///
/// # Errors
///
/// Returns any I/O error from the writer.
///
/// # Panics
///
/// Panics if a highlighted vertex is out of range.
pub fn write_dot<W: Write>(graph: &Graph, highlight: &[usize], mut writer: W) -> io::Result<()> {
    for &v in highlight {
        assert!(v < graph.node_count(), "highlight vertex {v} out of range");
    }
    writeln!(writer, "graph veil {{")?;
    writeln!(writer, "  node [shape=circle, fontsize=9];")?;
    for &v in highlight {
        writeln!(writer, "  {v} [style=filled, fillcolor=red];")?;
    }
    for (a, b) in graph.edges() {
        writeln!(writer, "  {a} -- {b};")?;
    }
    writeln!(writer, "}}")?;
    Ok(())
}

/// Error reading an edge list: either the stream failed or the contents
/// were not a valid simple graph.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural or syntactic problem in the data.
    Graph(GraphError),
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge list i/o error: {e}"),
            EdgeListError::Graph(e) => write!(f, "edge list format error: {e}"),
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Graph(e) => Some(e),
        }
    }
}

impl From<GraphError> for EdgeListError {
    fn from(e: GraphError) -> Self {
        EdgeListError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_preserves_graph() {
        let g = generators::two_cliques_bridge(5, 4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn round_trip_preserves_isolated_vertices() {
        let g = Graph::new(7); // no edges at all
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(back.node_count(), 7);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a comment\n\n0 1\n# another\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let text = "0 1\n1 0\n0 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reports_malformed_line_number() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            EdgeListError::Graph(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_self_loop() {
        let err = read_edge_list("3 3\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            EdgeListError::Graph(GraphError::SelfLoop { node: 3 })
        ));
    }

    #[test]
    fn rejects_three_fields() {
        assert!(read_edge_list("0 1 2\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn dot_output_contains_edges_and_highlights() {
        let g = generators::path(3);
        let mut buf = Vec::new();
        write_dot(&g, &[1], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("graph veil {"));
        assert!(text.contains("0 -- 1;"));
        assert!(text.contains("1 -- 2;"));
        assert!(text.contains("1 [style=filled"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dot_rejects_bad_highlight() {
        let g = generators::path(2);
        write_dot(&g, &[5], &mut Vec::new()).unwrap();
    }
}
