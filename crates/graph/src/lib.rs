//! Undirected graph substrate for the `veil` overlay simulator.
//!
//! The paper evaluates its overlay protocol on *trust graphs* sampled from a
//! Facebook crawl. That trace is proprietary, so this crate provides:
//!
//! * [`Graph`] — a compact undirected graph with sorted adjacency lists.
//! * [`generators`] — synthetic social-graph models reproducing the
//!   structural properties the paper relies on (power-law degrees via
//!   Barabási–Albert, clustering via Holme–Kim triad closure), plus
//!   Erdős–Rényi reference graphs and assorted deterministic topologies.
//! * [`sample`] — the paper's invitation-model *f-sampler* (Section IV-A):
//!   a partial breadth-first traversal that adds `max(1, f·deg(n))` random
//!   unvisited neighbours of each visited node.
//! * [`metrics`] — the robustness metrics of Section IV-C: fraction of
//!   online nodes outside the largest connected component, normalized
//!   average path length, degree distributions, plus clustering, diameter
//!   and assortativity diagnostics.
//! * [`io`] — plain-text edge-list serialization so externally obtained
//!   social graphs can be dropped in.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use veil_graph::{generators, metrics};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let g = generators::barabasi_albert(200, 3, &mut rng).unwrap();
//! assert_eq!(metrics::component_count(&g), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod sample;

pub use error::GraphError;
pub use graph::{Graph, NodeId};
