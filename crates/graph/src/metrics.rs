//! Robustness metrics from Section IV-C of the paper.
//!
//! All metrics treat the graph as undirected ("since all communication
//! through overlay links can be bidirectional, we use undirected-graph
//! metrics"). Functions with a `_masked` suffix consider only the vertices
//! whose mask entry is `true` (the *online* nodes), evaluating the induced
//! subgraph without materializing it.

use crate::graph::Graph;
use std::collections::VecDeque;
use veil_metrics::Histogram;

/// Distance value marking an unreachable vertex in BFS output.
pub const UNREACHABLE: u32 = u32::MAX;

/// Labels every vertex with a component id in `0..component_count`.
///
/// Masked-out vertices receive the label `usize::MAX` and count as absent.
///
/// # Panics
///
/// Panics if `mask` is `Some` and its length differs from the node count.
pub fn component_labels_masked(g: &Graph, mask: Option<&[bool]>) -> (Vec<usize>, usize) {
    if let Some(m) = mask {
        assert_eq!(m.len(), g.node_count(), "mask length mismatch");
    }
    let n = g.node_count();
    let present = |v: usize| mask.is_none_or(|m| m[v]);
    let mut labels = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX || !present(start) {
            continue;
        }
        labels[start] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                let w = w as usize;
                if present(w) && labels[w] == usize::MAX {
                    labels[w] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (labels, next)
}

/// Labels every vertex with a component id (no mask).
pub fn component_labels(g: &Graph) -> (Vec<usize>, usize) {
    component_labels_masked(g, None)
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    component_labels(g).1
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    component_count(g) <= 1
}

/// Sizes of all connected components among masked-in vertices, descending.
pub fn component_sizes_masked(g: &Graph, mask: Option<&[bool]>) -> Vec<usize> {
    let (labels, count) = component_labels_masked(g, mask);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        if l != usize::MAX {
            sizes[l] += 1;
        }
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Size of the largest connected component among masked-in vertices.
pub fn largest_component_size_masked(g: &Graph, mask: Option<&[bool]>) -> usize {
    component_sizes_masked(g, mask)
        .first()
        .copied()
        .unwrap_or(0)
}

/// Membership mask of the largest connected component among online vertices.
///
/// Ties are broken toward the component discovered first. Returns an
/// all-`false` mask when no vertex is online.
pub fn largest_component_mask(g: &Graph, mask: Option<&[bool]>) -> Vec<bool> {
    let (labels, count) = component_labels_masked(g, mask);
    if count == 0 {
        return vec![false; g.node_count()];
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        if l != usize::MAX {
            sizes[l] += 1;
        }
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .expect("non-zero component count");
    labels.iter().map(|&l| l == best).collect()
}

/// Fraction of *online* vertices that are not in the largest connected
/// component of the online-induced subgraph — the paper's connectivity
/// metric (Figures 3, 7 and 8).
///
/// Returns `0.0` when no vertex is online (nothing is disconnected).
pub fn fraction_disconnected(g: &Graph, online: &[bool]) -> f64 {
    let online_count = online.iter().filter(|&&b| b).count();
    if online_count == 0 {
        return 0.0;
    }
    let largest = largest_component_size_masked(g, Some(online));
    (online_count - largest) as f64 / online_count as f64
}

/// BFS distances from `src` to every vertex, `UNREACHABLE` when there is no
/// path within the masked-in subgraph.
///
/// # Panics
///
/// Panics if `src` is out of range, masked out, or the mask length is wrong.
pub fn bfs_distances_masked(g: &Graph, src: usize, mask: Option<&[bool]>) -> Vec<u32> {
    if let Some(m) = mask {
        assert_eq!(m.len(), g.node_count(), "mask length mismatch");
        assert!(m[src], "BFS source must be online");
    }
    let present = |v: usize| mask.is_none_or(|m| m[v]);
    let mut dist = vec![UNREACHABLE; g.node_count()];
    dist[src] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v];
        for &w in g.neighbors(v) {
            let w = w as usize;
            if present(w) && dist[w] == UNREACHABLE {
                dist[w] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// BFS distances from `src` (no mask).
pub fn bfs_distances(g: &Graph, src: usize) -> Vec<u32> {
    bfs_distances_masked(g, src, None)
}

/// Average shortest-path length inside the largest connected component of
/// the online-induced subgraph, over all ordered reachable pairs.
///
/// Returns `0.0` when the component has fewer than two vertices.
pub fn average_path_length(g: &Graph, online: Option<&[bool]>) -> f64 {
    average_path_length_par(g, online, Some(1))
}

/// [`average_path_length`] with the per-source BFS fan-out spread over up
/// to `parallelism` threads (`None` = all cores).
///
/// The per-source contributions are exact integer sums reduced in source
/// order, so the result is bit-identical to the serial computation for
/// every `parallelism` value.
pub fn average_path_length_par(
    g: &Graph,
    online: Option<&[bool]>,
    parallelism: Option<usize>,
) -> f64 {
    let lcc = largest_component_mask(g, online);
    let members: Vec<usize> = (0..g.node_count()).filter(|&v| lcc[v]).collect();
    if members.len() < 2 {
        return 0.0;
    }
    let partials = veil_par::map(&members, parallelism, |&src| {
        let dist = bfs_distances_masked(g, src, Some(&lcc));
        let mut sum = 0u64;
        let mut pairs = 0u64;
        for &dst in &members {
            if dst != src {
                debug_assert_ne!(dist[dst], UNREACHABLE, "LCC must be connected");
                sum += dist[dst] as u64;
                pairs += 1;
            }
        }
        (sum, pairs)
    });
    let (sum, pairs) = partials
        .iter()
        .fold((0u64, 0u64), |(s, p), &(ds, dp)| (s + ds, p + dp));
    sum as f64 / pairs as f64
}

/// Average path length estimated from BFS trees rooted at at most
/// `max_sources` members of the largest component (for large graphs).
///
/// `pick` selects source indices; pass a closure drawing from an RNG for a
/// random sample, or the identity for the first `max_sources` members.
pub fn average_path_length_sampled<F>(
    g: &Graph,
    online: Option<&[bool]>,
    max_sources: usize,
    pick: F,
) -> f64
where
    F: FnMut(usize) -> usize,
{
    average_path_length_sampled_par(g, online, max_sources, pick, Some(1))
}

/// [`average_path_length_sampled`] with parallel BFS fan-out.
///
/// All `pick` draws happen serially up front (so a stateful RNG closure
/// sees exactly the same call sequence as in the serial version); only the
/// per-source BFS work is distributed. Integer sums reduced in draw order
/// make the result bit-identical across `parallelism` values.
pub fn average_path_length_sampled_par<F>(
    g: &Graph,
    online: Option<&[bool]>,
    max_sources: usize,
    mut pick: F,
    parallelism: Option<usize>,
) -> f64
where
    F: FnMut(usize) -> usize,
{
    let lcc = largest_component_mask(g, online);
    let members: Vec<usize> = (0..g.node_count()).filter(|&v| lcc[v]).collect();
    if members.len() < 2 {
        return 0.0;
    }
    let k = max_sources.min(members.len());
    let sources: Vec<usize> = (0..k)
        .map(|_| members[pick(members.len()) % members.len()])
        .collect();
    let partials = veil_par::map(&sources, parallelism, |&src| {
        let dist = bfs_distances_masked(g, src, Some(&lcc));
        let mut sum = 0u64;
        let mut pairs = 0u64;
        for &dst in &members {
            if dst != src && dist[dst] != UNREACHABLE {
                sum += dist[dst] as u64;
                pairs += 1;
            }
        }
        (sum, pairs)
    });
    let (sum, pairs) = partials
        .iter()
        .fold((0u64, 0u64), |(s, p), &(ds, dp)| (s + ds, p + dp));
    if pairs == 0 {
        0.0
    } else {
        sum as f64 / pairs as f64
    }
}

/// The paper's *normalized path length* (Section IV-C): the average path
/// length within the largest online component, divided by the size of that
/// component and multiplied by the total number of vertices (including
/// offline ones).
///
/// This penalizes heavily partitioned graphs whose largest component — and
/// hence whose raw average path length — is misleadingly small.
pub fn normalized_avg_path_length(g: &Graph, online: Option<&[bool]>) -> f64 {
    let lcc_size = largest_component_size_masked(g, online);
    if lcc_size < 2 {
        return 0.0;
    }
    let apl = average_path_length(g, online);
    apl * g.node_count() as f64 / lcc_size as f64
}

/// Degree histogram over the masked-in vertices, counting only edges whose
/// both endpoints are masked in (Figure 5 considers online nodes only).
pub fn degree_histogram(g: &Graph, online: Option<&[bool]>) -> Histogram {
    let present = |v: usize| online.is_none_or(|m| m[v]);
    let mut h = Histogram::new();
    for v in 0..g.node_count() {
        if !present(v) {
            continue;
        }
        let deg = g
            .neighbors(v)
            .iter()
            .filter(|&&w| present(w as usize))
            .count();
        h.record(deg);
    }
    h
}

/// Local clustering coefficient of vertex `v`: the fraction of neighbour
/// pairs that are themselves adjacent. `0.0` for degree below 2.
pub fn local_clustering(g: &Graph, v: usize) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a as usize, b as usize) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Average of the local clustering coefficients over all vertices.
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|v| local_clustering(g, v)).sum::<f64>() / n as f64
}

/// Diameter (longest shortest path) of the largest connected component.
///
/// Returns `0` for graphs with fewer than two connected vertices.
pub fn diameter(g: &Graph) -> u32 {
    diameter_par(g, Some(1))
}

/// [`diameter`] with the per-source BFS fan-out spread over up to
/// `parallelism` threads. The reduction (`max`) is order-independent, so
/// every `parallelism` value yields the same result.
pub fn diameter_par(g: &Graph, parallelism: Option<usize>) -> u32 {
    let lcc = largest_component_mask(g, None);
    let members: Vec<usize> = (0..g.node_count()).filter(|&v| lcc[v]).collect();
    let eccentricities = veil_par::map(&members, parallelism, |&v| {
        let dist = bfs_distances_masked(g, v, Some(&lcc));
        dist.iter()
            .enumerate()
            .filter(|&(w, &d)| lcc[w] && d != UNREACHABLE)
            .map(|(_, &d)| d)
            .max()
            .unwrap_or(0)
    });
    eccentricities.into_iter().max().unwrap_or(0)
}

/// Betweenness centrality of every vertex (Brandes' algorithm,
/// `O(n·m)` for unweighted graphs), normalized by the number of ordered
/// vertex pairs excluding the endpoint, `(n-1)(n-2)`.
///
/// In a relay-based overlay, high-betweenness nodes carry a
/// disproportionate share of forwarded traffic; on trust graphs they are
/// the chokepoints whose churn separates communities — another view of the
/// structural weakness the overlay repairs.
pub fn betweenness_centrality(g: &Graph) -> Vec<f64> {
    betweenness_centrality_par(g, Some(1))
}

/// Sources per reduction chunk in [`betweenness_centrality_par`]. Fixed
/// (not derived from the thread count) so the floating-point summation
/// tree — and hence the exact result — is the same for every
/// `parallelism` value.
const BETWEENNESS_CHUNK: usize = 16;

/// [`betweenness_centrality`] with the per-source Brandes passes spread
/// over up to `parallelism` threads.
///
/// Per-source dependency contributions are floating-point, so the
/// summation order matters for bit-identity. Sources are grouped into
/// fixed-size chunks; each chunk accumulates its sources in index order
/// and the chunk partials are folded in chunk order. The reduction tree
/// therefore depends only on the graph size, never on the thread count,
/// and the serial entry point uses the same tree.
pub fn betweenness_centrality_par(g: &Graph, parallelism: Option<usize>) -> Vec<f64> {
    let n = g.node_count();
    let mut centrality = vec![0.0f64; n];
    if n < 3 {
        return centrality;
    }
    let chunks = n.div_ceil(BETWEENNESS_CHUNK);
    let partials = veil_par::run(chunks, parallelism, |c| {
        let lo = c * BETWEENNESS_CHUNK;
        let hi = (lo + BETWEENNESS_CHUNK).min(n);
        betweenness_partial(g, lo, hi)
    });
    for partial in &partials {
        for (acc, &x) in centrality.iter_mut().zip(partial) {
            *acc += x;
        }
    }
    // Each unordered pair was counted twice (once per endpoint as source).
    let norm = ((n - 1) * (n - 2)) as f64;
    for c in &mut centrality {
        *c /= norm;
    }
    centrality
}

/// Unnormalized betweenness contributions of sources `lo..hi` (one Brandes
/// pass per source, accumulated in source order).
fn betweenness_partial(g: &Graph, lo: usize, hi: usize) -> Vec<f64> {
    let n = g.node_count();
    let mut centrality = vec![0.0f64; n];
    let mut stack: Vec<usize> = Vec::with_capacity(n);
    let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![i64::MAX; n];
    let mut delta = vec![0.0f64; n];
    let mut queue = VecDeque::new();
    for s in lo..hi {
        stack.clear();
        for v in 0..n {
            predecessors[v].clear();
            sigma[v] = 0.0;
            dist[v] = i64::MAX;
            delta[v] = 0.0;
        }
        sigma[s] = 1.0;
        dist[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.neighbors(v) {
                let w = w as usize;
                if dist[w] == i64::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    predecessors[w].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &v in &predecessors[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }
    centrality
}

/// Core number of every vertex: the largest `k` such that the vertex
/// belongs to the `k`-core (the maximal subgraph of minimum degree `k`).
/// Computed by iterative minimum-degree peeling in `O(n + m)`.
///
/// High-core vertices form the densely interconnected backbone that keeps
/// an overlay together under churn; a trust graph whose cores are shallow
/// partitions easily, which is the structural weakness the paper's overlay
/// repairs.
pub fn core_numbers(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut degree = g.degrees();
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort vertices by current degree (Batagelj–Zaversnik).
    let mut bins = vec![0usize; max_degree + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for bin in bins.iter_mut() {
        let count = *bin;
        *bin = start;
        start += count;
    }
    let mut position = vec![0usize; n];
    let mut order = vec![0usize; n];
    for v in 0..n {
        position[v] = bins[degree[v]];
        order[position[v]] = v;
        bins[degree[v]] += 1;
    }
    // Restore bin starts (they were advanced while placing vertices).
    for d in (1..bins.len()).rev() {
        bins[d] = bins[d - 1];
    }
    bins[0] = 0;
    // Peel in current-degree order; after processing, degree[v] is v's
    // core number.
    for i in 0..n {
        let v = order[i];
        for &w in g.neighbors(v) {
            let w = w as usize;
            if degree[w] > degree[v] {
                // Move w to the front of its bucket, then shrink it.
                let dw = degree[w];
                let pw = position[w];
                let ps = bins[dw];
                let s = order[ps];
                if w != s {
                    order[pw] = s;
                    order[ps] = w;
                    position[w] = ps;
                    position[s] = pw;
                }
                bins[dw] += 1;
                degree[w] -= 1;
            }
        }
    }
    degree
}

/// The degeneracy of the graph: the largest `k` with a non-empty `k`-core.
pub fn degeneracy(g: &Graph) -> usize {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

/// Fraction of surviving vertices inside the largest connected component
/// as the vertices in `removal_order` are deleted one by one.
///
/// `profile[k]` is measured after removing the first `k` vertices of
/// `removal_order` (so `profile[0]` describes the intact graph), always as
/// a fraction of the vertices *still present*. Classic robustness-profile
/// analysis: power-law graphs collapse quickly under degree-targeted
/// removal ("celebrity attacks") yet survive random removal — exactly the
/// asymmetry that motivates evolving the trust graph toward a random
/// topology.
///
/// # Panics
///
/// Panics if `removal_order` repeats a vertex or indexes out of range.
pub fn robustness_profile(g: &Graph, removal_order: &[usize]) -> Vec<f64> {
    let n = g.node_count();
    let mut present = vec![true; n];
    let mut profile = Vec::with_capacity(removal_order.len() + 1);
    let mut remaining = n;
    for step in 0..=removal_order.len() {
        if step > 0 {
            let v = removal_order[step - 1];
            assert!(v < n, "removal index {v} out of range");
            assert!(present[v], "vertex {v} removed twice");
            present[v] = false;
            remaining -= 1;
        }
        if remaining == 0 {
            profile.push(0.0);
            continue;
        }
        let largest = largest_component_size_masked(g, Some(&present));
        profile.push(largest as f64 / remaining as f64);
    }
    profile
}

/// Vertices in descending degree order — the removal schedule of a
/// degree-targeted ("celebrity") attack. Ties break toward lower indices.
pub fn degree_attack_order(g: &Graph) -> Vec<usize> {
    let mut order: Vec<usize> = (0..g.node_count()).collect();
    order.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    order
}

/// Articulation points (cut vertices) of the graph, computed with an
/// iterative Tarjan lowpoint DFS in `O(n + m)`.
///
/// A vertex is an articulation point iff removing it increases the number
/// of connected components. These are exactly the single nodes whose
/// compromise enables the paper's Section III-E3 vertex-cut attack — and
/// whose churn partitions a bare trust-graph overlay.
pub fn articulation_points(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0u32; n];
    let mut is_cut = vec![false; n];
    let mut timer = 1u32;
    // Explicit DFS stack: (vertex, parent, index into its adjacency list).
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != 0 {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;
        stack.push((root, usize::MAX, 0));
        while let Some(&mut (v, parent, ref mut idx)) = stack.last_mut() {
            if *idx < g.neighbors(v).len() {
                let w = g.neighbors(v)[*idx] as usize;
                *idx += 1;
                if disc[w] == 0 {
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((w, v, 0));
                } else if w != parent {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[v]);
                    if p != root && low[v] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        is_cut[root] = root_children > 1;
    }
    (0..n).filter(|&v| is_cut[v]).collect()
}

/// Bridges (cut edges) of the graph, via the same lowpoint DFS: an edge
/// `(v, w)` with `w` a DFS child is a bridge iff `low[w] > disc[v]`.
///
/// Returned as `(a, b)` pairs with `a < b`, in ascending order.
pub fn bridges(g: &Graph) -> Vec<(usize, usize)> {
    let n = g.node_count();
    let mut disc = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut timer = 1u32;
    let mut out = Vec::new();
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != 0 {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        stack.push((root, usize::MAX, 0));
        while let Some(&mut (v, parent, ref mut idx)) = stack.last_mut() {
            if *idx < g.neighbors(v).len() {
                let w = g.neighbors(v)[*idx] as usize;
                *idx += 1;
                if disc[w] == 0 {
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    stack.push((w, v, 0));
                } else if w != parent {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        out.push((p.min(v), p.max(v)));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Pearson degree assortativity: correlation between the degrees of the two
/// endpoints over all edges. Positive for social graphs, ~0 for ER graphs.
///
/// Returns `0.0` for graphs without edges or with constant degrees.
pub fn degree_assortativity(g: &Graph) -> f64 {
    let mut sum_xy = 0.0;
    let mut sum_x = 0.0;
    let mut sum_x2 = 0.0;
    let mut m = 0.0;
    for (a, b) in g.edges() {
        let (da, db) = (g.degree(a) as f64, g.degree(b) as f64);
        // Each undirected edge contributes both orientations.
        sum_xy += 2.0 * da * db;
        sum_x += da + db;
        sum_x2 += da * da + db * db;
        m += 2.0;
    }
    if m == 0.0 {
        return 0.0;
    }
    let mean = sum_x / m;
    let var = sum_x2 / m - mean * mean;
    if var.abs() < 1e-12 {
        return 0.0;
    }
    (sum_xy / m - mean * mean) / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_disjoint_paths() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let (labels, count) = component_labels(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert_eq!(component_sizes_masked(&g, None), vec![3, 2, 1]);
    }

    #[test]
    fn mask_splits_components() {
        // Path 0-1-2-3; masking out 1 leaves {0}, {2,3}.
        let g = generators::path(4);
        let mask = [true, false, true, true];
        let (_, count) = component_labels_masked(&g, Some(&mask));
        assert_eq!(count, 2);
        assert_eq!(largest_component_size_masked(&g, Some(&mask)), 2);
    }

    #[test]
    fn fraction_disconnected_cases() {
        let g = generators::path(4);
        assert_eq!(fraction_disconnected(&g, &[true; 4]), 0.0);
        // 0 | 2-3 online: largest component 2 of 3 online.
        let frac = fraction_disconnected(&g, &[true, false, true, true]);
        assert!((frac - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(fraction_disconnected(&g, &[false; 4]), 0.0);
    }

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    #[should_panic(expected = "online")]
    fn bfs_from_offline_source_panics() {
        let g = generators::path(3);
        bfs_distances_masked(&g, 0, Some(&[false, true, true]));
    }

    #[test]
    fn path_length_of_known_graphs() {
        // Complete graph: every pair at distance 1.
        let k5 = generators::complete(5);
        assert!((average_path_length(&k5, None) - 1.0).abs() < 1e-12);
        // Path on 3: distances 1,2,1 -> mean 4/3.
        let p3 = generators::path(3);
        assert!((average_path_length(&p3, None) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_path_length_penalizes_partitioning() {
        // A 10-cycle split into two 5-paths by masking two opposite nodes.
        let g = generators::cycle(10);
        let full = normalized_avg_path_length(&g, None);
        let mut mask = vec![true; 10];
        mask[0] = false;
        mask[5] = false;
        let partitioned = normalized_avg_path_length(&g, Some(&mask));
        // LCC shrinks to 4 of 10 nodes, so the multiplier 10/4 dominates.
        assert!(partitioned > full);
    }

    #[test]
    fn normalized_path_length_of_tiny_component_is_zero() {
        let g = Graph::new(5);
        assert_eq!(normalized_avg_path_length(&g, None), 0.0);
    }

    #[test]
    fn degree_histogram_masked() {
        let g = generators::star(4);
        let h = degree_histogram(&g, None);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(1), 3);
        // Hub offline: remaining leaves have masked degree 0.
        let h2 = degree_histogram(&g, Some(&[false, true, true, true]));
        assert_eq!(h2.count(0), 3);
        assert_eq!(h2.total(), 3);
    }

    #[test]
    fn clustering_of_triangle_and_path() {
        let tri = generators::cycle(3);
        assert!((average_clustering(&tri) - 1.0).abs() < 1e-12);
        let p = generators::path(3);
        assert_eq!(average_clustering(&p), 0.0);
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&generators::path(6)), 5);
        assert_eq!(diameter(&generators::cycle(6)), 3);
        assert_eq!(diameter(&Graph::new(3)), 0);
    }

    #[test]
    fn assortativity_of_star_is_negative() {
        let g = generators::star(10);
        assert!(degree_assortativity(&g) < 0.0);
    }

    #[test]
    fn assortativity_of_regular_graph_is_zero() {
        let g = generators::cycle(10);
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn sampled_path_length_close_to_exact() {
        let mut seed = 0usize;
        let g = generators::two_cliques_bridge(10, 10);
        let exact = average_path_length(&g, None);
        let approx = average_path_length_sampled(&g, None, 20, |_| {
            seed += 7;
            seed
        });
        assert!(
            (exact - approx).abs() < 0.5,
            "exact={exact} approx={approx}"
        );
    }

    #[test]
    fn largest_component_mask_empty_graph() {
        let g = Graph::new(0);
        assert!(largest_component_mask(&g, None).is_empty());
        assert!(is_connected(&g));
    }

    /// Oracle: articulation points by definition (remove and recount).
    /// Removing an isolated vertex lowers the count, a leaf keeps it equal,
    /// and only a true cut vertex raises it.
    fn naive_articulation_points(g: &Graph) -> Vec<usize> {
        let base = component_count(g);
        (0..g.node_count())
            .filter(|&v| {
                let keep: Vec<bool> = (0..g.node_count()).map(|u| u != v).collect();
                let (_, count) = component_labels_masked(g, Some(&keep));
                count > base
            })
            .collect()
    }

    #[test]
    fn articulation_points_of_known_graphs() {
        assert_eq!(articulation_points(&generators::path(5)), vec![1, 2, 3]);
        assert!(articulation_points(&generators::cycle(6)).is_empty());
        assert_eq!(articulation_points(&generators::star(5)), vec![0]);
        let g = generators::two_cliques_bridge(4, 3);
        assert_eq!(articulation_points(&g), vec![3, 4]);
        assert!(articulation_points(&generators::complete(6)).is_empty());
        assert!(articulation_points(&Graph::new(3)).is_empty());
    }

    #[test]
    fn articulation_points_match_naive_oracle() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi_gnm(30, 35, &mut rng).unwrap();
            let fast = articulation_points(&g);
            let naive = naive_articulation_points(&g);
            assert_eq!(fast, naive, "seed {seed}");
        }
    }

    #[test]
    fn bridges_of_known_graphs() {
        assert_eq!(bridges(&generators::path(4)), vec![(0, 1), (1, 2), (2, 3)]);
        assert!(bridges(&generators::cycle(5)).is_empty());
        let g = generators::two_cliques_bridge(4, 3);
        assert_eq!(bridges(&g), vec![(3, 4)]);
        assert_eq!(bridges(&generators::star(4)), vec![(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn betweenness_of_path_peaks_in_the_middle() {
        // Path 0-1-2-3-4: centre vertex 2 lies on 4 of the 6 pairs.
        let g = generators::path(5);
        let c = betweenness_centrality(&g);
        assert_eq!(c[0], 0.0);
        assert_eq!(c[4], 0.0);
        assert!(c[2] > c[1] && c[2] > c[3]);
        // Exact: v2 on pairs {0,3},{0,4},{1,3},{1,4} = 4 of 12 ordered.
        assert!((c[2] - 4.0 / 12.0 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn betweenness_of_star_hub_is_one() {
        let g = generators::star(6);
        let c = betweenness_centrality(&g);
        assert!((c[0] - 1.0).abs() < 1e-12, "hub on every pair");
        for &leaf in &c[1..] {
            assert_eq!(leaf, 0.0);
        }
    }

    #[test]
    fn betweenness_of_complete_graph_is_zero() {
        let c = betweenness_centrality(&generators::complete(5));
        for x in c {
            assert!(x.abs() < 1e-12);
        }
    }

    #[test]
    fn betweenness_handles_tiny_graphs() {
        assert_eq!(betweenness_centrality(&Graph::new(0)), Vec::<f64>::new());
        assert_eq!(betweenness_centrality(&generators::path(2)), vec![0.0, 0.0]);
    }

    #[test]
    fn betweenness_splits_evenly_on_even_cycle() {
        let c = betweenness_centrality(&generators::cycle(6));
        for x in &c {
            assert!((x - c[0]).abs() < 1e-12, "cycle is vertex-transitive");
        }
        assert!(c[0] > 0.0);
    }

    /// Oracle: core numbers by repeated minimum-degree peeling.
    fn naive_core_numbers(g: &Graph) -> Vec<usize> {
        let n = g.node_count();
        let mut core = vec![0usize; n];
        let mut alive = vec![true; n];
        let mut deg = g.degrees();
        for _ in 0..n {
            let v = (0..n)
                .filter(|&v| alive[v])
                .min_by_key(|&v| deg[v])
                .expect("vertices remain");
            core[v] = deg[v];
            alive[v] = false;
            for &w in g.neighbors(v) {
                let w = w as usize;
                if alive[w] && deg[w] > deg[v] {
                    deg[w] -= 1;
                }
            }
        }
        core
    }

    #[test]
    fn core_numbers_of_known_graphs() {
        assert_eq!(core_numbers(&generators::complete(5)), vec![4; 5]);
        assert_eq!(core_numbers(&generators::cycle(6)), vec![2; 6]);
        let star = generators::star(5);
        assert_eq!(core_numbers(&star), vec![1; 5]);
        assert_eq!(degeneracy(&generators::complete(4)), 3);
        assert_eq!(degeneracy(&Graph::new(3)), 0);
        assert!(core_numbers(&Graph::new(0)).is_empty());
    }

    #[test]
    fn core_numbers_match_peeling_oracle() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for seed in 0..15 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi_gnm(40, 90, &mut rng).unwrap();
            assert_eq!(core_numbers(&g), naive_core_numbers(&g), "seed {seed}");
        }
    }

    #[test]
    fn ba_graph_core_equals_attachment_count() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::barabasi_albert(300, 3, &mut rng).unwrap();
        // Every BA vertex joins with m edges, so the graph is m-degenerate.
        assert_eq!(degeneracy(&g), 3);
    }

    #[test]
    fn robustness_profile_of_star_collapses_instantly() {
        let g = generators::star(10);
        let profile = robustness_profile(&g, &[0]); // remove the hub
        assert_eq!(profile.len(), 2);
        assert_eq!(profile[0], 1.0);
        assert!(
            (profile[1] - 1.0 / 9.0).abs() < 1e-12,
            "only singletons left"
        );
    }

    #[test]
    fn robustness_profile_full_removal_ends_at_zero() {
        let g = generators::cycle(5);
        let order: Vec<usize> = (0..5).collect();
        let profile = robustness_profile(&g, &order);
        assert_eq!(profile.len(), 6);
        assert_eq!(profile[0], 1.0);
        assert_eq!(profile[5], 0.0);
        for p in &profile {
            assert!((0.0..=1.0).contains(p));
        }
    }

    #[test]
    fn degree_attack_hurts_social_graphs_more_than_random_removal() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::social_graph(500, 2, &mut rng).unwrap();
        let k = 50;
        let targeted: Vec<usize> = degree_attack_order(&g).into_iter().take(k).collect();
        // "Random" removal: the k lowest-degree vertices as a cheap proxy
        // for a typical random draw that misses the hubs.
        let mut random_order = degree_attack_order(&g);
        random_order.reverse();
        let random: Vec<usize> = random_order.into_iter().take(k).collect();
        let after_attack = *robustness_profile(&g, &targeted).last().unwrap();
        let after_random = *robustness_profile(&g, &random).last().unwrap();
        assert!(
            after_attack < after_random,
            "degree attack {after_attack} should beat random removal {after_random}"
        );
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn robustness_profile_rejects_duplicates() {
        let g = generators::cycle(4);
        robustness_profile(&g, &[1, 1]);
    }

    #[test]
    fn degree_attack_order_is_sorted_by_degree() {
        let g = generators::star(6);
        let order = degree_attack_order(&g);
        assert_eq!(order[0], 0, "hub first");
        for w in order.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
    }

    #[test]
    fn bridge_removal_disconnects() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi_gnm(25, 28, &mut rng).unwrap();
        let base = component_count(&g);
        for (a, b) in bridges(&g) {
            let mut cut = g.clone();
            cut.remove_edge(a, b).unwrap();
            assert_eq!(component_count(&cut), base + 1, "bridge ({a},{b})");
        }
    }
}
