//! The paper's invitation-model trust-graph sampler (Section IV-A).
//!
//! The evaluation never uses a full social graph; it uses subgraphs sampled
//! by a partial breadth-first traversal parameterized by `f`:
//!
//! * `f = 1` — full BFS: "users persuading all their friends to join".
//! * `f = 0` — one neighbour per visited node: roughly a depth-first chain,
//!   "each node inviting one friend".
//! * `0 < f < 1` — partial BFS: "users inviting some of their friends".
//!
//! When visiting node `n`, the sampler adds `max(1, f·deg(n))` random
//! not-yet-sampled neighbours of `n`; newly added nodes are visited in BFS
//! order. The sampled graph is the subgraph induced on the selected vertex
//! set by the edges of the original graph.

use crate::error::GraphError;
use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

/// A trust graph sampled from a larger social graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledGraph {
    /// The induced subgraph; vertex `i` corresponds to
    /// `original_ids[i]` in the source graph.
    pub graph: Graph,
    /// Mapping from sampled vertex index to the source-graph vertex.
    pub original_ids: Vec<usize>,
    /// Value of `f` the sample was drawn with.
    pub f: f64,
}

/// Samples a `target`-node trust graph from `source` with invitation
/// parameter `f`, starting from a uniformly random seed vertex.
///
/// If the traversal frontier empties before `target` nodes are collected
/// (the reachable region is too small), a fresh random unsampled vertex is
/// seeded and the traversal continues; the paper assumes a connected source
/// graph where this does not occur.
///
/// # Errors
///
/// Returns an error if `target` is zero, exceeds the source order, or `f`
/// is outside `[0, 1]`.
pub fn sample_trust_graph<R: Rng + ?Sized>(
    source: &Graph,
    target: usize,
    f: f64,
    rng: &mut R,
) -> Result<SampledGraph, GraphError> {
    if target == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "sample target must be positive".into(),
        });
    }
    if target > source.node_count() {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "sample target {target} exceeds source graph order {}",
                source.node_count()
            ),
        });
    }
    if !(0.0..=1.0).contains(&f) {
        return Err(GraphError::InvalidParameter {
            reason: format!("sampling parameter f={f} not in [0, 1]"),
        });
    }

    let n = source.node_count();
    let mut sampled = vec![false; n];
    let mut selected: Vec<usize> = Vec::with_capacity(target);
    let mut queue: VecDeque<usize> = VecDeque::new();

    let admit = |v: usize,
                 sampled: &mut Vec<bool>,
                 selected: &mut Vec<usize>,
                 queue: &mut VecDeque<usize>| {
        sampled[v] = true;
        selected.push(v);
        queue.push_back(v);
    };

    let seed = rng.gen_range(0..n);
    admit(seed, &mut sampled, &mut selected, &mut queue);

    while selected.len() < target {
        let Some(v) = queue.pop_front() else {
            // Frontier exhausted: reseed from a random unsampled vertex.
            let remaining: Vec<usize> = (0..n).filter(|&u| !sampled[u]).collect();
            let &reseed = remaining
                .choose(rng)
                .expect("target <= n guarantees unsampled vertices remain");
            admit(reseed, &mut sampled, &mut selected, &mut queue);
            continue;
        };
        let degree = source.degree(v);
        // max(1, f * |δ(n)|) invitations, as in the paper.
        let invitations = ((f * degree as f64).floor() as usize).max(1);
        let mut fresh: Vec<usize> = source
            .neighbors(v)
            .iter()
            .map(|&w| w as usize)
            .filter(|&w| !sampled[w])
            .collect();
        fresh.shuffle(rng);
        for w in fresh.into_iter().take(invitations) {
            if selected.len() >= target {
                break;
            }
            admit(w, &mut sampled, &mut selected, &mut queue);
        }
    }

    // Induced subgraph on the selected vertices.
    let mut index_of = vec![usize::MAX; n];
    for (new, &old) in selected.iter().enumerate() {
        index_of[old] = new;
    }
    let mut graph = Graph::new(selected.len());
    for (new, &old) in selected.iter().enumerate() {
        for &w in source.neighbors(old) {
            let w = w as usize;
            if sampled[w] && index_of[w] > new {
                graph
                    .add_edge(new, index_of[w])
                    .expect("induced edge in range");
            }
        }
    }
    Ok(SampledGraph {
        graph,
        original_ids: selected,
        f,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn source(seed: u64) -> Graph {
        generators::social_graph(3000, 4, &mut rng(seed)).unwrap()
    }

    #[test]
    fn sample_has_requested_order() {
        let src = source(1);
        let s = sample_trust_graph(&src, 500, 0.5, &mut rng(2)).unwrap();
        assert_eq!(s.graph.node_count(), 500);
        assert_eq!(s.original_ids.len(), 500);
        assert_eq!(s.f, 0.5);
    }

    #[test]
    fn original_ids_are_distinct_and_in_range() {
        let src = source(3);
        let s = sample_trust_graph(&src, 400, 0.3, &mut rng(4)).unwrap();
        let mut ids = s.original_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
        assert!(ids.iter().all(|&v| v < src.node_count()));
    }

    #[test]
    fn sampled_edges_match_source() {
        let src = source(5);
        let s = sample_trust_graph(&src, 200, 0.5, &mut rng(6)).unwrap();
        for (a, b) in s.graph.edges() {
            assert!(src.has_edge(s.original_ids[a], s.original_ids[b]));
        }
        // Induced: every source edge between sampled nodes is present.
        let mut idx = vec![usize::MAX; src.node_count()];
        for (new, &old) in s.original_ids.iter().enumerate() {
            idx[old] = new;
        }
        for (a, b) in src.edges() {
            if idx[a] != usize::MAX && idx[b] != usize::MAX {
                assert!(s.graph.has_edge(idx[a], idx[b]));
            }
        }
    }

    #[test]
    fn sample_from_connected_source_is_connected() {
        let src = source(7);
        for f in [0.0, 0.5, 1.0] {
            let s = sample_trust_graph(&src, 300, f, &mut rng(8)).unwrap();
            assert_eq!(
                metrics::component_count(&s.graph),
                1,
                "f={f} sample disconnected"
            );
        }
    }

    #[test]
    fn full_bfs_yields_more_edges_than_partial() {
        // f=1 keeps all neighbours of each visited node, producing denser
        // samples than f=0.5 (the paper reports 5649 vs 3277 edges at 1000
        // nodes).
        let src = source(9);
        let full = sample_trust_graph(&src, 500, 1.0, &mut rng(10)).unwrap();
        let half = sample_trust_graph(&src, 500, 0.5, &mut rng(10)).unwrap();
        assert!(
            full.graph.edge_count() > half.graph.edge_count(),
            "f=1.0 edges {} should exceed f=0.5 edges {}",
            full.graph.edge_count(),
            half.graph.edge_count()
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        let src = generators::path(10);
        assert!(sample_trust_graph(&src, 0, 0.5, &mut rng(11)).is_err());
        assert!(sample_trust_graph(&src, 11, 0.5, &mut rng(11)).is_err());
        assert!(sample_trust_graph(&src, 5, -0.1, &mut rng(11)).is_err());
        assert!(sample_trust_graph(&src, 5, 1.1, &mut rng(11)).is_err());
    }

    #[test]
    fn target_equal_to_source_selects_everything() {
        let src = generators::cycle(12);
        let s = sample_trust_graph(&src, 12, 1.0, &mut rng(12)).unwrap();
        assert_eq!(s.graph.node_count(), 12);
        assert_eq!(s.graph.edge_count(), 12);
    }

    #[test]
    fn disconnected_source_reseeds() {
        // Two disjoint triangles; sampling 6 nodes must cross components.
        let mut src = generators::cycle(3);
        let other = generators::cycle(3);
        let mut g = Graph::new(6);
        for (a, b) in src.edges() {
            g.add_edge(a, b).unwrap();
        }
        for (a, b) in other.edges() {
            g.add_edge(a + 3, b + 3).unwrap();
        }
        src = g;
        let s = sample_trust_graph(&src, 6, 1.0, &mut rng(13)).unwrap();
        assert_eq!(s.graph.node_count(), 6);
        assert_eq!(metrics::component_count(&s.graph), 2);
    }
}
