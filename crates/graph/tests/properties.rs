//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use veil_graph::sample::sample_trust_graph;
use veil_graph::{generators, metrics, Graph};

/// Strategy: a random simple graph given as (n, edge list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..120);
        (Just(n), edges)
    })
}

fn build(n: usize, raw_edges: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new(n);
    for &(a, b) in raw_edges {
        if a != b {
            let _ = g.add_edge(a, b);
        }
    }
    g
}

proptest! {
    #[test]
    fn degree_sum_is_twice_edge_count((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let degree_sum: usize = g.degrees().iter().sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn edges_iterator_matches_has_edge((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let listed: Vec<(usize, usize)> = g.edges().collect();
        prop_assert_eq!(listed.len(), g.edge_count());
        for &(a, b) in &listed {
            prop_assert!(a < b);
            prop_assert!(g.has_edge(a, b) && g.has_edge(b, a));
        }
    }

    #[test]
    fn remove_undoes_add((n, edges) in arb_graph()) {
        let mut g = build(n, &edges);
        let listed: Vec<(usize, usize)> = g.edges().collect();
        for &(a, b) in &listed {
            prop_assert!(g.remove_edge(a, b).unwrap());
        }
        prop_assert_eq!(g.edge_count(), 0);
        for v in 0..n {
            prop_assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn induced_subgraph_has_only_internal_edges(
        (n, edges) in arb_graph(),
        mask_seed in prop::collection::vec(any::<bool>(), 40),
    ) {
        let g = build(n, &edges);
        let keep: Vec<bool> = (0..n).map(|v| mask_seed[v]).collect();
        let (sub, mapping) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.node_count(), keep.iter().filter(|&&k| k).count());
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(mapping[a], mapping[b]));
        }
        // Every kept edge survives.
        let expected = g
            .edges()
            .filter(|&(a, b)| keep[a] && keep[b])
            .count();
        prop_assert_eq!(sub.edge_count(), expected);
    }

    #[test]
    fn bfs_distances_are_symmetric((n, edges) in arb_graph(), probe in 0usize..40) {
        let g = build(n, &edges);
        let src = probe % n;
        let from_src = metrics::bfs_distances(&g, src);
        for (dst, &d) in from_src.iter().enumerate() {
            if d != metrics::UNREACHABLE {
                let back = metrics::bfs_distances(&g, dst);
                prop_assert_eq!(back[src], d);
            }
        }
    }

    #[test]
    fn component_labels_partition_consistently((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let (labels, count) = metrics::component_labels_masked(&g, None);
        // Labels are a partition: every vertex labelled, labels dense.
        for &l in &labels {
            prop_assert!(l < count);
        }
        // Adjacent vertices share labels.
        for (a, b) in g.edges() {
            prop_assert_eq!(labels[a], labels[b]);
        }
        // Label count matches BFS reachability from class representatives.
        let sizes = metrics::component_sizes_masked(&g, None);
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
    }

    #[test]
    fn fraction_disconnected_bounds((n, edges) in arb_graph(), mask_seed in prop::collection::vec(any::<bool>(), 40)) {
        let g = build(n, &edges);
        let online: Vec<bool> = (0..n).map(|v| mask_seed[v]).collect();
        let frac = metrics::fraction_disconnected(&g, &online);
        prop_assert!((0.0..=1.0).contains(&frac));
        // A fully connected graph has zero disconnection when all online.
        if metrics::is_connected(&g) && online.iter().all(|&b| b) {
            prop_assert_eq!(frac, 0.0);
        }
    }

    #[test]
    fn normalized_path_length_dominates_raw((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let raw = metrics::average_path_length(&g, None);
        let norm = metrics::normalized_avg_path_length(&g, None);
        prop_assert!(norm >= raw - 1e-9);
    }

    #[test]
    fn gnm_generator_is_exact(n in 2usize..50, m_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let max_edges = n * (n - 1) / 2;
        let m = (m_frac * max_edges as f64) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_gnm(n, m, &mut rng).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), m);
    }

    #[test]
    fn ba_graph_is_connected_with_min_degree(n in 5usize..100, m in 1usize..4, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(n, m, &mut rng).unwrap();
        prop_assert!(metrics::is_connected(&g));
        prop_assert!(g.degrees().iter().all(|&d| d >= m));
    }

    #[test]
    fn f_sample_is_induced_and_right_sized(
        target in 5usize..60,
        f in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let source = generators::social_graph(200, 3, &mut rng).unwrap();
        let s = sample_trust_graph(&source, target, f, &mut rng).unwrap();
        prop_assert_eq!(s.graph.node_count(), target);
        // Induced property, both directions.
        let mut index = vec![usize::MAX; source.node_count()];
        for (new, &old) in s.original_ids.iter().enumerate() {
            index[old] = new;
        }
        for (a, b) in s.graph.edges() {
            prop_assert!(source.has_edge(s.original_ids[a], s.original_ids[b]));
        }
        for (a, b) in source.edges() {
            if index[a] != usize::MAX && index[b] != usize::MAX {
                prop_assert!(s.graph.has_edge(index[a], index[b]));
            }
        }
    }

    #[test]
    fn core_numbers_bounded_by_degree((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let cores = metrics::core_numbers(&g);
        for (v, &core) in cores.iter().enumerate() {
            prop_assert!(core <= g.degree(v));
        }
        prop_assert_eq!(
            cores.iter().copied().max().unwrap_or(0),
            metrics::degeneracy(&g)
        );
        // The k-core subgraph (vertices with core >= k) has min degree >= k
        // within itself, for the maximum k.
        let k = metrics::degeneracy(&g);
        if k > 0 {
            let keep: Vec<bool> = (0..n).map(|v| cores[v] >= k).collect();
            for v in 0..n {
                if keep[v] {
                    let internal = g
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| keep[w as usize])
                        .count();
                    prop_assert!(internal >= k, "vertex {} has {} < {}", v, internal, k);
                }
            }
        }
    }

    #[test]
    fn betweenness_is_nonnegative_and_leaves_are_zero((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let c = metrics::betweenness_centrality(&g);
        for (v, &score) in c.iter().enumerate() {
            prop_assert!(score >= -1e-12);
            prop_assert!(score <= 1.0 + 1e-9);
            if g.degree(v) <= 1 {
                prop_assert!(score.abs() < 1e-12, "leaf/isolated vertex has zero betweenness");
            }
        }
    }

    #[test]
    fn robustness_profile_values_are_fractions((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let order: Vec<usize> = (0..n / 2).collect();
        let profile = metrics::robustness_profile(&g, &order);
        prop_assert_eq!(profile.len(), order.len() + 1);
        for p in profile {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn edge_list_round_trip((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let mut buf = Vec::new();
        veil_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let back = veil_graph::io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn clustering_is_a_fraction((n, edges) in arb_graph(), probe in 0usize..40) {
        let g = build(n, &edges);
        let c = metrics::local_clustering(&g, probe % n);
        prop_assert!((0.0..=1.0).contains(&c));
        let avg = metrics::average_clustering(&g);
        prop_assert!((0.0..=1.0).contains(&avg));
    }

    #[test]
    fn diameter_bounds_path_length((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let apl = metrics::average_path_length(&g, None);
        let diameter = metrics::diameter(&g) as f64;
        prop_assert!(apl <= diameter + 1e-9);
    }

    // ---- parallel metrics must equal serial, bit for bit ----------------
    //
    // The arbitrary graphs here are routinely disconnected (random edge
    // lists at low density), which is exactly the regime where the
    // largest-component masking inside these metrics matters.

    #[test]
    fn parallel_average_path_length_matches_serial((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let serial = metrics::average_path_length(&g, None);
        for parallelism in [Some(2), Some(4), None] {
            let par = metrics::average_path_length_par(&g, None, parallelism);
            prop_assert_eq!(serial.to_bits(), par.to_bits(),
                "parallelism {:?}: {} != {}", parallelism, serial, par);
        }
    }

    #[test]
    fn parallel_average_path_length_matches_serial_masked(
        (n, edges) in arb_graph(),
        mask_seed in prop::collection::vec(any::<bool>(), 40),
    ) {
        let g = build(n, &edges);
        let online: Vec<bool> = (0..n).map(|v| mask_seed[v]).collect();
        let serial = metrics::average_path_length(&g, Some(&online));
        for parallelism in [Some(3), None] {
            let par = metrics::average_path_length_par(&g, Some(&online), parallelism);
            prop_assert_eq!(serial.to_bits(), par.to_bits(),
                "parallelism {:?}: {} != {}", parallelism, serial, par);
        }
    }

    #[test]
    fn parallel_sampled_path_length_matches_serial(
        (n, edges) in arb_graph(),
        max_sources in 1usize..12,
        pick_seed in any::<u64>(),
    ) {
        let g = build(n, &edges);
        // Both runs must see the same picker draw sequence; the parallel
        // implementation draws all sources up front, in the same order as
        // the serial loop, so a deterministic stateful picker is fair.
        let make_pick = || {
            let mut state = pick_seed;
            move |bound: usize| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (state >> 33) as usize % bound.max(1)
            }
        };
        let serial = metrics::average_path_length_sampled(&g, None, max_sources, make_pick());
        for parallelism in [Some(2), None] {
            let par = metrics::average_path_length_sampled_par(
                &g, None, max_sources, make_pick(), parallelism);
            prop_assert_eq!(serial.to_bits(), par.to_bits(),
                "parallelism {:?}: {} != {}", parallelism, serial, par);
        }
    }

    #[test]
    fn parallel_diameter_matches_serial((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let serial = metrics::diameter(&g);
        for parallelism in [Some(2), Some(5), None] {
            prop_assert_eq!(serial, metrics::diameter_par(&g, parallelism));
        }
    }

    #[test]
    fn parallel_betweenness_matches_serial((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let serial = metrics::betweenness_centrality(&g);
        for parallelism in [Some(2), Some(4), None] {
            let par = metrics::betweenness_centrality_par(&g, parallelism);
            prop_assert_eq!(serial.len(), par.len());
            for v in 0..n {
                // Fixed-chunk reduction tree: identical floats, not merely
                // close ones.
                prop_assert_eq!(serial[v].to_bits(), par[v].to_bits(),
                    "vertex {} parallelism {:?}: {} != {}", v, parallelism, serial[v], par[v]);
            }
        }
    }
}
