//! Dense and logarithmically binned histograms.

use serde::{Deserialize, Serialize};

/// Dense histogram over non-negative integer values.
///
/// Used for degree distributions (Figure 5 of the paper): `bins[d]` is the
/// number of observations equal to `d`.
///
/// # Examples
///
/// ```
/// use veil_metrics::histogram::Histogram;
///
/// let h: Histogram = [1, 1, 2, 5].into_iter().collect();
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.count(5), 1);
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.max_value(), Some(5));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if value >= self.bins.len() {
            self.bins.resize(value + 1, 0);
        }
        self.bins[value] += 1;
        self.total += 1;
    }

    /// Number of observations equal to `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.bins.get(value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether the histogram contains no observations.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest observed value, or `None` when empty.
    pub fn max_value(&self) -> Option<usize> {
        self.bins.iter().rposition(|&c| c > 0)
    }

    /// Smallest observed value, or `None` when empty.
    pub fn min_value(&self) -> Option<usize> {
        self.bins.iter().position(|&c| c > 0)
    }

    /// Mean of the observations; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// Returns the fraction of observations with value `<= value`.
    pub fn cdf(&self, value: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self.bins.iter().take(value + 1).sum();
        below as f64 / self.total as f64
    }

    /// Nearest-rank `q`-quantile: the smallest observed value whose
    /// cumulative count reaches a fraction `q` of the total.
    ///
    /// Defined for every histogram — it never panics and never produces
    /// NaN. Returns `None` only when the histogram is empty; a
    /// single-sample histogram returns that sample for every `q`. `q` is
    /// clamped to `[0, 1]` (a NaN `q` is treated as `0`, yielding the
    /// minimum).
    pub fn quantile(&self, q: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (v, &c) in self.bins.iter().enumerate() {
            cum += c;
            if c > 0 && cum >= rank {
                return Some(v);
            }
        }
        self.max_value()
    }

    /// Median observation (`quantile(0.5)`); `None` when empty.
    pub fn median(&self) -> Option<usize> {
        self.quantile(0.5)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (dst, src) in self.bins.iter_mut().zip(other.bins.iter()) {
            *dst += src;
        }
        self.total += other.total;
    }
}

impl FromIterator<usize> for Histogram {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut h = Self::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<usize> for Histogram {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Histogram with logarithmically spaced bins, for heavy-tailed data.
///
/// Bin `i` covers values in `[base^i, base^(i+1))`; bin `0` additionally
/// covers the value `0`.
///
/// # Examples
///
/// ```
/// use veil_metrics::histogram::LogHistogram;
///
/// let mut h = LogHistogram::new(2.0);
/// h.record(1);
/// h.record(3);
/// h.record(1000);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    base: f64,
    bins: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// Creates an empty histogram with the given bin base.
    ///
    /// # Panics
    ///
    /// Panics if `base <= 1.0`.
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "log-histogram base must exceed 1");
        Self {
            base,
            bins: Vec::new(),
            total: 0,
        }
    }

    fn bin_index(&self, value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            (value as f64).log(self.base).floor() as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self.bin_index(value);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterates over `(bin_lower_bound, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (self.base.powi(i as i32) as u64, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.min_value(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.cdf(10), 0.0);
    }

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(0);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(7), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.min_value(), Some(0));
        assert_eq!(h.max_value(), Some(3));
    }

    #[test]
    fn mean_is_weighted() {
        let h: Histogram = [2, 2, 8].into_iter().collect();
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let h: Histogram = [0, 1, 1, 5].into_iter().collect();
        assert!(h.cdf(0) <= h.cdf(1));
        assert!(h.cdf(1) <= h.cdf(5));
        assert!((h.cdf(5) - 1.0).abs() < 1e-12);
        assert!((h.cdf(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_skips_empty_bins() {
        let h: Histogram = [0, 4].into_iter().collect();
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (4, 1)]);
    }

    #[test]
    fn quantile_on_empty_is_none_not_panic() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.median(), None);
    }

    #[test]
    fn quantile_on_single_sample_returns_the_sample() {
        let h: Histogram = [7].into_iter().collect();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7));
        }
        assert_eq!(h.median(), Some(7));
    }

    #[test]
    fn quantile_nearest_rank() {
        let h: Histogram = [1, 2, 3, 4, 5].into_iter().collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.2), Some(1));
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(0.9), Some(5));
        assert_eq!(h.quantile(1.0), Some(5));
    }

    #[test]
    fn quantile_handles_degenerate_q() {
        let h: Histogram = [2, 9].into_iter().collect();
        // Out-of-range and NaN q are clamped, never panic or yield NaN.
        assert_eq!(h.quantile(-3.0), Some(2));
        assert_eq!(h.quantile(42.0), Some(9));
        assert_eq!(h.quantile(f64::NAN), Some(2));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: Histogram = [1, 2].into_iter().collect();
        let b: Histogram = [2, 9].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(9), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn log_histogram_bins() {
        let mut h = LogHistogram::new(10.0);
        h.record(0);
        h.record(1);
        h.record(9);
        h.record(10);
        h.record(99);
        h.record(100);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(1, 3), (10, 2), (100, 1)]);
    }

    #[test]
    #[should_panic(expected = "base must exceed 1")]
    fn log_histogram_rejects_bad_base() {
        LogHistogram::new(1.0);
    }
}
