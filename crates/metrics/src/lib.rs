//! Statistics primitives for the `veil` overlay simulator.
//!
//! This crate collects the small, dependency-free numerical building blocks
//! that the rest of the workspace shares:
//!
//! * [`stats::OnlineStats`] — numerically stable streaming mean/variance
//!   (Welford's algorithm) with min/max tracking.
//! * [`stats::Summary`] — a one-shot summary (mean, stddev, quantiles) of a
//!   sample.
//! * [`histogram::Histogram`] — dense integer histogram used for degree
//!   distributions (Figure 5 of the paper).
//! * [`histogram::LogHistogram`] — logarithmically binned histogram for
//!   heavy-tailed data.
//! * [`timeseries::TimeSeries`] — `(time, value)` series with resampling and
//!   windowed averaging, used for the convergence plots (Figures 8 and 9).
//! * [`union_find::UnionFind`] — disjoint-set forest with component sizes,
//!   used for fast connectivity queries.
//!
//! # Examples
//!
//! ```
//! use veil_metrics::stats::OnlineStats;
//!
//! let mut s = OnlineStats::new();
//! for x in [1.0, 2.0, 3.0] {
//!     s.push(x);
//! }
//! assert_eq!(s.mean(), 2.0);
//! assert_eq!(s.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod stats;
pub mod timeseries;
pub mod union_find;

pub use histogram::{Histogram, LogHistogram};
pub use stats::{OnlineStats, Summary};
pub use timeseries::TimeSeries;
pub use union_find::UnionFind;
