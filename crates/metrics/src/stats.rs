//! Streaming and one-shot descriptive statistics.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming statistics (Welford's online algorithm).
///
/// Tracks count, mean, variance, minimum and maximum of a stream of `f64`
/// observations without storing them.
///
/// # Examples
///
/// ```
/// use veil_metrics::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_stddev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations seen so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no observation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean; `0.0` for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`); `0.0` when fewer than one sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); `0.0` when fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// One-shot summary of a sample: mean, standard deviation and quantiles.
///
/// # Examples
///
/// ```
/// use veil_metrics::stats::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.mean, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary from a slice of samples.
    ///
    /// Returns an all-zero summary for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                p25: 0.0,
                median: 0.0,
                p75: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        let stats: OnlineStats = sorted.iter().copied().collect();
        Self {
            count: sorted.len(),
            mean: stats.mean(),
            stddev: stats.sample_stddev(),
            min: sorted[0],
            p25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            p75: quantile_sorted(&sorted, 0.75),
            p95: quantile_sorted(&sorted, 0.95),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Total, non-panicking quantile of an unsorted sample.
///
/// Sorts a copy of `samples` (NaN entries are discarded), clamps `q` to
/// `[0, 1]` (NaN `q` behaves as `0`), and linearly interpolates. Returns
/// `None` only when no finite-comparable sample remains; a single-sample
/// slice returns that sample for every `q`. This is the safe counterpart
/// to [`quantile_sorted`] for callers that cannot guarantee a clean,
/// non-empty input.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    Some(quantile_sorted(&sorted, q))
}

/// Linearly interpolated quantile of an already sorted, non-empty slice.
///
/// `q` must lie in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn welford_matches_naive() {
        let data = [3.1, -2.5, 7.0, 0.0, 11.25, -8.5, 2.0];
        let s: OnlineStats = data.iter().copied().collect();
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut left: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        left.merge(&right);
        let all: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(left.len(), all.len());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [5.0, 6.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn sum_is_consistent() {
        let s: OnlineStats = [1.5, 2.5, 3.0].into_iter().collect();
        assert!((s.sum() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 4.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        quantile_sorted(&[], 0.5);
    }

    #[test]
    fn safe_quantile_is_total() {
        // Empty and all-NaN inputs yield None instead of panicking.
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[f64::NAN], 0.5), None);
        // A single sample is every quantile.
        for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN] {
            assert_eq!(quantile(&[7.5], q), Some(7.5));
        }
        // NaN samples are discarded, NaN/out-of-range q clamped.
        assert_eq!(quantile(&[4.0, f64::NAN, 2.0], 1.0), Some(4.0));
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.5), Some(2.5));
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn summary_of_empty_sample_is_zeroed() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }
}
