//! Time-indexed series of measurements.

use serde::{Deserialize, Serialize};

/// A series of `(time, value)` observations with non-decreasing times.
///
/// Used for the convergence experiments of the paper (Figures 8 and 9),
/// where connectivity and link-replacement rates are tracked over simulated
/// shuffle periods.
///
/// # Examples
///
/// ```
/// use veil_metrics::timeseries::TimeSeries;
///
/// let mut ts = TimeSeries::new();
/// ts.push(0.0, 1.0);
/// ts.push(1.0, 3.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last(), Some((1.0, 3.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `time` is smaller than the last recorded time, or if either
    /// coordinate is NaN.
    pub fn push(&mut self, time: f64, value: f64) {
        assert!(!time.is_nan() && !value.is_nan(), "NaN in time series");
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "time series must be pushed in time order");
        }
        self.points.push((time, value));
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last observation, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Returns the underlying points as a slice.
    pub fn as_slice(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Mean of the values observed in the half-open time window `[from, to)`.
    ///
    /// Returns `None` if the window contains no observations.
    pub fn window_mean(&self, from: f64, to: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Mean of the final `k` observations; `None` if the series has fewer.
    pub fn tail_mean(&self, k: usize) -> Option<f64> {
        if self.points.len() < k || k == 0 {
            return None;
        }
        let tail = &self.points[self.points.len() - k..];
        Some(tail.iter().map(|&(_, v)| v).sum::<f64>() / k as f64)
    }

    /// Resamples onto a regular grid with spacing `step` via zero-order hold
    /// (each grid point takes the most recent observation at or before it).
    ///
    /// Grid points before the first observation are skipped. Returns an empty
    /// series when this one is empty.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0.0`.
    pub fn resample(&self, step: f64) -> TimeSeries {
        assert!(step > 0.0, "resample step must be positive");
        let mut out = TimeSeries::new();
        let Some(&(t0, _)) = self.points.first() else {
            return out;
        };
        let (t_end, _) = *self.points.last().expect("non-empty");
        let mut idx = 0usize;
        let mut t = (t0 / step).ceil() * step;
        while t <= t_end {
            while idx + 1 < self.points.len() && self.points[idx + 1].0 <= t {
                idx += 1;
            }
            out.push(t, self.points[idx].1);
            t += step;
        }
        out
    }

    /// First time at which the value becomes `<= threshold` and stays there
    /// for the rest of the series; `None` if that never happens.
    ///
    /// Used to measure convergence time (e.g. "time until the fraction of
    /// disconnected nodes permanently drops below 1%").
    pub fn settling_time(&self, threshold: f64) -> Option<f64> {
        let mut settle: Option<f64> = None;
        for &(t, v) in &self.points {
            if v <= threshold {
                if settle.is_none() {
                    settle = Some(t);
                }
            } else {
                settle = None;
            }
        }
        settle
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut ts = Self::new();
        for (t, v) in iter {
            ts.push(t, v);
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let ts: TimeSeries = [(0.0, 5.0), (2.0, 7.0)].into_iter().collect();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.last(), Some((2.0, 7.0)));
        assert_eq!(ts.as_slice()[0], (0.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_time_going_backwards() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 0.0);
        ts.push(0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, f64::NAN);
    }

    #[test]
    fn window_mean_half_open() {
        let ts: TimeSeries = [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)].into_iter().collect();
        assert_eq!(ts.window_mean(0.0, 2.0), Some(2.0));
        assert_eq!(ts.window_mean(2.0, 3.0), Some(5.0));
        assert_eq!(ts.window_mean(3.0, 4.0), None);
    }

    #[test]
    fn tail_mean() {
        let ts: TimeSeries = [(0.0, 1.0), (1.0, 2.0), (2.0, 6.0)].into_iter().collect();
        assert_eq!(ts.tail_mean(2), Some(4.0));
        assert_eq!(ts.tail_mean(4), None);
        assert_eq!(ts.tail_mean(0), None);
    }

    #[test]
    fn resample_zero_order_hold() {
        let ts: TimeSeries = [(0.0, 1.0), (0.6, 2.0), (2.4, 3.0)].into_iter().collect();
        let r = ts.resample(1.0);
        assert_eq!(r.as_slice(), &[(0.0, 1.0), (1.0, 2.0), (2.0, 2.0)]);
    }

    #[test]
    fn resample_empty() {
        let ts = TimeSeries::new();
        assert!(ts.resample(1.0).is_empty());
    }

    #[test]
    fn resample_single_sample_is_defined() {
        // An on-grid single point resamples to itself.
        let ts: TimeSeries = [(2.0, 5.0)].into_iter().collect();
        assert_eq!(ts.resample(1.0).as_slice(), &[(2.0, 5.0)]);
        // An off-grid single point has no grid point inside [t0, t0]; the
        // result is empty rather than a panic or an extrapolated value.
        let off: TimeSeries = [(0.5, 5.0)].into_iter().collect();
        assert!(off.resample(1.0).is_empty());
    }

    #[test]
    fn empty_and_single_sample_aggregates_are_defined() {
        let empty = TimeSeries::new();
        assert_eq!(empty.window_mean(0.0, 10.0), None);
        assert_eq!(empty.tail_mean(1), None);
        assert_eq!(empty.settling_time(0.5), None);
        let one: TimeSeries = [(1.0, 2.0)].into_iter().collect();
        assert_eq!(one.window_mean(0.0, 10.0), Some(2.0));
        assert_eq!(one.tail_mean(1), Some(2.0));
        assert_eq!(one.settling_time(5.0), Some(1.0));
    }

    #[test]
    fn settling_time_requires_staying_below() {
        let ts: TimeSeries = [
            (0.0, 1.0),
            (1.0, 0.05),
            (2.0, 0.5),
            (3.0, 0.01),
            (4.0, 0.02),
        ]
        .into_iter()
        .collect();
        assert_eq!(ts.settling_time(0.1), Some(3.0));
        assert_eq!(ts.settling_time(0.001), None);
    }
}
