//! Disjoint-set forest (union–find) with size tracking.

use serde::{Deserialize, Serialize};

/// Disjoint-set forest over elements `0..n` with union by size and path
/// compression.
///
/// Used for incremental connected-component queries over edge streams, and
/// as an independent oracle for the BFS-based component metrics of
/// `veil-graph` in the cross-crate consistency tests.
///
/// # Examples
///
/// ```
/// use veil_metrics::union_find::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// assert_eq!(uf.largest_component_size(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` elements.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "too many elements for UnionFind");
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x`, with path compression.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression: point every node on the path at the root.
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if the sets were previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root] as usize
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the largest set; `0` when empty.
    pub fn largest_component_size(&mut self) -> usize {
        self.component_sizes().first().copied().unwrap_or(0)
    }

    /// Sizes of all sets, in descending order.
    pub fn component_sizes(&mut self) -> Vec<usize> {
        let mut sizes = Vec::new();
        for i in 0..self.parent.len() {
            if self.find(i) == i {
                sizes.push(self.size[i] as usize);
            }
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.largest_component_size(), 1);
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.component_size(1), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.component_size(2), 3);
        assert_eq!(uf.component_sizes(), vec![3, 1, 1]);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
        assert_eq!(uf.largest_component_size(), 0);
        assert!(uf.component_sizes().is_empty());
    }

    #[test]
    fn chain_of_unions_gives_single_component() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.largest_component_size(), n);
    }
}
