//! Property-based tests for the statistics primitives.

use proptest::prelude::*;
use veil_metrics::{Histogram, OnlineStats, TimeSeries, UnionFind};

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn mean_lies_between_min_and_max(samples in finite_samples()) {
        let stats: OnlineStats = samples.iter().copied().collect();
        let min = stats.min().unwrap();
        let max = stats.max().unwrap();
        prop_assert!(min <= stats.mean() + 1e-9);
        prop_assert!(stats.mean() <= max + 1e-9);
    }

    #[test]
    fn variance_is_nonnegative(samples in finite_samples()) {
        let stats: OnlineStats = samples.iter().copied().collect();
        prop_assert!(stats.population_variance() >= -1e-9);
        prop_assert!(stats.sample_variance() >= -1e-9);
    }

    #[test]
    fn merge_matches_sequential(
        a in finite_samples(),
        b in finite_samples(),
    ) {
        let mut merged: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        merged.merge(&right);
        let sequential: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.len(), sequential.len());
        prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-6);
        prop_assert!(
            (merged.population_variance() - sequential.population_variance()).abs()
                < 1e-3 * (1.0 + sequential.population_variance())
        );
    }

    #[test]
    fn histogram_total_and_mean(values in prop::collection::vec(0usize..500, 1..300)) {
        let h: Histogram = values.iter().copied().collect();
        prop_assert_eq!(h.total(), values.len() as u64);
        let naive = values.iter().sum::<usize>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - naive).abs() < 1e-9);
        prop_assert_eq!(h.max_value(), values.iter().copied().max());
        prop_assert_eq!(h.min_value(), values.iter().copied().min());
    }

    #[test]
    fn histogram_cdf_is_monotone_reaching_one(values in prop::collection::vec(0usize..100, 1..100)) {
        let h: Histogram = values.iter().copied().collect();
        let mut last = 0.0;
        for v in 0..=100 {
            let c = h.cdf(v);
            prop_assert!(c >= last - 1e-12);
            last = c;
        }
        prop_assert!((h.cdf(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn union_find_sizes_partition_everything(
        n in 1usize..60,
        unions in prop::collection::vec((0usize..60, 0usize..60), 0..120),
    ) {
        let mut uf = UnionFind::new(n);
        for (a, b) in unions {
            uf.union(a % n, b % n);
        }
        let sizes = uf.component_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        prop_assert_eq!(sizes.len(), uf.component_count());
        prop_assert_eq!(sizes.first().copied().unwrap_or(0), uf.largest_component_size());
    }

    #[test]
    fn union_find_connectivity_is_equivalence(
        n in 2usize..40,
        unions in prop::collection::vec((0usize..40, 0usize..40), 0..80),
        probe in (0usize..40, 0usize..40, 0usize..40),
    ) {
        let mut uf = UnionFind::new(n);
        for (a, b) in unions {
            uf.union(a % n, b % n);
        }
        let (x, y, z) = (probe.0 % n, probe.1 % n, probe.2 % n);
        prop_assert!(uf.connected(x, x), "reflexive");
        prop_assert_eq!(uf.connected(x, y), uf.connected(y, x));
        if uf.connected(x, y) && uf.connected(y, z) {
            prop_assert!(uf.connected(x, z), "transitive");
        }
    }

    #[test]
    fn timeseries_resample_is_zero_order_hold(
        deltas in prop::collection::vec(0.01f64..3.0, 1..40),
        values in prop::collection::vec(-10f64..10.0, 40),
    ) {
        let mut ts = TimeSeries::new();
        let mut t = 0.0;
        for (d, v) in deltas.iter().zip(&values) {
            ts.push(t, *v);
            t += d;
        }
        let r = ts.resample(0.5);
        for (rt, rv) in r.iter() {
            // The resampled value must equal the latest original value at or
            // before rt.
            let expected = ts
                .iter()
                .take_while(|&(ot, _)| ot <= rt + 1e-12)
                .last()
                .unwrap()
                .1;
            prop_assert_eq!(rv, expected);
        }
    }

    #[test]
    fn settling_time_is_a_recorded_instant(
        values in prop::collection::vec(0.0f64..1.0, 1..50),
        threshold in 0.0f64..1.0,
    ) {
        let ts: TimeSeries = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        if let Some(t) = ts.settling_time(threshold) {
            prop_assert!(ts.iter().any(|(ot, _)| ot == t));
            // Every point from t onward is below the threshold.
            for (ot, ov) in ts.iter() {
                if ot >= t {
                    prop_assert!(ov <= threshold);
                }
            }
        } else if let Some((_, last)) = ts.last() {
            prop_assert!(last > threshold, "series ending below threshold must settle");
        }
    }
}
