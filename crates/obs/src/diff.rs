//! Run-to-run regression diffing of [`TraceReport`]s.
//!
//! [`diff_reports`] compares a candidate analysis against a baseline under
//! configurable tolerance bands ([`DiffConfig`]) and classifies each
//! metric directionally: more shuffle failures, drops, alerts or a lower
//! success rate is a *regression*; movement the other way is an
//! improvement; anything within tolerance is noise. The CLI's `veil obs
//! diff` exits non-zero when any regression survives the bands, which is
//! what lets CI gate on "did the overlay get less healthy".

use crate::replay::TraceReport;
use serde::{Deserialize, Serialize};

/// Which direction of movement counts against the candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Higher is worse (failures, drops, alerts).
    HigherIsWorse,
    /// Lower is worse (success rate, online nodes).
    LowerIsWorse,
    /// Purely informational (event counts, mints).
    Neutral,
}

/// Tolerance bands for [`diff_reports`].
///
/// A worsening is only a regression when it clears **both** bands: the
/// absolute delta exceeds `abs_tolerance` *and* the relative delta exceeds
/// `rel_tolerance` of the baseline value. Rates in `[0, 1]` (the shuffle
/// success rate) use `rate_tolerance` as their absolute band instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffConfig {
    /// Relative band as a fraction of the baseline value. Default: 0.10.
    pub rel_tolerance: f64,
    /// Absolute band for counter metrics. Default: 5.0.
    pub abs_tolerance: f64,
    /// Absolute band for rate metrics in `[0, 1]`. Default: 0.05.
    pub rate_tolerance: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            rel_tolerance: 0.10,
            abs_tolerance: 5.0,
            rate_tolerance: 0.05,
        }
    }
}

/// Comparison outcome for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Within tolerance (or neutral direction).
    Ok,
    /// Moved in the good direction beyond tolerance.
    Improved,
    /// Moved in the bad direction beyond tolerance.
    Regressed,
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffEntry {
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Candidate minus baseline.
    pub delta: f64,
    /// Which direction counts against the candidate.
    pub direction: Direction,
    /// Classification under the tolerance bands.
    pub verdict: Verdict,
}

/// Result of diffing two reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDiff {
    /// Bands the comparison ran under.
    pub config: DiffConfig,
    /// Every compared metric, in a fixed order.
    pub entries: Vec<DiffEntry>,
    /// Names of the regressed metrics (empty means the diff passes).
    pub regressions: Vec<String>,
}

impl TraceDiff {
    /// Whether the candidate is free of regressions.
    pub fn passes(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the human-readable comparison table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>10}  verdict",
            "metric", "baseline", "candidate", "delta"
        );
        for e in &self.entries {
            let verdict = match e.verdict {
                Verdict::Ok => "ok",
                Verdict::Improved => "improved",
                Verdict::Regressed => "REGRESSED",
            };
            let _ = writeln!(
                out,
                "{:<28} {:>12.3} {:>12.3} {:>+10.3}  {verdict}",
                e.metric, e.baseline, e.candidate, e.delta
            );
        }
        if self.passes() {
            let _ = writeln!(out, "\nno regressions beyond tolerance");
        } else {
            let _ = writeln!(
                out,
                "\n{} regression(s): {}",
                self.regressions.len(),
                self.regressions.join(", ")
            );
        }
        out
    }
}

/// Is `candidate` a rate in `[0, 1]` compared with the rate band?
fn is_rate(metric: &str) -> bool {
    metric.ends_with("_rate")
}

fn classify(
    cfg: &DiffConfig,
    metric: &str,
    direction: Direction,
    delta: f64,
    base: f64,
) -> Verdict {
    if direction == Direction::Neutral {
        return Verdict::Ok;
    }
    let worse = match direction {
        Direction::HigherIsWorse => delta,
        Direction::LowerIsWorse => -delta,
        Direction::Neutral => unreachable!(),
    };
    let abs_band = if is_rate(metric) {
        cfg.rate_tolerance
    } else {
        cfg.abs_tolerance
    };
    let rel_band = cfg.rel_tolerance * base.abs().max(1.0);
    let band = if is_rate(metric) {
        // A rate's relative band is meaningless near zero; the absolute
        // band alone governs.
        abs_band
    } else {
        abs_band.max(rel_band)
    };
    if worse > band {
        Verdict::Regressed
    } else if worse < -band {
        Verdict::Improved
    } else {
        Verdict::Ok
    }
}

/// The metric table: `(name, direction, extractor)`.
fn metrics(report: &TraceReport) -> Vec<(&'static str, Direction, f64)> {
    use Direction::*;
    vec![
        (
            "shuffle_success_rate",
            LowerIsWorse,
            report.shuffle_success_rate,
        ),
        (
            "sim.shuffle_failures",
            HigherIsWorse,
            report.total("sim.shuffle_failures") as f64,
        ),
        (
            "sim.shuffle_timeouts",
            HigherIsWorse,
            report.total("sim.shuffle_timeouts") as f64,
        ),
        (
            "sim.shuffle_retries",
            HigherIsWorse,
            report.total("sim.shuffle_retries") as f64,
        ),
        (
            "sim.messages_dropped",
            HigherIsWorse,
            report.total("sim.messages_dropped") as f64,
        ),
        (
            "sim.evictions",
            HigherIsWorse,
            report.total("sim.evictions") as f64,
        ),
        (
            "health.alerts",
            HigherIsWorse,
            report.total("health.alerts") as f64,
        ),
        ("final_online", LowerIsWorse, report.final_online as f64),
        (
            "sim.shuffles_started",
            Neutral,
            report.total("sim.shuffles_started") as f64,
        ),
        (
            "sim.shuffles_completed",
            Neutral,
            report.total("sim.shuffles_completed") as f64,
        ),
        (
            "sim.pseudonyms_minted",
            Neutral,
            report.total("sim.pseudonyms_minted") as f64,
        ),
        ("events", Neutral, report.events as f64),
    ]
}

/// Compares `candidate` against `baseline` under the given bands.
pub fn diff_reports(baseline: &TraceReport, candidate: &TraceReport, cfg: DiffConfig) -> TraceDiff {
    let base = metrics(baseline);
    let cand = metrics(candidate);
    let mut entries = Vec::with_capacity(base.len());
    let mut regressions = Vec::new();
    for ((name, direction, b), (_, _, c)) in base.into_iter().zip(cand) {
        let delta = c - b;
        let verdict = classify(&cfg, name, direction, delta, b);
        if verdict == Verdict::Regressed {
            regressions.push(name.to_string());
        }
        entries.push(DiffEntry {
            metric: name.to_string(),
            baseline: b,
            candidate: c,
            delta,
            direction,
            verdict,
        });
    }
    TraceDiff {
        config: cfg,
        entries,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::analyze_trace;
    use crate::{EventKind, TraceEvent};

    fn report(failures: u64, completes: u64) -> TraceReport {
        let mut lines = Vec::new();
        let mut seq = 0u64;
        let mut push = |t: f64, kind: EventKind| {
            seq += 1;
            lines.push(
                serde_json::to_string(&TraceEvent {
                    t,
                    tid: 0,
                    seq,
                    node: Some(0),
                    kind,
                })
                .unwrap(),
            );
        };
        for i in 0..(failures + completes) {
            push(
                i as f64 * 0.1,
                EventKind::ShuffleStart {
                    target: 1,
                    trusted: false,
                },
            );
        }
        for i in 0..completes {
            push(
                i as f64 * 0.1 + 0.05,
                EventKind::ShuffleComplete { exchange: i },
            );
        }
        for i in 0..failures {
            push(
                i as f64 * 0.1 + 0.07,
                EventKind::ShuffleFailure { exchange: i },
            );
        }
        analyze_trace(&lines.join("\n")).unwrap()
    }

    #[test]
    fn identical_runs_pass() {
        let a = report(2, 100);
        let diff = diff_reports(&a, &a, DiffConfig::default());
        assert!(diff.passes());
        assert!(diff.entries.iter().all(|e| e.verdict == Verdict::Ok));
        assert!(diff.render_text().contains("no regressions"));
    }

    #[test]
    fn more_failures_regress() {
        let base = report(2, 100);
        let worse = report(40, 62);
        let diff = diff_reports(&base, &worse, DiffConfig::default());
        assert!(!diff.passes());
        assert!(
            diff.regressions.iter().any(|m| m == "sim.shuffle_failures"),
            "{:?}",
            diff.regressions
        );
        assert!(
            diff.regressions.iter().any(|m| m == "shuffle_success_rate"),
            "{:?}",
            diff.regressions
        );
        assert!(diff.render_text().contains("REGRESSED"));
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let base = report(40, 62);
        let better = report(2, 100);
        let diff = diff_reports(&base, &better, DiffConfig::default());
        assert!(diff.passes());
        assert!(diff.entries.iter().any(|e| e.verdict == Verdict::Improved));
    }

    #[test]
    fn tolerance_bands_absorb_small_drift() {
        let base = report(10, 100);
        let slightly_worse = report(12, 98);
        // +2 failures is inside both the absolute (5) and relative (10% of
        // 10 -> max with abs) bands.
        let diff = diff_reports(&base, &slightly_worse, DiffConfig::default());
        assert!(diff.passes(), "{:?}", diff.regressions);
        // Zero-tolerance bands catch the same drift.
        let strict = DiffConfig {
            rel_tolerance: 0.0,
            abs_tolerance: 0.0,
            rate_tolerance: 0.0,
        };
        let diff = diff_reports(&base, &slightly_worse, strict);
        assert!(!diff.passes());
    }

    #[test]
    fn neutral_metrics_never_regress() {
        let base = report(0, 10);
        let cand = report(0, 500);
        let diff = diff_reports(&base, &cand, DiffConfig::default());
        assert!(diff.passes());
        let events_entry = diff.entries.iter().find(|e| e.metric == "events").unwrap();
        assert_eq!(events_entry.verdict, Verdict::Ok);
        assert!(events_entry.delta > 0.0);
    }

    #[test]
    fn diff_serializes_round_trip() {
        let a = report(2, 100);
        let b = report(40, 62);
        let diff = diff_reports(&a, &b, DiffConfig::default());
        let json = serde_json::to_string(&diff).unwrap();
        let back: TraceDiff = serde_json::from_str(&json).unwrap();
        assert_eq!(diff, back);
    }
}
